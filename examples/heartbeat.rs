//! Metronome & heartbeat (paper §5): reacting to the *absence* of events.
//!
//! A metronome injects a marker tuple every second; a heartbeat watches a
//! data stream and fills quiet epochs so a downstream windowed average
//! always has one value per second.
//!
//! Run with: `cargo run --example heartbeat`

use std::sync::Arc;

use datacell::metronome::{Heartbeat, Metronome};
use datacell::prelude::*;
use datacell::scheduler::Scheduler;

fn main() -> datacell::error::Result<()> {
    let clock = Arc::new(VirtualClock::new());

    let schema = Schema::from_pairs(&[("tag", ValueType::Ts), ("payload", ValueType::Int)]);
    let sensor = Basket::new("sensor", &schema, false);
    let ticks = Basket::new("ticks", &schema, false);
    let uniform = Basket::new("uniform", &schema, false);

    let mut sched = Scheduler::new();

    // metronome: one marker per second into `ticks`
    sched.add(Box::new(Metronome::new(
        "metronome",
        Arc::clone(&ticks),
        clock.clone(),
        MICROS_PER_SEC,
        |t| vec![Value::Ts(t), Value::Null],
    )));

    // heartbeat: fill quiet sensor epochs into `uniform`
    sched.add(Box::new(Heartbeat::new(
        "heartbeat",
        Arc::clone(&sensor),
        Arc::clone(&uniform),
        clock.clone(),
        MICROS_PER_SEC,
        |t| vec![Value::Ts(t), Value::Int(0)],
    )));

    // copy real sensor tuples into the uniform stream as well
    {
        let src = Arc::clone(&sensor);
        let dst = Arc::clone(&uniform);
        let clk = clock.clone();
        sched.add(Box::new(ClosureFactory::new(
            "merge_real",
            vec![Arc::clone(&sensor)],
            vec![Arc::clone(&uniform)],
            move || {
                let batch = src.drain();
                let n = batch.len();
                dst.append_relation(batch, clk.as_ref())?;
                Ok(FireReport {
                    consumed: n,
                    produced: n,
                    ..FireReport::default()
                })
            },
        )));
    }

    // Simulate 10 seconds; the sensor only speaks in seconds 3 and 7.
    for sec in 1..=10i64 {
        clock.set(sec * MICROS_PER_SEC);
        if sec == 3 || sec == 7 {
            sensor.append_rows(
                &[vec![Value::Ts(clock.now()), Value::Int(sec * 100)]],
                clock.as_ref(),
            )?;
        }
        sched.run_until_quiescent(16).unwrap();
    }

    println!("metronome ticks: {}", ticks.len());
    println!("uniform stream: {} tuples", uniform.len());
    let snapshot = uniform.snapshot();
    println!("{snapshot}");

    assert_eq!(ticks.len(), 10, "one tick per second");
    // 2 real + at least 7 fillers (quiet epochs before/between/after)
    assert!(uniform.len() >= 9, "uniform stream has no gaps");
    Ok(())
}
