//! Traffic alerts: a pocket-sized Linear Road run (paper §6.2).
//!
//! Generates a few minutes of synthetic traffic, replays it through the
//! full 38-query DataCell network, prints toll notifications and accident
//! alerts, and validates the outputs against the reference implementation.
//!
//! Run with: `cargo run --example traffic_alerts`

use linearroad::driver::{run, DriverConfig};
use linearroad::gen::GenConfig;
use linearroad::queries::query_inventory;
use linearroad::validate::validate;

fn main() {
    let cfg = DriverConfig {
        gen: GenConfig {
            scale: 0.05,
            duration_secs: 1200, // 20 minutes of traffic
            seed: 2024,
            xways: 1,
            query_fraction: 0.02,
        },
        sample_every_secs: 60,
    };

    println!("query network:");
    for (collection, queries) in query_inventory() {
        println!("  {collection}: {} queries", queries.len());
    }

    let result = run(&cfg);
    println!(
        "\nreplayed {} input tuples ({} s of traffic) in {:.2} s wall",
        result.total_input, cfg.gen.duration_secs, result.wall_secs
    );
    println!("toll notifications: {}", result.tolls.len());
    println!("accident alerts:    {}", result.alerts.len());
    println!("balance answers:    {}", result.balance_answers.len());
    println!("expenditure answers:{}", result.expenditure_answers.len());

    // a peek at the most expensive collection (the paper's Figure 9 lens)
    println!("\nQ7 avg response per minute window:");
    for (t, ms) in result.q7_response_series().iter().take(10) {
        println!("  t={t:>5}s  {ms:.3} ms/activation");
    }

    let report = validate(&result);
    println!("\nvalidation:\n{}", report.render());
    assert!(report.all_passed(), "validation must pass");

    let accidents = result.state.lock().accidents.accidents().len();
    println!("accidents detected: {accidents}");
}
