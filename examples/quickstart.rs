//! Quickstart: a minimal DataCell deployment.
//!
//! Demonstrates the paper's Figure 1 pipeline end to end: a receptor
//! thread feeds a stream basket, a continuous query with a basket
//! expression filters it, and an emitter thread delivers results.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use datacell::prelude::*;

fn main() -> datacell::error::Result<()> {
    // An engine on the wall clock.
    let engine = DataCell::new();

    // A stream of (sensor id, temperature) readings. Streams stamp every
    // arriving tuple with an arrival timestamp (`dc_ts`).
    engine.create_stream(
        "readings",
        &Schema::from_pairs(&[("sensor", ValueType::Int), ("temp", ValueType::Double)]),
    )?;

    // Continuous query: alert on hot readings. The square brackets are the
    // DataCell basket expression — every tuple it references is consumed
    // from the stream exactly once.
    let alerts = engine
        .register_query(
            "hot_readings",
            "select sensor, temp from [select * from readings where temp > 30.0] as W",
            QueryOptions::subscribed(),
        )?
        .expect("subscribed query returns a channel");

    // Receptor: a thread feeding the stream through a channel.
    let (tx, rx) = crossbeam::channel::unbounded();
    let receptor = Receptor::spawn_channel(
        "sensor-feed",
        rx,
        engine.basket("readings")?,
        Arc::clone(engine.clock()),
    );

    // Emitter: a thread printing result batches.
    let emitter = Emitter::spawn_fn("alert-printer", alerts, |batch| {
        for row in batch.iter_rows() {
            println!("ALERT sensor={} temp={}", row[0], row[1]);
        }
    });

    // Simulate a burst of readings.
    for i in 0..10 {
        tx.send(vec![Value::Int(i), Value::Double(25.0 + i as f64)])
            .expect("receptor alive");
    }
    drop(tx);
    let ingested = receptor.join()?;
    println!("receptor accepted {} tuples", ingested.accepted);

    // Run the scheduler until the pipeline drains.
    engine.run_until_quiescent(64)?;
    // Closing the engine's side of the channel ends the emitter; here the
    // channel closes when the factory is dropped with the engine at the
    // end of main, so we just give the emitter its final batch count.
    drop(engine);
    let delivered = emitter.join()?;
    println!(
        "emitter delivered {} alert tuples in {} batches",
        delivered.delivered, delivered.batches
    );
    assert_eq!(delivered.delivered, 4, "temps 31..34 exceed the threshold");
    Ok(())
}
