//! Network monitoring: split, merge and garbage collection (paper §5).
//!
//! Two event streams — flow openings and flow closings — are merged by a
//! windowed equi-join on flow id (the paper's *gather* idiom): matched
//! pairs leave both baskets; unmatched tuples wait for their partner until
//! a timeout query sweeps them to a trash table. A split block routes
//! suspicious flows to a separate basket.
//!
//! Run with: `cargo run --example network_monitor`

use std::sync::Arc;

use datacell::prelude::*;

fn main() -> datacell::error::Result<()> {
    let clock = Arc::new(VirtualClock::new());
    let engine = DataCell::with_clock(clock.clone());

    let flow_schema = Schema::from_pairs(&[
        ("flow", ValueType::Int),
        ("bytes", ValueType::Int),
        ("tag", ValueType::Ts),
    ]);
    engine.create_basket("opens", &flow_schema)?;
    engine.create_basket("closes", &flow_schema)?;
    engine.create_table("trash", &flow_schema)?;
    engine.create_basket("suspicious", &flow_schema)?;
    engine.create_basket("normal", &flow_schema)?;

    // Merge: matched open/close pairs are consumed from both baskets —
    // "the DataCell removes matching tuples used in a merge predicate".
    let matched = engine
        .register_query(
            "gather",
            "select A.* from [select O.flow, O.bytes, C.bytes, O.tag \
             from opens O, closes C where O.flow = C.flow] as A",
            QueryOptions::subscribed(),
        )?
        .expect("channel");

    // Timeout sweep: residue older than one hour moves to the trash table.
    engine.register_query(
        "gc_opens",
        "insert into trash [select all from opens where opens.tag < now() - 1 hour]",
        QueryOptions::default(),
    )?;

    // Split block: route completed flows by volume.
    engine.register_query(
        "split",
        "with A as [select flow, bytes, tag from suspicious] begin \
         insert into normal select flow, bytes, tag from A where A.bytes <= 1000; end",
        QueryOptions::default(),
    )?;

    // --- traffic -----------------------------------------------------------
    clock.set(1_000_000);
    let t = clock.now();
    engine.ingest(
        "opens",
        &[
            vec![Value::Int(1), Value::Int(100), Value::Ts(t)],
            vec![Value::Int(2), Value::Int(5000), Value::Ts(t)],
            vec![Value::Int(3), Value::Int(70), Value::Ts(t)],
        ],
    )?;
    engine.ingest(
        "closes",
        &[vec![Value::Int(1), Value::Int(120), Value::Ts(t)]],
    )?;
    engine.run_until_quiescent(32)?;

    let pairs = matched.try_recv().expect("one matched pair");
    println!("matched flows:\n{pairs}");
    assert_eq!(pairs.len(), 1);

    // Unmatched flows 2 and 3 still wait in `opens`.
    assert_eq!(engine.basket("opens")?.len(), 2);

    // Advance past the timeout: the GC query sweeps the residue.
    clock.advance(2 * 3_600_000_000);
    engine.run_until_quiescent(32)?;
    assert_eq!(engine.basket("opens")?.len(), 0, "residue swept");
    let trash = engine.catalog().get("trash").unwrap();
    let trash_len = trash.read().unwrap().len();
    println!("trash holds {trash_len} timed-out flows");
    assert_eq!(trash_len, 2);

    // Split demo.
    engine.ingest(
        "suspicious",
        &[
            vec![Value::Int(9), Value::Int(400), Value::Ts(clock.now())],
            vec![Value::Int(10), Value::Int(40_000), Value::Ts(clock.now())],
        ],
    )?;
    engine.run_until_quiescent(32)?;
    println!(
        "normal flows after split: {}",
        engine.basket("normal")?.len()
    );
    assert_eq!(engine.basket("normal")?.len(), 1);
    Ok(())
}
