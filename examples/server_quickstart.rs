//! Quickstart against a live `datacelld` daemon.
//!
//! Unlike `examples/quickstart.rs` (in-process engine), everything here
//! goes through the server's TCP surface, exactly as an external client
//! would: the control plane registers schema and a continuous query, the
//! data plane pushes sensor readings through a receptor socket and reads
//! alerts back from an emitter socket.
//!
//! The daemon is booted inside this process for convenience; point
//! `Client::connect` at any reachable `datacelld` (e.g. started with
//! `cargo run --bin datacelld -- --listen 127.0.0.1:7077`) and the rest
//! of the code is unchanged.
//!
//! Run with: `cargo run --example server_quickstart`

use std::time::Duration;

use datacell_repro::dcserver::client::Client;
use datacell_repro::dcserver::{bind, ServerConfig};
use datacell_repro::monet::prelude::*;

fn main() -> datacell_repro::dcserver::Result<()> {
    // --- boot a daemon on an ephemeral control port ---------------------
    let server = bind("127.0.0.1:0", ServerConfig::default())?;
    let addr = server.local_addr()?;
    let daemon = std::thread::spawn(move || server.serve());
    println!("datacelld listening on {addr}");

    // --- the client path ------------------------------------------------
    let mut c = Client::connect(addr)?;
    c.ping()?;

    // schema + continuous query over the control plane
    c.create_stream("readings", "(sensor int, temp double)")?;
    c.register_query(
        "hot_readings",
        "select sensor, temp from [select * from readings] as W where W.temp > 30.0",
    )?;

    // data-plane ports (0 = server picks an ephemeral port)
    let rport = c.attach_receptor("readings", 0)?;
    let eport = c.attach_emitter("hot_readings", 0)?;
    println!("receptor on :{rport}, emitter on :{eport}");

    // simulate a sensor: ten readings, four of them hot
    let mut sink = c.open_receptor(rport)?;
    for i in 0..10i64 {
        sink.send_row(&[Value::Int(i), Value::Double(25.0 + i as f64)])?;
    }
    sink.flush()?;

    // subscribe to alerts
    let mut tap = c.open_emitter(eport)?;
    tap.set_timeout(Some(Duration::from_secs(10)))?;
    let schema = Schema::from_pairs(&[("sensor", ValueType::Int), ("temp", ValueType::Double)]);
    let alerts = tap.take_rows(&schema, 4)?;
    for row in &alerts {
        println!("ALERT sensor={} temp={}", row[0], row[1]);
    }
    assert_eq!(alerts.len(), 4, "temps 31..34 exceed the threshold");

    // --- the batch-first binary fast path -------------------------------
    // same server, second stream + query: ports attached with FORMAT
    // BINARY move whole columnar batches instead of text lines (a fresh
    // stream, because a consuming query owns its input basket's tuples)
    use datacell_repro::datacell::frame::WireFormat;
    c.create_stream("probes", "(sensor int, temp double)")?;
    c.register_query(
        "cold_readings",
        "select sensor, temp from [select * from probes] as W where W.temp < 27.0",
    )?;
    let rport_bin = c.attach_receptor_fmt("probes", 0, WireFormat::Binary)?;
    let eport_bin = c.attach_emitter_fmt("cold_readings", 0, WireFormat::Binary)?;
    let mut bsink = c.open_receptor_with(rport_bin, WireFormat::Binary, &schema)?;
    let mut btap = c.open_emitter_with(eport_bin, WireFormat::Binary)?;
    btap.set_timeout(Some(Duration::from_secs(10)))?;
    let batch = Relation::from_columns(vec![
        ("sensor".into(), Column::from_ints((100..110).collect())),
        (
            "temp".into(),
            Column::from_doubles((0..10).map(|i| 22.0 + i as f64).collect()),
        ),
    ])
    .unwrap();
    bsink.send_batch(&batch)?;
    bsink.flush()?;
    let mut cold = 0usize;
    while cold < 5 {
        let Some(result) = btap.next_batch(&schema)? else {
            break;
        };
        cold += result.len();
        println!("cold batch: {} tuples", result.len());
    }
    assert_eq!(cold, 5, "temps 22..26 are below the threshold");

    // introspection, then graceful shutdown
    for line in c.stats()? {
        println!("stats: {line}");
    }
    c.shutdown()?;
    daemon.join().expect("daemon thread")?;
    println!("daemon shut down cleanly");
    Ok(())
}
