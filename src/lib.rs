//! Umbrella crate for the DataCell reproduction workspace.
//!
//! The real code lives in the member crates:
//!
//! * [`monet`] — mini column-store kernel (the MonetDB substrate);
//! * [`petri`] — Petri-net processing model;
//! * [`dcsql`] — SQL front-end with basket expressions;
//! * [`datacell`] — the stream engine (baskets, factories, scheduler);
//! * [`dcserver`] — the `datacelld` daemon and `dcclient` client library;
//! * [`linearroad`] — the Linear Road benchmark.
//!
//! This crate only hosts the workspace-level examples and integration
//! tests; it re-exports the member crates for convenience.

pub use datacell;
pub use dcserver;
pub use dcsql;
pub use linearroad;
pub use monet;
pub use petri;
