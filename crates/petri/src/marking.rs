//! Markings: the token state of a net, with enablement and firing rules.

use crate::net::{Net, PlaceId, TransitionId};

/// Token counts per place. A marking is the Petri net's "computational
/// state" — the paper leans on this to reason about DataCell scheduling.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Marking {
    tokens: Vec<u64>,
}

impl Marking {
    /// All-empty marking for `net`.
    pub fn empty(net: &Net) -> Self {
        Marking {
            tokens: vec![0; net.num_places()],
        }
    }

    /// Marking from explicit counts (must match the place count).
    pub fn from_tokens(tokens: Vec<u64>) -> Self {
        Marking { tokens }
    }

    pub fn tokens(&self, place: PlaceId) -> u64 {
        self.tokens[place.0]
    }

    pub fn set_tokens(&mut self, place: PlaceId, n: u64) {
        self.tokens[place.0] = n;
    }

    pub fn add_tokens(&mut self, place: PlaceId, n: u64) {
        self.tokens[place.0] += n;
    }

    pub fn as_slice(&self) -> &[u64] {
        &self.tokens
    }

    /// Total tokens across all places.
    pub fn total(&self) -> u64 {
        self.tokens.iter().sum()
    }

    /// A transition is enabled iff every input place holds at least the arc
    /// weight *and* firing would not overflow any bounded output place.
    pub fn enabled(&self, net: &Net, t: TransitionId) -> bool {
        let tr = net.transition(t);
        let inputs_ok = tr
            .inputs
            .iter()
            .all(|(p, w)| self.tokens[p.0] >= *w);
        if !inputs_ok {
            return false;
        }
        tr.outputs.iter().all(|(p, w)| {
            match net.place(*p).capacity {
                Some(cap) => {
                    // self-loops: tokens consumed on the input side free room
                    let consumed = tr
                        .inputs
                        .iter()
                        .find(|(q, _)| q == p)
                        .map(|(_, w)| *w)
                        .unwrap_or(0);
                    self.tokens[p.0] - consumed + w <= cap
                }
                None => true,
            }
        })
    }

    /// All currently enabled transitions.
    pub fn enabled_set(&self, net: &Net) -> Vec<TransitionId> {
        (0..net.num_transitions())
            .map(TransitionId)
            .filter(|&t| self.enabled(net, t))
            .collect()
    }

    /// Fire `t`: consume input tokens, produce output tokens. This is the
    /// atomic, non-interruptible step of the model. Returns `false` (and
    /// leaves the marking untouched) if `t` is not enabled.
    pub fn fire(&mut self, net: &Net, t: TransitionId) -> bool {
        if !self.enabled(net, t) {
            return false;
        }
        let tr = net.transition(t);
        for (p, w) in &tr.inputs {
            self.tokens[p.0] -= w;
        }
        for (p, w) in &tr.outputs {
            self.tokens[p.0] += w;
        }
        true
    }

    /// Is the marking dead (no transition enabled)?
    pub fn is_dead(&self, net: &Net) -> bool {
        self.enabled_set(net).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Net;

    fn chain() -> (Net, Vec<PlaceId>, Vec<TransitionId>) {
        let mut b = Net::builder();
        let p0 = b.place("p0");
        let p1 = b.place("p1");
        let p2 = b.place("p2");
        let t0 = b.transition("t0", vec![(p0, 1)], vec![(p1, 1)]).unwrap();
        let t1 = b.transition("t1", vec![(p1, 2)], vec![(p2, 1)]).unwrap();
        (b.build(), vec![p0, p1, p2], vec![t0, t1])
    }

    #[test]
    fn enablement_respects_weights() {
        let (net, p, t) = chain();
        let mut m = Marking::empty(&net);
        m.set_tokens(p[0], 1);
        assert!(m.enabled(&net, t[0]));
        assert!(!m.enabled(&net, t[1]), "t1 needs 2 tokens in p1");
        assert!(m.fire(&net, t[0]));
        assert_eq!(m.tokens(p[1]), 1);
        assert!(!m.enabled(&net, t[1]));
        m.add_tokens(p[1], 1);
        assert!(m.enabled(&net, t[1]));
        assert!(m.fire(&net, t[1]));
        assert_eq!(m.as_slice(), &[0, 0, 1]);
    }

    #[test]
    fn firing_disabled_is_a_noop() {
        let (net, _, t) = chain();
        let mut m = Marking::empty(&net);
        let before = m.clone();
        assert!(!m.fire(&net, t[0]));
        assert_eq!(m, before);
    }

    #[test]
    fn token_conservation_on_unit_chain() {
        let (net, p, t) = chain();
        let mut m = Marking::empty(&net);
        m.set_tokens(p[0], 4);
        while m.fire(&net, t[0]) {}
        assert_eq!(m.tokens(p[1]), 4);
        while m.fire(&net, t[1]) {}
        // t1 merges two tokens into one
        assert_eq!(m.as_slice(), &[0, 0, 2]);
        assert!(m.is_dead(&net));
    }

    #[test]
    fn capacity_blocks_firing() {
        let mut b = Net::builder();
        let src = b.place("src");
        let dst = b.place_with_capacity("dst", Some(2));
        let t = b.transition("t", vec![(src, 1)], vec![(dst, 1)]).unwrap();
        let net = b.build();
        let mut m = Marking::empty(&net);
        m.set_tokens(src, 5);
        assert!(m.fire(&net, t));
        assert!(m.fire(&net, t));
        assert!(!m.enabled(&net, t), "dst at capacity");
        assert_eq!(m.tokens(dst), 2);
    }

    #[test]
    fn self_loop_with_capacity() {
        // transition consumes and reproduces a token in a bounded place:
        // always enabled as long as one token is present
        let mut b = Net::builder();
        let p = b.place_with_capacity("p", Some(1));
        let t = b.transition("t", vec![(p, 1)], vec![(p, 1)]).unwrap();
        let net = b.build();
        let mut m = Marking::empty(&net);
        m.set_tokens(p, 1);
        assert!(m.enabled(&net, t));
        assert!(m.fire(&net, t));
        assert_eq!(m.tokens(p), 1);
    }

    #[test]
    fn enabled_set_lists_all() {
        let (net, p, t) = chain();
        let mut m = Marking::empty(&net);
        m.set_tokens(p[0], 1);
        m.set_tokens(p[1], 2);
        assert_eq!(m.enabled_set(&net), vec![t[0], t[1]]);
        assert_eq!(m.total(), 3);
    }
}
