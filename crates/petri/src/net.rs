//! Petri-net structure: places, transitions, weighted arcs.
//!
//! The DataCell processing model *is* a Petri net (paper §4.1): baskets are
//! places, factories/receptors/emitters are transitions, and the scheduler
//! repeatedly fires enabled transitions. This module provides the net
//! structure; [`crate::marking::Marking`] carries the token state and
//! [`crate::sim`] executes firing sequences.

use std::fmt;

/// Index of a place within a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub usize);

/// Index of a transition within a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub usize);

/// A place: token holder with an optional capacity bound.
#[derive(Debug, Clone)]
pub struct Place {
    pub name: String,
    /// Maximum tokens the place may hold (`None` = unbounded). Firing a
    /// transition that would overflow a bounded output place is disabled.
    pub capacity: Option<u64>,
}

/// A transition with weighted input and output arcs.
#[derive(Debug, Clone)]
pub struct Transition {
    pub name: String,
    /// `(place, weight)`: tokens consumed per firing.
    pub inputs: Vec<(PlaceId, u64)>,
    /// `(place, weight)`: tokens produced per firing.
    pub outputs: Vec<(PlaceId, u64)>,
}

/// An immutable Petri-net structure, built via [`NetBuilder`].
#[derive(Debug, Clone, Default)]
pub struct Net {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl Net {
    pub fn builder() -> NetBuilder {
        NetBuilder::default()
    }

    pub fn places(&self) -> &[Place] {
        &self.places
    }

    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    pub fn place(&self, id: PlaceId) -> &Place {
        &self.places[id.0]
    }

    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.0]
    }

    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Transitions that read from `place`.
    pub fn consumers_of(&self, place: PlaceId) -> Vec<TransitionId> {
        self.transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| t.inputs.iter().any(|(p, _)| *p == place))
            .map(|(i, _)| TransitionId(i))
            .collect()
    }

    /// Transitions that write to `place`.
    pub fn producers_of(&self, place: PlaceId) -> Vec<TransitionId> {
        self.transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| t.outputs.iter().any(|(p, _)| *p == place))
            .map(|(i, _)| TransitionId(i))
            .collect()
    }

    /// Places with no producing transition (net sources — stream entry
    /// points in DataCell).
    pub fn source_places(&self) -> Vec<PlaceId> {
        (0..self.places.len())
            .map(PlaceId)
            .filter(|&p| self.producers_of(p).is_empty())
            .collect()
    }

    /// Places with no consuming transition (net sinks — emitter outputs).
    pub fn sink_places(&self) -> Vec<PlaceId> {
        (0..self.places.len())
            .map(PlaceId)
            .filter(|&p| self.consumers_of(p).is_empty())
            .collect()
    }
}

impl fmt::Display for Net {
    /// Dot-ish dump for debugging DataCell topologies.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "petri net: {} places, {} transitions", self.places.len(), self.transitions.len())?;
        for (i, t) in self.transitions.iter().enumerate() {
            let ins: Vec<String> = t
                .inputs
                .iter()
                .map(|(p, w)| format!("{}×{}", self.places[p.0].name, w))
                .collect();
            let outs: Vec<String> = t
                .outputs
                .iter()
                .map(|(p, w)| format!("{}×{}", self.places[p.0].name, w))
                .collect();
            writeln!(f, "  t{i} {}: [{}] -> [{}]", t.name, ins.join(", "), outs.join(", "))?;
        }
        Ok(())
    }
}

/// Errors raised while assembling a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    UnknownPlace(usize),
    ZeroWeightArc,
    DuplicateArc { transition: String, place: String },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownPlace(i) => write!(f, "unknown place id {i}"),
            NetError::ZeroWeightArc => write!(f, "arc weight must be positive"),
            NetError::DuplicateArc { transition, place } => {
                write!(f, "duplicate arc between {transition} and {place}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Incremental net constructor.
#[derive(Debug, Default)]
pub struct NetBuilder {
    net: Net,
}

impl NetBuilder {
    /// Add an unbounded place.
    pub fn place(&mut self, name: impl Into<String>) -> PlaceId {
        self.place_with_capacity(name, None)
    }

    /// Add a place with a token capacity.
    pub fn place_with_capacity(
        &mut self,
        name: impl Into<String>,
        capacity: Option<u64>,
    ) -> PlaceId {
        self.net.places.push(Place {
            name: name.into(),
            capacity,
        });
        PlaceId(self.net.places.len() - 1)
    }

    /// Add a transition with weighted input/output arcs.
    pub fn transition(
        &mut self,
        name: impl Into<String>,
        inputs: Vec<(PlaceId, u64)>,
        outputs: Vec<(PlaceId, u64)>,
    ) -> Result<TransitionId, NetError> {
        let name = name.into();
        for (p, w) in inputs.iter().chain(outputs.iter()) {
            if p.0 >= self.net.places.len() {
                return Err(NetError::UnknownPlace(p.0));
            }
            if *w == 0 {
                return Err(NetError::ZeroWeightArc);
            }
        }
        for list in [&inputs, &outputs] {
            for (i, (p, _)) in list.iter().enumerate() {
                if list.iter().skip(i + 1).any(|(q, _)| q == p) {
                    return Err(NetError::DuplicateArc {
                        transition: name.clone(),
                        place: self.net.places[p.0].name.clone(),
                    });
                }
            }
        }
        self.net.transitions.push(Transition {
            name,
            inputs,
            outputs,
        });
        Ok(TransitionId(self.net.transitions.len() - 1))
    }

    pub fn build(self) -> Net {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 topology: R → B1 → Q → B2 → E.
    pub(crate) fn figure1() -> (Net, Vec<PlaceId>, Vec<TransitionId>) {
        let mut b = Net::builder();
        let stream = b.place("stream");
        let b1 = b.place("B1");
        let b2 = b.place("B2");
        let out = b.place("client");
        let r = b.transition("R", vec![(stream, 1)], vec![(b1, 1)]).unwrap();
        let q = b.transition("Q", vec![(b1, 1)], vec![(b2, 1)]).unwrap();
        let e = b.transition("E", vec![(b2, 1)], vec![(out, 1)]).unwrap();
        (b.build(), vec![stream, b1, b2, out], vec![r, q, e])
    }

    #[test]
    fn build_figure1() {
        let (net, places, trans) = figure1();
        assert_eq!(net.num_places(), 4);
        assert_eq!(net.num_transitions(), 3);
        assert_eq!(net.consumers_of(places[1]), vec![trans[1]]);
        assert_eq!(net.producers_of(places[1]), vec![trans[0]]);
        assert_eq!(net.source_places(), vec![places[0]]);
        assert_eq!(net.sink_places(), vec![places[3]]);
    }

    #[test]
    fn builder_validation() {
        let mut b = Net::builder();
        let p = b.place("p");
        assert_eq!(
            b.transition("t", vec![(PlaceId(9), 1)], vec![]),
            Err(NetError::UnknownPlace(9))
        );
        assert_eq!(
            b.transition("t", vec![(p, 0)], vec![]),
            Err(NetError::ZeroWeightArc)
        );
        assert!(matches!(
            b.transition("t", vec![(p, 1), (p, 1)], vec![]),
            Err(NetError::DuplicateArc { .. })
        ));
        // source/sink transitions (empty side) are fine
        assert!(b.transition("gen", vec![], vec![(p, 1)]).is_ok());
        assert!(b.transition("sink", vec![(p, 1)], vec![]).is_ok());
    }

    #[test]
    fn display_dump() {
        let (net, _, _) = figure1();
        let s = net.to_string();
        assert!(s.contains("t1 Q: [B1×1] -> [B2×1]"));
    }

    #[test]
    fn error_display() {
        assert_eq!(NetError::UnknownPlace(3).to_string(), "unknown place id 3");
        assert_eq!(
            NetError::ZeroWeightArc.to_string(),
            "arc weight must be positive"
        );
    }
}
