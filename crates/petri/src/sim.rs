//! Firing-sequence simulation.
//!
//! The Petri-net model leaves firing order explicitly undefined (§2.2);
//! schedulers pick an order. The simulator runs a net under a pluggable
//! [`FiringPolicy`] and records the trace — this is the reference model the
//! DataCell scheduler is tested against.

use crate::marking::Marking;
use crate::net::{Net, TransitionId};

/// Chooses which enabled transition fires next.
pub trait FiringPolicy {
    fn choose(&mut self, net: &Net, marking: &Marking, enabled: &[TransitionId])
        -> Option<TransitionId>;
}

/// Always fires the lowest-numbered enabled transition — deterministic and
/// equivalent to a round-robin scheduler that restarts from the top.
#[derive(Debug, Default, Clone)]
pub struct FifoPolicy;

impl FiringPolicy for FifoPolicy {
    fn choose(
        &mut self,
        _net: &Net,
        _marking: &Marking,
        enabled: &[TransitionId],
    ) -> Option<TransitionId> {
        enabled.first().copied()
    }
}

/// Round-robin over transitions, remembering the last fired index so every
/// transition gets a turn (fair scheduling, like the DataCell scheduler's
/// loop over factories).
#[derive(Debug, Default, Clone)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl FiringPolicy for RoundRobinPolicy {
    fn choose(
        &mut self,
        net: &Net,
        _marking: &Marking,
        enabled: &[TransitionId],
    ) -> Option<TransitionId> {
        if enabled.is_empty() {
            return None;
        }
        let n = net.num_transitions();
        for off in 1..=n {
            let cand = TransitionId((self.cursor + off) % n);
            if enabled.contains(&cand) {
                self.cursor = cand.0;
                return Some(cand);
            }
        }
        None
    }
}

/// Pseudo-random policy with an embedded linear congruential generator —
/// deterministic per seed without external dependencies.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    state: u64,
}

impl RandomPolicy {
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            state: seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl FiringPolicy for RandomPolicy {
    fn choose(
        &mut self,
        _net: &Net,
        _marking: &Marking,
        enabled: &[TransitionId],
    ) -> Option<TransitionId> {
        if enabled.is_empty() {
            None
        } else {
            Some(enabled[(self.next_u64() % enabled.len() as u64) as usize])
        }
    }
}

/// Result of a bounded simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Sequence of fired transitions.
    pub trace: Vec<TransitionId>,
    /// Final marking.
    pub final_marking: Marking,
    /// True if the run stopped because no transition was enabled (as
    /// opposed to hitting the step limit).
    pub quiescent: bool,
}

/// Run at most `max_steps` firings under `policy`.
pub fn run(
    net: &Net,
    initial: Marking,
    policy: &mut dyn FiringPolicy,
    max_steps: usize,
) -> SimResult {
    let mut marking = initial;
    let mut trace = Vec::new();
    for _ in 0..max_steps {
        let enabled = marking.enabled_set(net);
        match policy.choose(net, &marking, &enabled) {
            Some(t) if marking.fire(net, t) => trace.push(t),
            _ => {
                return SimResult {
                    trace,
                    final_marking: marking,
                    quiescent: true,
                };
            }
        }
    }
    let quiescent = marking.is_dead(net);
    SimResult {
        trace,
        final_marking: marking,
        quiescent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Net, PlaceId};

    /// R → B1 → Q → B2 → E pipeline with `n` initial stream tokens.
    fn pipeline(n: u64) -> (Net, Marking, Vec<PlaceId>) {
        let mut b = Net::builder();
        let stream = b.place("stream");
        let b1 = b.place("B1");
        let b2 = b.place("B2");
        let out = b.place("out");
        b.transition("R", vec![(stream, 1)], vec![(b1, 1)]).unwrap();
        b.transition("Q", vec![(b1, 1)], vec![(b2, 1)]).unwrap();
        b.transition("E", vec![(b2, 1)], vec![(out, 1)]).unwrap();
        let net = b.build();
        let mut m = Marking::empty(&net);
        m.set_tokens(stream, n);
        (net, m, vec![stream, b1, b2, out])
    }

    #[test]
    fn fifo_drains_pipeline() {
        let (net, m, p) = pipeline(5);
        let mut policy = FifoPolicy;
        let res = run(&net, m, &mut policy, 1000);
        assert!(res.quiescent);
        assert_eq!(res.final_marking.tokens(p[3]), 5);
        assert_eq!(res.trace.len(), 15, "5 tokens × 3 stages");
    }

    #[test]
    fn round_robin_drains_pipeline_fairly() {
        let (net, m, p) = pipeline(5);
        let mut policy = RoundRobinPolicy::default();
        let res = run(&net, m, &mut policy, 1000);
        assert!(res.quiescent);
        assert_eq!(res.final_marking.tokens(p[3]), 5);
        // fairness: no transition fires twice before another enabled one
        // (weak check: trace alternates in the steady state)
        assert_eq!(res.trace.len(), 15);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let (net, m, _) = pipeline(10);
        let r1 = run(&net, m.clone(), &mut RandomPolicy::new(7), 1000);
        let r2 = run(&net, m.clone(), &mut RandomPolicy::new(7), 1000);
        assert_eq!(r1.trace, r2.trace);
        let r3 = run(&net, m, &mut RandomPolicy::new(8), 1000);
        // different seed almost surely gives a different order (same length)
        assert_eq!(r3.trace.len(), r1.trace.len());
    }

    #[test]
    fn all_policies_reach_same_final_marking() {
        // Confluence on a conflict-free net: final marking is policy-independent.
        let (net, m, _) = pipeline(8);
        let f = run(&net, m.clone(), &mut FifoPolicy, 10_000).final_marking;
        let rr = run(&net, m.clone(), &mut RoundRobinPolicy::default(), 10_000).final_marking;
        let rnd = run(&net, m, &mut RandomPolicy::new(1), 10_000).final_marking;
        assert_eq!(f, rr);
        assert_eq!(f, rnd);
    }

    #[test]
    fn step_limit_stops_infinite_nets() {
        // a generator transition with no inputs never quiesces
        let mut b = Net::builder();
        let p = b.place("p");
        b.transition("gen", vec![], vec![(p, 1)]).unwrap();
        let net = b.build();
        let res = run(&net, Marking::empty(&net), &mut FifoPolicy, 100);
        assert_eq!(res.trace.len(), 100);
        assert!(!res.quiescent);
        assert_eq!(res.final_marking.tokens(p), 100);
    }
}
