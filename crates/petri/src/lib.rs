//! # petri — the Petri-net processing model
//!
//! DataCell's scheduler follows the Petri-net abstraction (paper §2.2 and
//! §4.1): **baskets are places**, **receptors/factories/emitters are
//! transitions**, and a transition fires when all of its input places hold
//! tokens, consuming inputs and producing outputs in one atomic step. The
//! firing order is deliberately left to the scheduler.
//!
//! This crate is the standalone model: structure ([`net`]), state
//! ([`marking`]), execution ([`sim`]) and analysis ([`analysis`]). The
//! `datacell` crate mirrors its continuous-query network into one of these
//! nets to validate topologies (deadlock freedom, boundedness under
//! thresholds) and to drive its scheduler tests.
//!
//! ```
//! use petri::net::Net;
//! use petri::marking::Marking;
//! use petri::sim::{run, FifoPolicy};
//!
//! // Figure 1 of the paper: R -> B1 -> Q -> B2 -> E
//! let mut b = Net::builder();
//! let stream = b.place("stream");
//! let b1 = b.place("B1");
//! let b2 = b.place("B2");
//! let client = b.place("client");
//! b.transition("R", vec![(stream, 1)], vec![(b1, 1)]).unwrap();
//! b.transition("Q", vec![(b1, 1)], vec![(b2, 1)]).unwrap();
//! b.transition("E", vec![(b2, 1)], vec![(client, 1)]).unwrap();
//! let net = b.build();
//!
//! let mut m = Marking::empty(&net);
//! m.set_tokens(stream, 3);
//! let result = run(&net, m, &mut FifoPolicy, 1_000);
//! assert!(result.quiescent);
//! assert_eq!(result.final_marking.tokens(client), 3);
//! ```

pub mod analysis;
pub mod marking;
pub mod net;
pub mod sim;

pub use marking::Marking;
pub use net::{Net, NetBuilder, NetError, Place, PlaceId, Transition, TransitionId};
