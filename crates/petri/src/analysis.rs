//! Structural and behavioural analysis on bounded nets.
//!
//! Small toolbox used to sanity-check DataCell topologies before running
//! them: bounded reachability exploration, deadlock detection, and
//! conservation (P-invariant) checking.

use std::collections::{HashSet, VecDeque};

use crate::marking::Marking;
use crate::net::{Net, TransitionId};

/// Outcome of a bounded reachability exploration.
#[derive(Debug, Clone)]
pub struct Reachability {
    /// All distinct markings reached (including the initial one).
    pub markings: Vec<Marking>,
    /// Dead markings (no enabled transitions) among them.
    pub deadlocks: Vec<Marking>,
    /// True if exploration exhausted the state space within the limit.
    pub complete: bool,
}

/// Breadth-first exploration of the reachability graph, stopping after
/// `max_states` distinct markings.
pub fn explore(net: &Net, initial: &Marking, max_states: usize) -> Reachability {
    let mut seen: HashSet<Marking> = HashSet::new();
    let mut queue: VecDeque<Marking> = VecDeque::new();
    let mut deadlocks = Vec::new();
    seen.insert(initial.clone());
    queue.push_back(initial.clone());
    let mut complete = true;
    while let Some(m) = queue.pop_front() {
        let enabled = m.enabled_set(net);
        if enabled.is_empty() {
            deadlocks.push(m.clone());
        }
        for t in enabled {
            let mut next = m.clone();
            next.fire(net, t);
            if !seen.contains(&next) {
                if seen.len() >= max_states {
                    complete = false;
                    continue;
                }
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    Reachability {
        markings: seen.into_iter().collect(),
        deadlocks,
        complete,
    }
}

/// Can the net reach a dead marking from `initial` (within the bound)?
pub fn has_deadlock(net: &Net, initial: &Marking, max_states: usize) -> Option<Marking> {
    let r = explore(net, initial, max_states);
    r.deadlocks.into_iter().next()
}

/// Check a conservation law: `weights · marking` must be invariant under
/// every transition (a P-semiflow). Returns the transitions that violate it.
pub fn conservation_violations(net: &Net, weights: &[i64]) -> Vec<TransitionId> {
    assert_eq!(
        weights.len(),
        net.num_places(),
        "one weight per place required"
    );
    let mut violators = Vec::new();
    for (i, t) in net.transitions().iter().enumerate() {
        let mut delta: i64 = 0;
        for (p, w) in &t.inputs {
            delta -= weights[p.0] * (*w as i64);
        }
        for (p, w) in &t.outputs {
            delta += weights[p.0] * (*w as i64);
        }
        if delta != 0 {
            violators.push(TransitionId(i));
        }
    }
    violators
}

/// Is every place bounded by `bound` across the (bounded) reachable set?
/// `None` means exploration was cut off before the answer was certain.
pub fn bounded_by(net: &Net, initial: &Marking, bound: u64, max_states: usize) -> Option<bool> {
    let r = explore(net, initial, max_states);
    let all_within = r
        .markings
        .iter()
        .all(|m| m.as_slice().iter().all(|&t| t <= bound));
    if !all_within {
        return Some(false); // a counterexample is definitive even when cut off
    }
    r.complete.then_some(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Net, PlaceId};

    fn chain(n: u64) -> (Net, Marking, Vec<PlaceId>) {
        let mut b = Net::builder();
        let p0 = b.place("p0");
        let p1 = b.place("p1");
        let p2 = b.place("p2");
        b.transition("t0", vec![(p0, 1)], vec![(p1, 1)]).unwrap();
        b.transition("t1", vec![(p1, 1)], vec![(p2, 1)]).unwrap();
        let net = b.build();
        let mut m = Marking::empty(&net);
        m.set_tokens(p0, n);
        (net, m, vec![p0, p1, p2])
    }

    #[test]
    fn explore_counts_states() {
        // 3 tokens through a 2-transition chain: markings are the
        // compositions of 3 into 3 ordered bins = C(5,2) = 10
        let (net, m, _) = chain(3);
        let r = explore(&net, &m, 1000);
        assert!(r.complete);
        assert_eq!(r.markings.len(), 10);
        assert_eq!(r.deadlocks.len(), 1, "all tokens in p2 is the only dead state");
        assert_eq!(r.deadlocks[0].as_slice(), &[0, 0, 3]);
    }

    #[test]
    fn deadlock_detection() {
        let (net, m, _) = chain(1);
        let d = has_deadlock(&net, &m, 100).unwrap();
        assert_eq!(d.as_slice(), &[0, 0, 1]);

        // a cycle never deadlocks
        let mut b = Net::builder();
        let p = b.place("p");
        let q = b.place("q");
        b.transition("t0", vec![(p, 1)], vec![(q, 1)]).unwrap();
        b.transition("t1", vec![(q, 1)], vec![(p, 1)]).unwrap();
        let net = b.build();
        let mut m = Marking::empty(&net);
        m.set_tokens(p, 1);
        assert!(has_deadlock(&net, &m, 100).is_none());
    }

    #[test]
    fn conservation_unit_weights() {
        let (net, _, _) = chain(1);
        // every transition moves exactly one token: unit weights conserved
        assert!(conservation_violations(&net, &[1, 1, 1]).is_empty());
        // weighting p1 double breaks it
        assert_eq!(conservation_violations(&net, &[1, 2, 1]).len(), 2);
    }

    #[test]
    fn conservation_catches_amplifiers() {
        let mut b = Net::builder();
        let p = b.place("p");
        let q = b.place("q");
        // produces two tokens per one consumed — a replicating stream
        b.transition("dup", vec![(p, 1)], vec![(q, 2)]).unwrap();
        let net = b.build();
        assert_eq!(conservation_violations(&net, &[1, 1]).len(), 1);
        // but weighted 2:1 it conserves
        assert!(conservation_violations(&net, &[2, 1]).is_empty());
    }

    #[test]
    fn boundedness() {
        let (net, m, _) = chain(2);
        assert_eq!(bounded_by(&net, &m, 2, 1000), Some(true));
        assert_eq!(bounded_by(&net, &m, 1, 1000), Some(false));

        // unbounded generator: exploration cut off, counterexample found
        let mut b = Net::builder();
        let p = b.place("p");
        b.transition("gen", vec![], vec![(p, 1)]).unwrap();
        let net = b.build();
        let m = Marking::empty(&net);
        assert_eq!(bounded_by(&net, &m, 5, 100), Some(false));
        // tiny exploration bound with no violation found within it → unknown
        assert_eq!(bounded_by(&net, &m, 10_000, 3), None);
    }

    #[test]
    #[should_panic(expected = "one weight per place")]
    fn conservation_arity_checked() {
        let (net, _, _) = chain(1);
        conservation_violations(&net, &[1]);
    }
}
