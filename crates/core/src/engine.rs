//! The DataCell engine facade.
//!
//! Assembles baskets, the catalog, variables, factories and the scheduler
//! behind one API: create streams, register continuous queries (SQL text),
//! ingest tuples, run the scheduler, subscribe to results — plus one-shot
//! statement execution for setup and ad-hoc/historical queries.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::Receiver;
use dcsql::ast::{CreateKind, Stmt};
use dcsql::exec::{Effects, QueryContext};
use dcsql::parse_statements;
use monet::catalog::Catalog;
use monet::prelude::*;
use parking_lot::{Mutex, RwLock};

use crate::basket::Basket;
use crate::clock::{Clock, SystemClock};
use crate::error::{EngineError, Result};
use crate::factory::{ConsumeMode, Factory, PlanMode, QueryFactory};
use crate::persist::DurabilityProvider;
use crate::scheduler::{RoundReport, Scheduler};
use crate::varstore::VarStore;

/// Options controlling how a continuous query becomes a factory.
#[derive(Default)]
pub struct QueryOptions {
    /// Batch threshold (fire only with ≥ n tuples in every input).
    pub min_input: Option<usize>,
    /// Defer consumption to a shared unlocker (shared-baskets strategy).
    pub consume: Option<ConsumeMode>,
    /// Override the firing inputs (e.g. trigger on an auxiliary basket).
    pub trigger_on: Option<Vec<String>>,
    /// Attach a result channel for bare SELECT output.
    pub subscribe: bool,
    /// Execution path: compiled physical plan (default) or the legacy
    /// AST interpreter (equivalence baseline / benchmarking).
    pub plan_mode: Option<PlanMode>,
}

impl QueryOptions {
    pub fn subscribed() -> Self {
        QueryOptions {
            subscribe: true,
            ..QueryOptions::default()
        }
    }
}

/// One basket's introspection snapshot (see [`DataCell::basket_report`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasketReport {
    pub name: String,
    pub len: usize,
    pub enabled: bool,
    pub total_in: u64,
    pub total_out: u64,
    pub dropped: u64,
    /// Lifetime peak of buffered tuples (backpressure telemetry).
    pub high_water: u64,
    /// Configured pending-batch cap (0 = unbounded).
    pub pending_cap: usize,
    /// Logically-deleted rows awaiting physical compaction.
    pub pending_deletes: usize,
    /// Lifetime physical compactions of the basket store.
    pub compactions: u64,
    /// Whether the basket has a durability sink attached.
    pub persistent: bool,
    /// Current write-ahead-log bytes (0 on transient baskets).
    pub wal_bytes: u64,
    /// Live immutable segment files (0 on transient baskets).
    pub segments: u64,
}

/// The engine.
pub struct DataCell {
    clock: Arc<dyn Clock>,
    baskets: RwLock<HashMap<String, Arc<Basket>>>,
    catalog: Arc<Catalog>,
    vars: Arc<VarStore>,
    scheduler: Mutex<Scheduler>,
    /// Telemetry handle — disabled by default; [`DataCell::set_telemetry`]
    /// installs a live one. Baskets/factories created *after* that call
    /// get probes attached automatically.
    telemetry: RwLock<dctrace::Telemetry>,
    /// Durability provider (`dcstore::Store` when the daemon runs with
    /// `--data-dir`); `CREATE STREAM ... PERSIST` fails without one.
    durability: RwLock<Option<Arc<dyn DurabilityProvider>>>,
    /// Shared join-key arrangements: standing queries joining on the same
    /// `(basket, column)` reuse one incremental index instead of each
    /// rebuilding a hash table per firing.
    arrangements: Arc<dcsql::plan::ArrangementRegistry>,
}

impl DataCell {
    /// Engine on the system (wall) clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(SystemClock))
    }

    /// Engine on an explicit clock (virtual clocks for replay).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        DataCell {
            clock,
            baskets: RwLock::new(HashMap::new()),
            catalog: Arc::new(Catalog::new()),
            vars: Arc::new(VarStore::new()),
            scheduler: Mutex::new(Scheduler::new()),
            telemetry: RwLock::new(dctrace::Telemetry::disabled()),
            durability: RwLock::new(None),
            arrangements: Arc::new(dcsql::plan::ArrangementRegistry::new()),
        }
    }

    /// The engine-wide shared arrangement registry (EXPLAIN/STATS
    /// introspection; `sweep` is its compaction knob).
    pub fn arrangements(&self) -> &Arc<dcsql::plan::ArrangementRegistry> {
        &self.arrangements
    }

    /// Install the durability provider backing `CREATE STREAM ... PERSIST`.
    pub fn set_durability(&self, provider: Arc<dyn DurabilityProvider>) {
        *self.durability.write() = Some(provider);
    }

    /// The installed durability provider, if any.
    pub fn durability(&self) -> Option<Arc<dyn DurabilityProvider>> {
        self.durability.read().clone()
    }

    /// Install a telemetry handle. Call before DDL: baskets and query
    /// factories created earlier keep running unprobed.
    pub fn set_telemetry(&self, t: dctrace::Telemetry) {
        *self.telemetry.write() = t;
    }

    /// The engine's telemetry handle (a disabled no-op unless
    /// [`DataCell::set_telemetry`] installed a live one).
    pub fn telemetry(&self) -> dctrace::Telemetry {
        self.telemetry.read().clone()
    }

    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn vars(&self) -> &Arc<VarStore> {
        &self.vars
    }

    // ---- schema management ---------------------------------------------------

    /// Create a stream entry point: a basket that stamps arrival times.
    pub fn create_stream(&self, name: &str, schema: &Schema) -> Result<Arc<Basket>> {
        self.create_basket_inner(name, schema, true)
    }

    /// Create an intermediate basket (no automatic timestamp column).
    pub fn create_basket(&self, name: &str, schema: &Schema) -> Result<Arc<Basket>> {
        self.create_basket_inner(name, schema, false)
    }

    /// Create a durable stream (`CREATE STREAM ... PERSIST`): a stamping
    /// basket whose accepted appends are write-ahead logged before they
    /// are acknowledged. Requires [`DataCell::set_durability`].
    pub fn create_stream_persistent(&self, name: &str, schema: &Schema) -> Result<Arc<Basket>> {
        let provider = self.durability.read().clone().ok_or_else(|| {
            EngineError::Config(
                "PERSIST requires a durability provider (run with --data-dir)".into(),
            )
        })?;
        let basket = self.create_basket_inner(name, schema, true)?;
        match provider.open_stream(name, schema) {
            Ok(sink) => {
                basket.set_persist(sink);
                Ok(basket)
            }
            Err(e) => {
                // a failed persistent create leaves nothing behind —
                // including arrangements, which must never outlive a
                // basket name's delete-generation counter
                self.baskets.write().remove(name);
                self.arrangements.purge(name);
                Err(e)
            }
        }
    }

    /// Seal a persistent stream's live rows into an immutable segment
    /// now (`FLUSH STREAM <name>`). Returns the number of rows sealed.
    pub fn flush_stream(&self, name: &str) -> Result<usize> {
        self.basket(name)?.seal_now()
    }

    fn create_basket_inner(
        &self,
        name: &str,
        schema: &Schema,
        stamp: bool,
    ) -> Result<Arc<Basket>> {
        let mut baskets = self.baskets.write();
        if baskets.contains_key(name) || self.catalog.contains(name) {
            return Err(EngineError::Duplicate(name.to_string()));
        }
        let basket = Basket::new(name, schema, stamp);
        if let Some(p) = dctrace::BasketProbe::new(&self.telemetry.read(), name) {
            basket.set_probe(p);
        }
        baskets.insert(name.to_string(), Arc::clone(&basket));
        Ok(basket)
    }

    /// Create a persistent table in the catalog.
    pub fn create_table(&self, name: &str, schema: &Schema) -> Result<()> {
        if self.baskets.read().contains_key(name) {
            return Err(EngineError::Duplicate(name.to_string()));
        }
        self.catalog.create_table(name, schema)?;
        Ok(())
    }

    /// Look up a basket.
    pub fn basket(&self, name: &str) -> Result<Arc<Basket>> {
        self.baskets
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::Unknown(format!("basket {name}")))
    }

    /// Names of all baskets (sorted).
    pub fn basket_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.baskets.read().keys().cloned().collect();
        v.sort();
        v
    }

    // ---- ingestion -------------------------------------------------------------

    /// Append rows to a stream/basket (the receptor fast path).
    pub fn ingest(&self, stream: &str, rows: &[Vec<Value>]) -> Result<usize> {
        let basket = self.basket(stream)?;
        basket.append_rows(rows, self.clock.as_ref())
    }

    /// Append a columnar batch.
    pub fn ingest_relation(&self, stream: &str, batch: Relation) -> Result<usize> {
        let basket = self.basket(stream)?;
        basket.append_relation(batch, self.clock.as_ref())
    }

    // ---- continuous queries -------------------------------------------------

    /// Register a continuous query from SQL text. Returns a result channel
    /// when `opts.subscribe` and the script contains a bare SELECT.
    pub fn register_query(
        &self,
        name: &str,
        sql: &str,
        opts: QueryOptions,
    ) -> Result<Option<Receiver<Relation>>> {
        let stmts = parse_statements(sql)?;
        self.register_parsed(name, stmts, opts)
    }

    /// Register a pre-parsed script.
    pub fn register_parsed(
        &self,
        name: &str,
        stmts: Vec<Stmt>,
        opts: QueryOptions,
    ) -> Result<Option<Receiver<Relation>>> {
        let baskets = self.baskets.read();
        let resolve = |n: &str| baskets.get(n).cloned();
        let consume = opts.consume.unwrap_or(ConsumeMode::Apply);
        let trigger = match &opts.trigger_on {
            Some(names) => {
                let mut v = Vec::with_capacity(names.len());
                for n in names {
                    v.push(
                        baskets
                            .get(n)
                            .cloned()
                            .ok_or_else(|| EngineError::Unknown(format!("basket {n}")))?,
                    );
                }
                Some(v)
            }
            None => None,
        };
        let mut factory = QueryFactory::new(
            name,
            stmts,
            &resolve,
            Arc::clone(&self.catalog),
            Arc::clone(&self.vars),
            Arc::clone(&self.clock),
            consume,
            trigger,
        )?;
        if let Some(n) = opts.min_input {
            factory = factory.with_min_input(n);
        }
        if let Some(mode) = opts.plan_mode {
            factory = factory.with_plan_mode(mode);
        }
        factory = factory
            .with_probe(dctrace::FireProbe::new(&self.telemetry.read(), name))
            .with_arrangements(Some(Arc::clone(&self.arrangements)));
        let rx = opts.subscribe.then(|| factory.result_channel());
        drop(baskets);
        self.scheduler.lock().add(Box::new(factory));
        Ok(rx)
    }

    /// Register a hand-built factory (lockers, Linear Road operators, ...).
    pub fn register_factory(&self, factory: Box<dyn Factory>) {
        self.scheduler.lock().add(factory);
    }

    // ---- scheduling ------------------------------------------------------------

    /// One scheduling round (fire every ready factory once).
    pub fn run_round(&self) -> Result<RoundReport> {
        self.scheduler.lock().run_round()
    }

    /// Run rounds until quiescent (bounded). Returns rounds executed.
    pub fn run_until_quiescent(&self, max_rounds: usize) -> Result<usize> {
        self.scheduler.lock().run_until_quiescent(max_rounds)
    }

    /// Per-basket introspection snapshot — the substrate of the server's
    /// `STATS` command.
    pub fn basket_report(&self) -> Vec<BasketReport> {
        let baskets = self.baskets.read();
        let mut v: Vec<BasketReport> = baskets
            .values()
            .map(|b| {
                let (total_in, total_out, dropped) = b.stats().snapshot();
                let (pending_deletes, compactions) = b.compaction_stats();
                let persist = b.persist_stats();
                BasketReport {
                    name: b.name().to_string(),
                    len: b.len(),
                    enabled: b.is_enabled(),
                    total_in,
                    total_out,
                    dropped,
                    high_water: b.stats().high_water(),
                    pending_cap: b.pending_cap(),
                    pending_deletes,
                    compactions,
                    persistent: persist.is_some(),
                    wal_bytes: persist.map(|p| p.wal_bytes).unwrap_or(0),
                    segments: persist.map(|p| p.segments).unwrap_or(0),
                }
            })
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Per-factory statistics snapshot: (name, stats).
    pub fn factory_stats(&self) -> Vec<(String, crate::scheduler::FactoryStats)> {
        let sched = self.scheduler.lock();
        sched
            .factory_names()
            .into_iter()
            .zip(sched.stats().iter().cloned())
            .collect()
    }

    /// Take the factories out for thread-per-factory deployment. The
    /// engine keeps baskets/catalog/vars; scheduling moves to the caller.
    pub fn take_factories(&self) -> Vec<Box<dyn Factory>> {
        let mut sched = self.scheduler.lock();
        std::mem::take(&mut *sched).into_factories()
    }

    // ---- one-shot execution ------------------------------------------------

    /// Execute a SQL script once, immediately applying all effects —
    /// used for setup (CREATE/INSERT), ad-hoc queries, and the
    /// benchmark's historical queries. Returns the last SELECT result.
    pub fn execute(&self, sql: &str) -> Result<Option<Relation>> {
        let stmts = parse_statements(sql)?;
        // Apply CREATEs first so later statements in the same script see
        // the new objects.
        let mut rest = Vec::new();
        for stmt in stmts {
            match stmt {
                Stmt::Create { kind, name, fields } => {
                    let schema = Schema::new(
                        fields
                            .iter()
                            .map(|(n, t)| Field::new(n.clone(), *t))
                            .collect(),
                    );
                    match kind {
                        CreateKind::Table => self.create_table(&name, &schema)?,
                        CreateKind::Basket => {
                            self.create_basket(&name, &schema)?;
                        }
                        CreateKind::Stream => {
                            self.create_stream(&name, &schema)?;
                        }
                    }
                }
                other => rest.push(other),
            }
        }
        if rest.is_empty() {
            return Ok(None);
        }
        // One-shot scripts hold the *consumed* baskets' locks for the
        // whole snapshot → execute → apply-consumption cycle, so the
        // recorded consumption positions cannot be invalidated by a
        // concurrently firing factory. Everything else the script
        // *references* is snapshotted up front — pruned to the plan's
        // column requirements, O(touched-columns) per basket — and
        // released; unreferenced baskets are never touched at all.
        // Read-heavy ad-hoc queries never stall receptors or factories,
        // and no other basket lock is ever taken while the consumed
        // guards are held (the locking discipline stays id-ordered,
        // acquire-all-then-hold).
        let shape = crate::analyze::analyze(&rest);
        let plan = dcsql::plan::PhysicalPlan::compile(&rest);
        let mut consumed_baskets: Vec<Arc<Basket>> = Vec::new();
        let mut snapshots: HashMap<String, Relation> = HashMap::new();
        {
            let baskets = self.baskets.read();
            for name in &shape.consumed {
                if let Some(b) = baskets.get(name) {
                    consumed_baskets.push(Arc::clone(b));
                }
            }
            // snapshot the non-consumed reads before taking any consumed
            // guard (each snapshot briefly takes its own lock); a name
            // that is also consumed gets its snapshot under the guard
            // below instead
            // `shape.wanted_for` and `plan.wanted_for` are the same
            // `column_requirements` analysis; the shape is the engine's
            // snapshot-side view of it
            for name in &shape.read {
                if shape.consumed.contains(name) {
                    continue;
                }
                if let Some(b) = baskets.get(name) {
                    snapshots
                        .insert(name.clone(), b.snapshot_cols(shape.wanted_for(name)));
                }
            }
        }
        consumed_baskets.sort_by_key(|b| b.id());
        consumed_baskets.dedup_by_key(|b| b.id());
        let mut guards: Vec<parking_lot::MutexGuard<'_, crate::basket::BasketInner>> =
            consumed_baskets.iter().map(|b| b.lock()).collect();
        for (b, g) in consumed_baskets.iter().zip(guards.iter_mut()) {
            snapshots.insert(
                b.name().to_string(),
                g.live_snapshot_cols(shape.wanted_for(b.name())),
            );
        }
        let ctx = EngineSnapshot {
            snapshots,
            engine: self,
            now: self.clock.now(),
        };
        let effects = plan.execute(&ctx)?;
        drop(ctx);

        // apply consumption while the guards pin the live numbering ...
        let index: HashMap<&str, usize> = consumed_baskets
            .iter()
            .enumerate()
            .map(|(i, b)| (b.name(), i))
            .collect();
        for (name, sel) in &effects.consumed {
            if let Some(&gi) = index.get(name.as_str()) {
                consumed_baskets[gi].delete_sel_locked(&mut guards[gi], sel)?;
            }
            // consumption of a non-basket name (persistent table) is
            // silently ignored, as before
        }
        drop(guards);

        // ... then apply everything else through each target's own lock
        self.apply_inserts_and_vars(effects)
    }

    fn apply_inserts_and_vars(&self, effects: Effects) -> Result<Option<Relation>> {
        for (table, columns, rows) in effects.inserts {
            let rows = match &columns {
                Some(cols) => {
                    if cols.len() != rows.width() {
                        return Err(EngineError::Config(
                            "insert column list arity mismatch".into(),
                        ));
                    }
                    let mut r = rows;
                    r.rename_columns(cols.clone())?;
                    r
                }
                None => rows,
            };
            if let Ok(b) = self.basket(&table) {
                b.append_relation(rows, self.clock.as_ref())?;
            } else {
                let t = self.catalog.get(&table)?;
                t.write().expect("catalog lock").append_relation(&rows)?;
            }
        }
        for (name, vtype) in effects.declares {
            let _ = self.vars.declare(&name, vtype);
        }
        for (name, value) in effects.var_updates {
            if !self.vars.is_declared(&name) {
                self.vars
                    .declare(&name, value.value_type().unwrap_or(ValueType::Int))?;
            }
            self.vars.set(&name, value)?;
        }
        Ok(effects.result)
    }
}

impl Default for DataCell {
    fn default() -> Self {
        DataCell::new()
    }
}

/// Snapshot context for one-shot execution: every basket that existed at
/// the start of the script (consumed ones under their held guards, the
/// rest as cheap copy-on-write snapshots), falling back to catalog
/// tables. Deliberately never locks a basket itself — the caller may be
/// holding consumed-basket guards, and taking another basket's lock here
/// would break the id-ordered locking discipline.
struct EngineSnapshot<'a> {
    snapshots: HashMap<String, Relation>,
    engine: &'a DataCell,
    now: i64,
}

impl QueryContext for EngineSnapshot<'_> {
    fn relation(&self, name: &str) -> dcsql::Result<Relation> {
        if let Some(r) = self.snapshots.get(name) {
            return Ok(r.clone());
        }
        self.engine
            .catalog
            .get(name)
            .map(|t| t.read().expect("catalog lock").clone())
            .map_err(|_| dcsql::SqlError::Unknown(name.to_string()))
    }

    fn get_var(&self, name: &str) -> Option<Value> {
        self.engine.vars.get(name)
    }

    fn now(&self) -> i64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn engine() -> DataCell {
        DataCell::with_clock(Arc::new(VirtualClock::starting_at(1_000_000)))
    }

    fn two_col() -> Schema {
        Schema::from_pairs(&[("id", ValueType::Int), ("payload", ValueType::Int)])
    }

    #[test]
    fn end_to_end_continuous_query() {
        let e = engine();
        e.create_stream("S", &two_col()).unwrap();
        let rx = e
            .register_query(
                "q",
                "select id, payload from [select * from S] as Z where Z.payload > 100",
                QueryOptions::subscribed(),
            )
            .unwrap()
            .unwrap();
        e.ingest(
            "S",
            &[
                vec![Value::Int(1), Value::Int(50)],
                vec![Value::Int(2), Value::Int(200)],
            ],
        )
        .unwrap();
        e.run_until_quiescent(10).unwrap();
        let batch = rx.try_recv().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.column("id").unwrap().ints().unwrap(), &[2]);
        assert!(e.basket("S").unwrap().is_empty(), "stream consumed");
    }

    #[test]
    fn chained_queries_via_insert() {
        let e = engine();
        e.create_stream("S", &two_col()).unwrap();
        e.create_basket(
            "MID",
            &Schema::from_pairs(&[("id", ValueType::Int), ("payload", ValueType::Int)]),
        )
        .unwrap();
        e.register_query(
            "q1",
            "insert into MID select id, payload from [select * from S] as Z where Z.payload > 10",
            QueryOptions::default(),
        )
        .unwrap();
        let rx = e
            .register_query(
                "q2",
                "select * from [select * from MID] as Z where Z.payload > 20",
                QueryOptions::subscribed(),
            )
            .unwrap()
            .unwrap();
        e.ingest(
            "S",
            &[
                vec![Value::Int(1), Value::Int(15)],
                vec![Value::Int(2), Value::Int(25)],
                vec![Value::Int(3), Value::Int(5)],
            ],
        )
        .unwrap();
        e.run_until_quiescent(10).unwrap();
        let batch = rx.try_recv().unwrap();
        assert_eq!(batch.column("id").unwrap().ints().unwrap(), &[2]);
        assert!(e.basket("S").unwrap().is_empty());
        assert!(e.basket("MID").unwrap().is_empty());
    }

    #[test]
    fn one_shot_execute_ddl_insert_select() {
        let e = engine();
        e.execute("create table T (a int, b varchar)").unwrap();
        e.execute("insert into T values (1, 'x'), (2, 'y')").unwrap();
        let r = e.execute("select a from T where b = 'y'").unwrap().unwrap();
        assert_eq!(r.column("a").unwrap().ints().unwrap(), &[2]);
    }

    #[test]
    fn one_shot_execute_over_basket_consumes() {
        let e = engine();
        e.execute("create stream S (id int, payload int)").unwrap();
        e.ingest("S", &[vec![Value::Int(1), Value::Int(9)]]).unwrap();
        let r = e
            .execute("select id from [select * from S] as Z")
            .unwrap()
            .unwrap();
        assert_eq!(r.len(), 1);
        assert!(e.basket("S").unwrap().is_empty());
    }

    #[test]
    fn duplicate_names_rejected() {
        let e = engine();
        e.create_stream("S", &two_col()).unwrap();
        assert!(e.create_basket("S", &two_col()).is_err());
        assert!(e.create_table("S", &two_col()).is_err());
        e.create_table("T", &two_col()).unwrap();
        assert!(e.create_stream("T", &two_col()).is_err());
    }

    #[test]
    fn min_input_defers_firing() {
        let e = engine();
        e.create_stream("S", &two_col()).unwrap();
        let rx = e
            .register_query(
                "q",
                "select * from [select * from S] as Z",
                QueryOptions {
                    min_input: Some(3),
                    subscribe: true,
                    ..QueryOptions::default()
                },
            )
            .unwrap()
            .unwrap();
        e.ingest("S", &[vec![Value::Int(1), Value::Int(1)]]).unwrap();
        e.run_until_quiescent(5).unwrap();
        assert!(rx.try_recv().is_err(), "below batch threshold");
        e.ingest(
            "S",
            &[
                vec![Value::Int(2), Value::Int(2)],
                vec![Value::Int(3), Value::Int(3)],
            ],
        )
        .unwrap();
        e.run_until_quiescent(5).unwrap();
        assert_eq!(rx.try_recv().unwrap().len(), 3);
    }

    #[test]
    fn split_block_routes_to_two_outputs() {
        let e = engine();
        e.create_stream("X", &Schema::from_pairs(&[("payload", ValueType::Int)]))
            .unwrap();
        let payload_only = Schema::from_pairs(&[("payload", ValueType::Int)]);
        e.create_basket("Y", &payload_only).unwrap();
        e.create_basket("Z", &payload_only).unwrap();
        e.register_query(
            "split",
            "with A as [select payload from X] begin \
             insert into Y select payload from A where A.payload > 100; \
             insert into Z select payload from A where A.payload <= 200; end",
            QueryOptions::default(),
        )
        .unwrap();
        e.ingest("X", &[vec![Value::Int(50)], vec![Value::Int(150)], vec![Value::Int(250)]])
            .unwrap();
        e.run_until_quiescent(10).unwrap();
        assert_eq!(e.basket("Y").unwrap().len(), 2, "150, 250");
        assert_eq!(e.basket("Z").unwrap().len(), 2, "50, 150");
        assert!(e.basket("X").unwrap().is_empty());
    }

    #[test]
    fn factory_stats_accumulate() {
        let e = engine();
        e.create_stream("S", &two_col()).unwrap();
        e.register_query(
            "q",
            "select * from [select * from S] as Z",
            QueryOptions::subscribed(),
        )
        .unwrap();
        e.ingest("S", &[vec![Value::Int(1), Value::Int(1)]]).unwrap();
        e.run_until_quiescent(10).unwrap();
        let stats = e.factory_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0, "q");
        assert_eq!(stats[0].1.firings, 1);
        assert_eq!(stats[0].1.consumed, 1);
    }

    #[test]
    fn telemetry_probes_attach_and_record() {
        let e = engine();
        e.set_telemetry(dctrace::Telemetry::enabled());
        e.create_stream("S", &two_col()).unwrap();
        e.register_query(
            "q",
            "select * from [select * from S] as Z",
            QueryOptions::subscribed(),
        )
        .unwrap();
        e.ingest("S", &[vec![Value::Int(1), Value::Int(1)]]).unwrap();
        e.run_until_quiescent(10).unwrap();
        let t = e.telemetry();
        let fire = t.hist_snapshot("dc_fire_micros", &[("query", "q")]).unwrap();
        assert!(fire.count >= 1, "a firing was recorded");
        let phase = t
            .hist_snapshot("dc_fire_phase_micros", &[("query", "q"), ("phase", "execute")])
            .unwrap();
        assert_eq!(phase.count, fire.count, "one phase sample per firing");
        let dwell = t
            .hist_snapshot("dc_basket_dwell_micros", &[("stream", "S")])
            .unwrap();
        assert_eq!(dwell.count, 1, "consumption recorded the basket dwell");
        let lat = t
            .hist_snapshot("dc_tuple_latency_micros", &[("query", "q")])
            .unwrap();
        assert_eq!(lat.count, 1, "ingest watermark produced an end-to-end sample");
        let dump = t.recorder().unwrap().dump(Some("q"));
        assert!(dump.iter().any(|l| l.contains("kind=fire_start")));
        assert!(dump.iter().any(|l| l.contains("kind=fire_end")));
    }

    #[test]
    fn disabled_telemetry_attaches_nothing() {
        let e = engine();
        e.create_stream("S", &two_col()).unwrap();
        assert!(e.basket("S").unwrap().probe().is_none());
        assert!(e.telemetry().render().is_empty());
    }
}
