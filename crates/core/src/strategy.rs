//! The three processing strategies of §4.2 (Figure 2).
//!
//! Each builder wires `k` single-range continuous queries over one stream
//! basket:
//!
//! * **Separate baskets** — a replicator factory copies every arriving
//!   column into one private basket per query; queries run fully
//!   independently (maximum independence, k-fold replication cost).
//! * **Shared baskets** — one basket feeds all queries. A *locker* factory
//!   disables the basket and raises per-query flags; the queries read
//!   without deleting (deferred consumption); an *unlocker* applies the
//!   union of their consumption sets and re-enables the basket.
//! * **Partial deletes** — queries form a chain: each consumes its matches
//!   from the incoming basket and forwards the remainder to the next
//!   query's basket, so later queries inspect ever fewer tuples at the
//!   price of continuous basket reorganization.
//!
//! All three accept the same query set so the fig. 5(b) bench compares
//! identical workloads.

use std::sync::Arc;

use monet::ops::select::select_range;
use monet::prelude::*;

use crate::basket::Basket;
use crate::clock::Clock;
use crate::error::Result;
use crate::factory::{ClosureFactory, Factory, FireReport};

/// One range query `lo < attr < hi` (0.1% selectivity in the paper's
/// micro-benchmark).
#[derive(Debug, Clone, Copy)]
pub struct RangeQuery {
    pub lo: i64,
    pub hi: i64,
}

impl RangeQuery {
    fn matches(&self, col: &Column) -> Result<SelVec> {
        Ok(select_range(
            col,
            &Value::Int(self.lo),
            &Value::Int(self.hi),
            false,
            false,
            None,
        )?)
    }
}

/// The stream schema used by the strategy benchmarks: a creation timestamp
/// and an integer attribute.
pub fn stream_schema() -> Schema {
    Schema::from_pairs(&[("ts", ValueType::Ts), ("a", ValueType::Int)])
}

/// Common result: factories to schedule plus the per-query output baskets.
pub struct StrategyNetwork {
    pub factories: Vec<Box<dyn Factory>>,
    pub outputs: Vec<Arc<Basket>>,
}

/// Build the **separate baskets** topology (Figure 2a).
pub fn separate_baskets(
    stream: &Arc<Basket>,
    queries: &[RangeQuery],
    min_batch: usize,
    clock: Arc<dyn Clock>,
) -> StrategyNetwork {
    let schema = stream_schema();
    let privates: Vec<Arc<Basket>> = (0..queries.len())
        .map(|i| Basket::new(format!("{}#priv{i}", stream.name()), &schema, false))
        .collect();
    let outputs: Vec<Arc<Basket>> = (0..queries.len())
        .map(|i| Basket::new(format!("{}#out{i}", stream.name()), &schema, false))
        .collect();

    let mut factories: Vec<Box<dyn Factory>> = Vec::with_capacity(queries.len() + 1);

    // Replicator: drain the stream, copy the (columnar) batch into every
    // private basket. On a column-store the copy is per-column, exactly as
    // §4.2 notes.
    {
        let src = Arc::clone(stream);
        let dsts = privates.clone();
        let clk = Arc::clone(&clock);
        factories.push(Box::new(
            ClosureFactory::new(
                format!("{}#replicate", stream.name()),
                vec![Arc::clone(stream)],
                privates.clone(),
                move || {
                    let batch = src.drain();
                    let n = batch.len();
                    if n == 0 {
                        return Ok(FireReport::default());
                    }
                    let mut produced = 0;
                    for d in &dsts {
                        produced += d.append_relation(batch.clone(), clk.as_ref())?;
                    }
                    Ok(FireReport {
                        consumed: n,
                        produced,
                        ..FireReport::default()
                    })
                },
            )
            .with_min_input(min_batch),
        ));
    }

    for (i, q) in queries.iter().copied().enumerate() {
        let input = Arc::clone(&privates[i]);
        let output = Arc::clone(&outputs[i]);
        let clk = Arc::clone(&clock);
        factories.push(Box::new(
            ClosureFactory::new(
                format!("{}#q{i}", stream.name()),
                vec![Arc::clone(&privates[i])],
                vec![Arc::clone(&outputs[i])],
                move || {
                    let batch = input.drain();
                    let n = batch.len();
                    if n == 0 {
                        return Ok(FireReport::default());
                    }
                    let sel = q.matches(batch.column("a")?)?;
                    let hits = batch.gather(&sel)?;
                    let produced = output.append_relation(hits, clk.as_ref())?;
                    Ok(FireReport {
                        consumed: n,
                        produced,
                        ..FireReport::default()
                    })
                },
            )
            .with_min_input(min_batch),
        ));
    }

    StrategyNetwork { factories, outputs }
}

/// Build the **shared baskets** topology (Figure 2b): locker → k queries →
/// unlocker, all over one shared basket.
pub fn shared_baskets(
    stream: &Arc<Basket>,
    queries: &[RangeQuery],
    min_batch: usize,
    clock: Arc<dyn Clock>,
) -> StrategyNetwork {
    let k = queries.len();
    let flag_schema = Schema::from_pairs(&[("go", ValueType::Bool)]);
    let flags: Vec<Arc<Basket>> = (0..k)
        .map(|i| Basket::new(format!("{}#flag{i}", stream.name()), &flag_schema, false))
        .collect();
    let dones: Vec<Arc<Basket>> = (0..k)
        .map(|i| Basket::new(format!("{}#done{i}", stream.name()), &flag_schema, false))
        .collect();
    let outputs: Vec<Arc<Basket>> = (0..k)
        .map(|i| Basket::new(format!("{}#out{i}", stream.name()), &stream_schema(), false))
        .collect();
    let pending = crate::factory::PendingDeletes::new();

    let mut factories: Vec<Box<dyn Factory>> = Vec::with_capacity(k + 2);

    // Locker L: once the shared basket has a batch and no round is in
    // flight (all flag/done baskets empty), disable the basket and raise
    // one flag per query.
    {
        let b = Arc::clone(stream);
        let flags2 = flags.clone();
        let dones2 = dones.clone();
        let clk = Arc::clone(&clock);
        let b_ready = Arc::clone(stream);
        let flags_r = flags.clone();
        let dones_r = dones.clone();
        factories.push(Box::new(
            ClosureFactory::new(
                format!("{}#locker", stream.name()),
                vec![Arc::clone(stream)],
                flags.clone(),
                move || {
                    b.disable();
                    let row = vec![Value::Bool(true)];
                    for f in &flags2 {
                        f.append_rows(std::slice::from_ref(&row), clk.as_ref())?;
                    }
                    Ok(FireReport {
                        consumed: 0,
                        produced: flags2.len(),
                        ..FireReport::default()
                    })
                },
            )
            .with_ready(move || {
                b_ready.len() >= min_batch
                    && b_ready.is_enabled()
                    && flags_r.iter().all(|f| f.is_empty())
                    && dones_r.iter().all(|d| d.is_empty())
            }),
        ));
        let _ = dones2; // silences move; dones participate via unlocker
    }

    // k query factories: triggered by their flag; read the shared basket
    // without deleting; record consumption; raise done.
    for (i, q) in queries.iter().copied().enumerate() {
        let flag = Arc::clone(&flags[i]);
        let done = Arc::clone(&dones[i]);
        let shared = Arc::clone(stream);
        let output = Arc::clone(&outputs[i]);
        let clk = Arc::clone(&clock);
        factories.push(Box::new(ClosureFactory::new(
            format!("{}#q{i}", stream.name()),
            vec![Arc::clone(&flags[i])],
            vec![Arc::clone(&outputs[i]), Arc::clone(&dones[i])],
            move || {
                let _ = flag.drain();
                // Snapshot under the basket lock — with copy-on-write
                // columns this is O(width), a refcount bump per column;
                // the selection then runs with the lock released. The
                // unlocker deletes later.
                let snap = shared.lock().live_snapshot();
                let sel = q.matches(snap.column("a")?)?;
                let hits = snap.gather(&sel)?;
                let produced = output.append_relation(hits, clk.as_ref())?;
                // every query's basket expression covers the whole locked
                // batch, so the union the unlocker must delete is simply
                // "everything present at lock time" — the basket is
                // disabled, so its contents *are* the batch and no
                // per-query selection bookkeeping is needed
                done.append_rows(&[vec![Value::Bool(true)]], clk.as_ref())?;
                Ok(FireReport {
                    consumed: 0,
                    produced,
                    ..FireReport::default()
                })
            },
        )));
    }

    // Unlocker U: all done → drop the covered batch, re-enable, clear
    // done flags. Any deferred per-query deletions (from factories using
    // ConsumeMode::Defer) are applied first.
    {
        let b = Arc::clone(stream);
        let dones2 = dones.clone();
        let pend = Arc::clone(&pending);
        factories.push(Box::new(ClosureFactory::new(
            format!("{}#unlocker", stream.name()),
            dones.clone(),
            vec![Arc::clone(stream)],
            move || {
                for d in &dones2 {
                    let _ = d.drain();
                }
                for (name, sel) in pend.take() {
                    if name == b.name() {
                        b.delete_sel(&sel)?;
                    }
                }
                // the basket was disabled for the whole round, so what
                // remains is exactly the batch all queries covered
                let consumed = b.drain().len();
                b.enable();
                Ok(FireReport {
                    consumed,
                    produced: 0,
                    ..FireReport::default()
                })
            },
        )));
    }

    StrategyNetwork { factories, outputs }
}

/// Build the **partial deletes** chain (Figure 2c): all queries share the
/// stream basket; each removes the tuples that qualified its basket
/// predicate *in place* and only then signals the next query (so later
/// queries inspect fewer tuples). The final stage clears the residue —
/// every tuple has been seen by all queries at that point. Queries must be
/// interested in disjoint ranges for this to be lossless, which is how the
/// benchmark constructs them.
pub fn partial_deletes(
    stream: &Arc<Basket>,
    queries: &[RangeQuery],
    min_batch: usize,
    clock: Arc<dyn Clock>,
) -> StrategyNetwork {
    let k = queries.len();
    let flag_schema = Schema::from_pairs(&[("go", ValueType::Bool)]);
    // signal baskets: stage i fires when signal[i] holds a token; stage 0
    // is triggered directly by the stream threshold
    let signals: Vec<Arc<Basket>> = (1..k)
        .map(|i| Basket::new(format!("{}#sig{i}", stream.name()), &flag_schema, false))
        .collect();
    let outputs: Vec<Arc<Basket>> = (0..k)
        .map(|i| Basket::new(format!("{}#out{i}", stream.name()), &stream_schema(), false))
        .collect();
    // true while a batch is travelling down the chain: keeps stage 0 from
    // re-firing on the shrinking residue
    let in_flight = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let mut factories: Vec<Box<dyn Factory>> = Vec::with_capacity(k);
    for (i, q) in queries.iter().copied().enumerate() {
        let shared = Arc::clone(stream);
        let output = Arc::clone(&outputs[i]);
        let my_signal = if i == 0 { None } else { Some(Arc::clone(&signals[i - 1])) };
        let next_signal = signals.get(i).cloned();
        let clk = Arc::clone(&clock);
        let is_last = i == k - 1;
        let flight = Arc::clone(&in_flight);

        let inputs = match &my_signal {
            Some(s) => vec![Arc::clone(s)],
            None => vec![Arc::clone(stream)],
        };
        let mut outs = vec![Arc::clone(&outputs[i])];
        if let Some(n) = &next_signal {
            outs.push(Arc::clone(n));
        }
        let threshold = if i == 0 { min_batch } else { 1 };
        let ready_gate = (i == 0).then(|| {
            let stream_r = Arc::clone(stream);
            let flight_r = Arc::clone(&in_flight);
            let min = min_batch;
            move || {
                !flight_r.load(std::sync::atomic::Ordering::Acquire)
                    && stream_r.len() >= min
            }
        });
        factories.push(Box::new({
            let factory = ClosureFactory::new(
                format!("{}#q{i}", stream.name()),
                inputs,
                outs,
                move || {
                    if let Some(sig) = &my_signal {
                        let _ = sig.drain();
                    } else {
                        flight.store(true, std::sync::atomic::Ordering::Release);
                    }
                    // select + per-query delete: the continuous basket
                    // modification the paper measures. The delete is a
                    // logical mark against the live view; the basket
                    // compacts physically once enough rows are dead.
                    let (hits, sel_len) = {
                        let mut guard = shared.lock();
                        let view = guard.live_snapshot();
                        let sel = q.matches(view.column("a")?)?;
                        let hits = view.gather(&sel)?;
                        shared.delete_sel_locked(&mut guard, &sel)?;
                        (hits, sel.len())
                    };
                    let produced = output.append_relation(hits, clk.as_ref())?;
                    let mut consumed = sel_len;
                    if is_last {
                        // residue seen by everyone: drop it, end the round
                        consumed += shared.drain().len();
                        flight.store(false, std::sync::atomic::Ordering::Release);
                    } else if let Some(next) = &next_signal {
                        next.append_rows(&[vec![Value::Bool(true)]], clk.as_ref())?;
                    }
                    Ok(FireReport {
                        consumed,
                        produced,
                        ..FireReport::default()
                    })
                },
            )
            .with_min_input(threshold);
            match ready_gate {
                Some(gate) => factory.with_ready(gate),
                None => factory,
            }
        }));
    }

    StrategyNetwork { factories, outputs }
}

/// Build the **shared selection** topology — the §4.3 research direction
/// ("queries requiring similar ranges in selection operators can be
/// supported by shared factories that give output to more than one
/// query's factories"). One fused factory classifies every tuple against
/// all `k` disjoint ranges in a single O(n·log k) pass and routes matches
/// to the per-query outputs: sharing *execution* cost, not just storage.
pub fn shared_selection(
    stream: &Arc<Basket>,
    queries: &[RangeQuery],
    min_batch: usize,
    clock: Arc<dyn Clock>,
) -> StrategyNetwork {
    let outputs: Vec<Arc<Basket>> = (0..queries.len())
        .map(|i| Basket::new(format!("{}#out{i}", stream.name()), &stream_schema(), false))
        .collect();

    // sort ranges by lower bound for binary-search classification; keep
    // the original query index for routing
    let mut sorted: Vec<(RangeQuery, usize)> =
        queries.iter().copied().zip(0..).collect();
    sorted.sort_by_key(|(q, _)| q.lo);
    debug_assert!(
        sorted.windows(2).all(|w| w[0].0.hi <= w[1].0.lo + 1),
        "shared selection requires disjoint ranges"
    );

    let src = Arc::clone(stream);
    let outs = outputs.clone();
    let clk = Arc::clone(&clock);
    let factory = ClosureFactory::new(
        format!("{}#fused", stream.name()),
        vec![Arc::clone(stream)],
        outputs.clone(),
        move || {
            let batch = src.drain();
            let n = batch.len();
            if n == 0 {
                return Ok(FireReport::default());
            }
            let values = batch.column("a")?.ints()?;
            let mut per_query: Vec<Vec<u32>> = vec![Vec::new(); outs.len()];
            for (pos, &v) in values.iter().enumerate() {
                // last range whose exclusive lower bound admits v
                let idx = sorted.partition_point(|(q, _)| q.lo < v);
                if idx > 0 {
                    let (q, orig) = sorted[idx - 1];
                    if v > q.lo && v < q.hi {
                        per_query[orig].push(pos as u32);
                    }
                }
            }
            let mut produced = 0;
            for (qi, positions) in per_query.into_iter().enumerate() {
                if positions.is_empty() {
                    continue;
                }
                let sel =
                    SelVec::from_sorted(positions).expect("positions emitted in scan order");
                let hits = batch.gather(&sel)?;
                produced += outs[qi].append_relation(hits, clk.as_ref())?;
            }
            Ok(FireReport {
                consumed: n,
                produced,
                ..FireReport::default()
            })
        },
    )
    .with_min_input(min_batch);

    StrategyNetwork {
        factories: vec![Box::new(factory)],
        outputs,
    }
}

/// Disjoint 0.1%-selectivity ranges over the attribute domain `[0, domain)`
/// — the micro-benchmark's query population. When `k` ranges at the asked
/// selectivity cannot fit disjointly, the width shrinks to `domain / k`
/// (the partial-deletes strategy requires disjointness to be lossless).
pub fn disjoint_ranges(k: usize, domain: i64, selectivity: f64) -> Vec<RangeQuery> {
    let asked = ((domain as f64 * selectivity).ceil() as i64).max(1);
    let fitting = (domain / k.max(1) as i64).max(1);
    let width = asked.min(fitting);
    (0..k)
        .map(|i| {
            let lo = i as i64 * width;
            RangeQuery {
                lo,
                hi: lo + width + 1, // exclusive bounds: (lo, lo+width+1) selects `width` values
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::scheduler::Scheduler;

    fn mk_stream(name: &str) -> Arc<Basket> {
        Basket::new(name, &stream_schema(), false)
    }

    fn feed(stream: &Arc<Basket>, clock: &VirtualClock, values: &[i64]) {
        let rows: Vec<Vec<Value>> = values
            .iter()
            .map(|&v| vec![Value::Ts(clock.now()), Value::Int(v)])
            .collect();
        stream.append_rows(&rows, clock).unwrap();
    }

    fn run(net: StrategyNetwork) -> Vec<Arc<Basket>> {
        let mut sched = Scheduler::new();
        for f in net.factories {
            sched.add(f);
        }
        sched.run_until_quiescent(1000).unwrap();
        net.outputs
    }

    fn totals(outputs: &[Arc<Basket>]) -> Vec<usize> {
        outputs.iter().map(|b| b.len()).collect()
    }

    #[test]
    fn disjoint_ranges_cover_expected_widths() {
        let qs = disjoint_ranges(3, 10_000, 0.001);
        assert_eq!(qs.len(), 3);
        for w in &qs {
            assert_eq!(w.hi - w.lo, 11);
        }
        // disjoint
        assert!(qs[0].hi - 1 <= qs[1].lo + 1);
    }

    #[test]
    fn shared_selection_matches_per_query_scans() {
        let queries = disjoint_ranges(8, 1_000, 0.02);
        let data: Vec<i64> = (0..1_000).collect();
        let clock = Arc::new(VirtualClock::new());
        let s1 = mk_stream("fused");
        feed(&s1, &clock, &data);
        let fused = run(shared_selection(&s1, &queries, 1, clock.clone()));
        let s2 = mk_stream("ref");
        feed(&s2, &clock, &data);
        let reference = run(separate_baskets(&s2, &queries, 1, clock.clone()));
        assert_eq!(totals(&fused), totals(&reference));
        assert!(s1.is_empty());
    }

    #[test]
    fn all_three_strategies_agree() {
        let queries = vec![
            RangeQuery { lo: 9, hi: 20 },   // matches 10..=19
            RangeQuery { lo: 29, hi: 40 },  // matches 30..=39
            RangeQuery { lo: 49, hi: 60 },  // matches 50..=59
        ];
        let data: Vec<i64> = (0..100).collect();

        let clock = Arc::new(VirtualClock::new());

        let s1 = mk_stream("sep");
        feed(&s1, &clock, &data);
        let sep = run(separate_baskets(&s1, &queries, 1, clock.clone()));

        let s2 = mk_stream("sha");
        feed(&s2, &clock, &data);
        let sha = run(shared_baskets(&s2, &queries, 1, clock.clone()));

        let s3 = mk_stream("par");
        feed(&s3, &clock, &data);
        let par = run(partial_deletes(&s3, &queries, 1, clock.clone()));

        let expect = vec![10usize, 10, 10];
        assert_eq!(totals(&sep), expect, "separate");
        assert_eq!(totals(&sha), expect, "shared");
        assert_eq!(totals(&par), expect, "partial");

        // all strategies leave the pipeline drained
        assert!(s1.is_empty());
        assert!(s2.is_empty());
        assert!(s3.is_empty());
    }

    #[test]
    fn shared_baskets_reenables_stream() {
        let clock = Arc::new(VirtualClock::new());
        let s = mk_stream("reuse");
        let queries = vec![RangeQuery { lo: -1, hi: 1000 }];
        let net = shared_baskets(&s, &queries, 1, clock.clone());
        let mut sched = Scheduler::new();
        let outputs = net.outputs.clone();
        for f in net.factories {
            sched.add(f);
        }
        feed(&s, &clock, &[1, 2, 3]);
        sched.run_until_quiescent(100).unwrap();
        assert!(s.is_enabled(), "unlocker re-enabled the basket");
        assert_eq!(outputs[0].len(), 3);
        // second round must work too
        feed(&s, &clock, &[4, 5]);
        sched.run_until_quiescent(100).unwrap();
        assert_eq!(outputs[0].len(), 5);
    }

    #[test]
    fn partial_deletes_chain_shrinks_work() {
        let clock = Arc::new(VirtualClock::new());
        let s = mk_stream("chain");
        let queries = vec![
            RangeQuery { lo: -1, hi: 50 },  // consumes 0..=49
            RangeQuery { lo: 49, hi: 100 }, // sees only 50..=99
        ];
        feed(&s, &clock, &(0..100).collect::<Vec<_>>());
        let net = partial_deletes(&s, &queries, 1, clock.clone());
        let outputs = net.outputs.clone();
        let mut sched = Scheduler::new();
        for f in net.factories {
            sched.add(f);
        }
        sched.run_until_quiescent(100).unwrap();
        assert_eq!(outputs[0].len(), 50);
        assert_eq!(outputs[1].len(), 50);
    }

    #[test]
    fn batch_threshold_gates_first_stage() {
        let clock = Arc::new(VirtualClock::new());
        let s = mk_stream("thresh");
        let queries = vec![RangeQuery { lo: -1, hi: 100 }];
        let net = separate_baskets(&s, &queries, 5, clock.clone());
        let outputs = net.outputs.clone();
        let mut sched = Scheduler::new();
        for f in net.factories {
            sched.add(f);
        }
        feed(&s, &clock, &[1, 2, 3]);
        sched.run_until_quiescent(100).unwrap();
        assert_eq!(outputs[0].len(), 0, "below threshold");
        feed(&s, &clock, &[4, 5]);
        sched.run_until_quiescent(100).unwrap();
        assert_eq!(outputs[0].len(), 5);
    }
}
