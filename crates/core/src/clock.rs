//! Engine clocks.
//!
//! All timestamps in the system are microseconds on a [`Clock`]. The wall
//! clock drives live deployments; the virtual clock drives deterministic
//! replay (Linear Road runs three hours of traffic in seconds by advancing
//! virtual time with the data).

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// A microsecond clock.
pub trait Clock: Send + Sync {
    /// Current time in microseconds.
    fn now(&self) -> i64;
}

/// Wall-clock time (microseconds since the Unix epoch).
#[derive(Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> i64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as i64)
            .unwrap_or(0)
    }
}

/// Manually advanced clock for replay and tests.
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicI64,
}

impl VirtualClock {
    pub fn new() -> Self {
        VirtualClock::default()
    }

    pub fn starting_at(micros: i64) -> Self {
        VirtualClock {
            micros: AtomicI64::new(micros),
        }
    }

    /// Move time forward (panics on negative deltas — virtual time is
    /// monotonic).
    pub fn advance(&self, delta_micros: i64) {
        assert!(delta_micros >= 0, "virtual time cannot go backwards");
        self.micros.fetch_add(delta_micros, Ordering::SeqCst);
    }

    /// Jump to an absolute time (must not go backwards).
    pub fn set(&self, micros: i64) {
        let prev = self.micros.swap(micros, Ordering::SeqCst);
        assert!(micros >= prev, "virtual time cannot go backwards");
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> i64 {
        self.micros.load(Ordering::SeqCst)
    }
}

/// Convenience: one second in clock units.
pub const MICROS_PER_SEC: i64 = 1_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_enough() {
        let c = SystemClock;
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(a > 1_000_000_000_000_000, "epoch micros magnitude");
    }

    #[test]
    fn virtual_clock_advance_and_set() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(5);
        assert_eq!(c.now(), 5);
        c.set(100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn virtual_clock_rejects_regression() {
        let c = VirtualClock::starting_at(10);
        c.set(5);
    }

    #[test]
    fn shared_across_threads() {
        let c = std::sync::Arc::new(VirtualClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 4000);
    }
}
