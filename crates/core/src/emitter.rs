//! Emitters — adapter threads delivering results to clients (paper §3.1).
//!
//! An emitter picks up result batches prepared by the kernel (factory
//! result channels or output baskets) and ships them to subscribed
//! clients, over TCP or to an in-process callback.

use std::io::BufWriter;
use std::net::TcpStream;
use std::thread::JoinHandle;

use crossbeam::channel::Receiver;
use monet::prelude::*;

use crate::error::Result;
use crate::net::write_batch;

/// Handle to a running emitter thread.
pub struct Emitter {
    name: String,
    handle: JoinHandle<EmitterReport>,
}

/// Lifetime statistics returned when the emitter ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmitterReport {
    /// Tuples delivered.
    pub delivered: u64,
    /// Batches delivered.
    pub batches: u64,
}

impl Emitter {
    /// Deliver result batches to a TCP peer as wire text.
    pub fn spawn_tcp(
        name: impl Into<String>,
        rx: Receiver<Relation>,
        stream: TcpStream,
    ) -> Emitter {
        let name = name.into();
        let handle = std::thread::spawn(move || {
            let mut report = EmitterReport::default();
            let mut writer = BufWriter::new(stream);
            while let Ok(batch) = rx.recv() {
                match write_batch(&mut writer, &batch) {
                    Ok(n) => {
                        report.delivered += n as u64;
                        report.batches += 1;
                    }
                    Err(_) => break,
                }
            }
            report
        });
        Emitter { name, handle }
    }

    /// Deliver result batches to an in-process callback.
    pub fn spawn_fn(
        name: impl Into<String>,
        rx: Receiver<Relation>,
        mut f: impl FnMut(Relation) + Send + 'static,
    ) -> Emitter {
        let name = name.into();
        let handle = std::thread::spawn(move || {
            let mut report = EmitterReport::default();
            while let Ok(batch) = rx.recv() {
                report.delivered += batch.len() as u64;
                report.batches += 1;
                f(batch);
            }
            report
        });
        Emitter { name, handle }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the emitter thread has ended (stream closed or peer gone).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Wait for the result stream to close and collect statistics.
    pub fn join(self) -> Result<EmitterReport> {
        self.handle
            .join()
            .map_err(|_| crate::error::EngineError::Io("emitter thread panicked".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn batch(vals: &[i64]) -> Relation {
        Relation::from_columns(vec![("x".into(), Column::from_ints(vals.to_vec()))]).unwrap()
    }

    #[test]
    fn fn_emitter_counts_batches() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let emitter = Emitter::spawn_fn("e", rx, move |b| {
            seen2.fetch_add(b.len() as u64, Ordering::SeqCst);
        });
        tx.send(batch(&[1, 2])).unwrap();
        tx.send(batch(&[3])).unwrap();
        drop(tx);
        let report = emitter.join().unwrap();
        assert_eq!(report.delivered, 3);
        assert_eq!(report.batches, 2);
        assert_eq!(seen.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn tcp_emitter_writes_wire_lines() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let reader = BufReader::new(sock);
            reader.lines().map(|l| l.unwrap()).collect::<Vec<_>>()
        });
        let (tx, rx) = crossbeam::channel::unbounded();
        let emitter = Emitter::spawn_tcp("e", rx, TcpStream::connect(addr).unwrap());
        tx.send(batch(&[7, 8])).unwrap();
        drop(tx);
        let report = emitter.join().unwrap();
        assert_eq!(report.delivered, 2);
        let lines = client.join().unwrap();
        assert_eq!(lines, vec!["7".to_string(), "8".to_string()]);
    }
}
