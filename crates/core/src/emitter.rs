//! Emitters — adapter threads delivering results to clients (paper §3.1).
//!
//! An emitter picks up result batches prepared by the kernel (factory
//! result channels or output baskets) and ships them to subscribed
//! clients, over TCP or to an in-process callback. TCP emitters speak a
//! negotiated [`WireFormat`]; whole batches are encoded into one frame
//! buffer and written with a single call.

use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::Receiver;
use monet::prelude::*;

use crate::error::Result;
use crate::frame::{SharedFrame, WireFormat};

/// Coalescing bound: stop merging queued result batches into one frame
/// once the merged batch holds this many tuples, so a wedged-then-
/// recovered subscriber is not handed one enormous frame. Wide rows can
/// still push a merge past [`crate::frame::MAX_FRAME_LEN`]; that case
/// falls back to delivering the queued frames individually.
const COALESCE_MAX_ROWS: usize = 64 * 1024;

/// Handle to a running emitter thread.
pub struct Emitter {
    name: String,
    handle: JoinHandle<EmitterReport>,
}

/// Lifetime statistics returned when the emitter ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmitterReport {
    /// Tuples delivered.
    pub delivered: u64,
    /// Batches delivered.
    pub batches: u64,
}

impl Emitter {
    /// Deliver result batches to a TCP peer in the given wire format.
    /// Each batch is encoded once into a reused frame buffer.
    pub fn spawn_tcp(
        name: impl Into<String>,
        rx: Receiver<Relation>,
        stream: TcpStream,
        format: WireFormat,
    ) -> Emitter {
        let name = name.into();
        let handle = std::thread::spawn(move || {
            let mut report = EmitterReport::default();
            let mut writer = BufWriter::new(stream);
            let mut codec = format.new_codec();
            let mut buf: Vec<u8> = Vec::new();
            while let Ok(batch) = rx.recv() {
                buf.clear();
                if codec.encode(&batch, &mut buf).is_err() {
                    break;
                }
                if writer.write_all(&buf).and_then(|()| writer.flush()).is_err() {
                    break;
                }
                report.delivered += batch.len() as u64;
                report.batches += 1;
            }
            report
        });
        Emitter { name, handle }
    }

    /// Deliver pre-shared result frames to a TCP peer. The encoding is
    /// produced once per [`SharedFrame`] per format, no matter how many
    /// subscriber emitters deliver it — the server fan-out path.
    pub fn spawn_tcp_shared(
        name: impl Into<String>,
        rx: Receiver<Arc<SharedFrame>>,
        stream: TcpStream,
        format: WireFormat,
    ) -> Emitter {
        Emitter::spawn_tcp_shared_counted(name, rx, stream, format, Arc::new(AtomicU64::new(0)))
    }

    /// [`Emitter::spawn_tcp_shared`] with adaptive frame coalescing and an
    /// externally owned coalesce counter (surfaced per emitter port in the
    /// server's `STATS`).
    ///
    /// When the subscriber socket is the bottleneck, result batches queue
    /// up behind the blocked write; once the write completes, every queued
    /// batch is merged into **one** frame (bounded by `COALESCE_MAX_ROWS`)
    /// instead of paying a syscall + flush per small batch. A subscriber
    /// that keeps up never sees a merged frame — the queue is empty, and
    /// the pre-encoded shared frame is written as-is.
    ///
    /// A merged frame is built and encoded per subscriber — unlike the
    /// single-batch fast path, which writes the shared encode-once
    /// bytes. That is inherent: which batches queued up is a property of
    /// one subscriber's socket, so no shared encoding can exist. The
    /// cost only arises on subscribers already too slow to keep up, and
    /// replaces a syscall+flush per small batch.
    ///
    /// `coalesced` counts the batches that were absorbed into a merged
    /// frame (i.e. delivered without their own write).
    pub fn spawn_tcp_shared_counted(
        name: impl Into<String>,
        rx: Receiver<Arc<SharedFrame>>,
        stream: TcpStream,
        format: WireFormat,
        coalesced: Arc<AtomicU64>,
    ) -> Emitter {
        Emitter::spawn_tcp_shared_probed(name, rx, stream, format, coalesced, None)
    }

    /// [`Emitter::spawn_tcp_shared_counted`] plus an optional telemetry
    /// probe recording per-delivery encode→socket-write latency and
    /// coalescing events (`None` = telemetry off, zero extra work).
    pub fn spawn_tcp_shared_probed(
        name: impl Into<String>,
        rx: Receiver<Arc<SharedFrame>>,
        stream: TcpStream,
        format: WireFormat,
        coalesced: Arc<AtomicU64>,
        probe: Option<Arc<dctrace::EmitterProbe>>,
    ) -> Emitter {
        let name = name.into();
        let handle = std::thread::spawn(move || {
            let mut report = EmitterReport::default();
            let mut writer = BufWriter::new(stream);
            let mut codec = format.new_codec();
            let mut buf: Vec<u8> = Vec::new();
            // reused across iterations: empty-queue (keep-up) deliveries
            // must not pay an allocation per frame
            let mut queued: Vec<Arc<SharedFrame>> = Vec::new();
            'deliver: while let Ok(frame) = rx.recv() {
                // the socket was slow enough for more results to queue —
                // absorb them into one frame before the next write
                queued.clear();
                let mut rows = frame.len();
                queued.push(frame);
                while rows < COALESCE_MAX_ROWS {
                    let Ok(next) = rx.try_recv() else {
                        break;
                    };
                    rows += next.len();
                    queued.push(next);
                }
                let write_started = probe.as_ref().map(|_| std::time::Instant::now());
                // try the merged encoding; `None` = deliver individually
                // (single frame, schema drift, or a merge too big to
                // frame — each queued frame alone is known-deliverable)
                let merged: Option<&[u8]> = if queued.len() > 1 {
                    let mut rel = queued[0].relation().clone();
                    let mergeable = queued[1..]
                        .iter()
                        .all(|f| rel.append_relation(f.relation()).is_ok());
                    buf.clear();
                    if mergeable && codec.encode(&rel, &mut buf).is_ok() {
                        Some(&buf)
                    } else {
                        None
                    }
                } else {
                    None
                };
                match merged {
                    Some(bytes) => {
                        if writer.write_all(bytes).is_err() {
                            break;
                        }
                        coalesced.fetch_add(queued.len() as u64 - 1, Ordering::AcqRel);
                        if let Some(p) = &probe {
                            p.note_coalesce(queued.len() as u64 - 1);
                        }
                    }
                    None => {
                        for f in &queued {
                            // unframeable single batch: drop the
                            // subscriber rather than ship a corrupt stream
                            let Ok(bytes) = f.bytes(format) else {
                                break 'deliver;
                            };
                            if writer.write_all(&bytes).is_err() {
                                break 'deliver;
                            }
                        }
                    }
                }
                if writer.flush().is_err() {
                    break;
                }
                if let (Some(p), Some(started)) = (&probe, write_started) {
                    p.note_write(started.elapsed().as_micros() as u64);
                }
                report.delivered += rows as u64;
                report.batches += queued.len() as u64;
            }
            report
        });
        Emitter { name, handle }
    }

    /// Deliver result batches to an in-process callback.
    pub fn spawn_fn(
        name: impl Into<String>,
        rx: Receiver<Relation>,
        mut f: impl FnMut(Relation) + Send + 'static,
    ) -> Emitter {
        let name = name.into();
        let handle = std::thread::spawn(move || {
            let mut report = EmitterReport::default();
            while let Ok(batch) = rx.recv() {
                report.delivered += batch.len() as u64;
                report.batches += 1;
                f(batch);
            }
            report
        });
        Emitter { name, handle }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the emitter thread has ended (stream closed or peer gone).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Wait for the result stream to close and collect statistics.
    pub fn join(self) -> Result<EmitterReport> {
        self.handle
            .join()
            .map_err(|_| crate::error::EngineError::Io("emitter thread panicked".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::read_frame;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn batch(vals: &[i64]) -> Relation {
        Relation::from_columns(vec![("x".into(), Column::from_ints(vals.to_vec()))]).unwrap()
    }

    #[test]
    fn fn_emitter_counts_batches() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let emitter = Emitter::spawn_fn("e", rx, move |b| {
            seen2.fetch_add(b.len() as u64, Ordering::SeqCst);
        });
        tx.send(batch(&[1, 2])).unwrap();
        tx.send(batch(&[3])).unwrap();
        drop(tx);
        let report = emitter.join().unwrap();
        assert_eq!(report.delivered, 3);
        assert_eq!(report.batches, 2);
        assert_eq!(seen.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn tcp_emitter_writes_wire_lines() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let reader = BufReader::new(sock);
            reader.lines().map(|l| l.unwrap()).collect::<Vec<_>>()
        });
        let (tx, rx) = crossbeam::channel::unbounded();
        let emitter = Emitter::spawn_tcp(
            "e",
            rx,
            TcpStream::connect(addr).unwrap(),
            WireFormat::Text,
        );
        tx.send(batch(&[7, 8])).unwrap();
        drop(tx);
        let report = emitter.join().unwrap();
        assert_eq!(report.delivered, 2);
        let lines = client.join().unwrap();
        assert_eq!(lines, vec!["7".to_string(), "8".to_string()]);
    }

    #[test]
    fn tcp_emitter_writes_binary_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let schema = Schema::from_pairs(&[("x", ValueType::Int)]);
        let schema2 = schema.clone();
        let client = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(sock);
            let mut batches = Vec::new();
            while let Some(rel) = read_frame(&mut reader, &schema2).unwrap() {
                batches.push(rel);
            }
            batches
        });
        let (tx, rx) = crossbeam::channel::unbounded();
        let emitter = Emitter::spawn_tcp(
            "e",
            rx,
            TcpStream::connect(addr).unwrap(),
            WireFormat::Binary,
        );
        tx.send(batch(&[7, 8])).unwrap();
        tx.send(batch(&[9])).unwrap();
        drop(tx);
        let report = emitter.join().unwrap();
        assert_eq!(report.delivered, 3);
        assert_eq!(report.batches, 2);
        let batches = client.join().unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].column("x").unwrap().ints().unwrap(), &[7, 8]);
        assert_eq!(batches[1].column("x").unwrap().ints().unwrap(), &[9]);
    }

    #[test]
    fn queued_frames_coalesce_into_one_write() {
        // frames already queued when the emitter gets to them (socket was
        // the bottleneck) are merged: every tuple arrives, in order, in
        // fewer wire frames, and the absorbed batches are counted
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let schema = Schema::from_pairs(&[("x", ValueType::Int)]);
        let schema2 = schema.clone();
        let client = std::thread::spawn(move || {
            let (sock, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(sock);
            let mut frames = Vec::new();
            while let Some(rel) = read_frame(&mut reader, &schema2).unwrap() {
                frames.push(rel);
            }
            frames
        });
        let (tx, rx) = crossbeam::channel::unbounded();
        for i in 0..10i64 {
            tx.send(SharedFrame::new(batch(&[i * 2, i * 2 + 1]))).unwrap();
        }
        drop(tx);
        let coalesced = Arc::new(AtomicU64::new(0));
        let emitter = Emitter::spawn_tcp_shared_counted(
            "e",
            rx,
            TcpStream::connect(addr).unwrap(),
            WireFormat::Binary,
            Arc::clone(&coalesced),
        );
        let report = emitter.join().unwrap();
        assert_eq!(report.delivered, 20);
        assert_eq!(report.batches, 10);
        let frames = client.join().unwrap();
        assert!(frames.len() < 10, "queued batches must merge");
        let values: Vec<i64> = frames
            .iter()
            .flat_map(|f| f.column("x").unwrap().ints().unwrap().to_vec())
            .collect();
        assert_eq!(values, (0..20).collect::<Vec<i64>>(), "order preserved");
        assert_eq!(
            coalesced.load(Ordering::Acquire),
            10 - frames.len() as u64,
            "absorbed batches counted"
        );
    }

    #[test]
    fn shared_emitters_reuse_one_encoding() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let collector = std::thread::spawn(move || {
            let mut out = Vec::new();
            for _ in 0..2 {
                let (sock, _) = listener.accept().unwrap();
                out.push(std::thread::spawn(move || {
                    let reader = BufReader::new(sock);
                    reader.lines().map(|l| l.unwrap()).collect::<Vec<_>>()
                }));
            }
            out.into_iter().map(|t| t.join().unwrap()).collect::<Vec<_>>()
        });
        let (tx1, rx1) = crossbeam::channel::unbounded();
        let (tx2, rx2) = crossbeam::channel::unbounded();
        let e1 = Emitter::spawn_tcp_shared(
            "e1",
            rx1,
            TcpStream::connect(addr).unwrap(),
            WireFormat::Text,
        );
        let e2 = Emitter::spawn_tcp_shared(
            "e2",
            rx2,
            TcpStream::connect(addr).unwrap(),
            WireFormat::Text,
        );
        let frame = SharedFrame::new(batch(&[1, 2, 3]));
        tx1.send(Arc::clone(&frame)).unwrap();
        tx2.send(Arc::clone(&frame)).unwrap();
        drop(tx1);
        drop(tx2);
        assert_eq!(e1.join().unwrap().delivered, 3);
        assert_eq!(e2.join().unwrap().delivered, 3);
        let received = collector.join().unwrap();
        assert_eq!(received[0], received[1]);
        assert_eq!(received[0], vec!["1", "2", "3"]);
    }
}
