//! Hash partitioning of batches across shards.
//!
//! The cluster layer (`dccluster`) scales one logical stream across N
//! independent engines by hash-partitioning arriving batches on a key
//! column. This module is the kernel-side half of that: a [`Partitioner`]
//! maps each row of a [`Relation`] to a shard and slices the batch into
//! per-shard sub-batches **column-wise** (via `gather_positions`, a
//! handful of typed-vector gathers) — rows are never materialized or
//! re-encoded on the way through the router.
//!
//! Routing is deterministic: the same key value always lands on the same
//! shard (for a fixed shard count), NULL keys included — so a continuous
//! query whose state is keyed by the partition column sees every tuple of
//! one key on one engine.

use monet::prelude::*;

use crate::error::{EngineError, Result};

/// Shard a NULL key routes to. Any fixed choice works — what matters is
/// that it is deterministic, so all NULL-keyed tuples co-locate.
pub const NULL_SHARD: usize = 0;

/// A hash partitioner over one key column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioner {
    key_col: usize,
    shards: usize,
}

impl Partitioner {
    /// Partition on column index `key_col` (user-schema order) across
    /// `shards` shards. `shards` must be ≥ 1.
    pub fn new(key_col: usize, shards: usize) -> Result<Partitioner> {
        if shards == 0 {
            return Err(EngineError::Config(
                "partitioner needs at least one shard".into(),
            ));
        }
        Ok(Partitioner { key_col, shards })
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// The shard row `i` of `rel` belongs to.
    ///
    /// Hashes the key column's typed value directly (no `Value` boxing).
    /// Int and Ts hash identically (they compare equal in SQL); Double
    /// normalizes `-0.0` to `0.0` so numerically equal keys co-locate.
    pub fn shard_of(&self, rel: &Relation, i: usize) -> Result<usize> {
        if self.key_col >= rel.width() {
            return Err(EngineError::Config(format!(
                "partition key column {} out of range (batch has {} columns)",
                self.key_col,
                rel.width()
            )));
        }
        let col = rel.col_at(self.key_col);
        if !col.is_valid(i) {
            return Ok(NULL_SHARD % self.shards);
        }
        let h = match col.data() {
            ColumnData::Bool(v) => mix(v[i] as u64),
            ColumnData::Int(v) | ColumnData::Ts(v) => mix(v[i] as u64),
            ColumnData::Double(v) => {
                let x = if v[i] == 0.0 { 0.0 } else { v[i] };
                mix(x.to_bits())
            }
            ColumnData::Str(v) => mix(fnv1a(v[i].as_bytes())),
        };
        Ok((h % self.shards as u64) as usize)
    }

    /// Per-row shard assignment for a whole batch — the router's hot
    /// path. The bounds check, column lookup and type dispatch are
    /// loop-invariant, so they happen once per batch here; only the hash
    /// itself runs per row.
    pub fn assignments(&self, rel: &Relation) -> Result<Vec<usize>> {
        if self.key_col >= rel.width() {
            return Err(EngineError::Config(format!(
                "partition key column {} out of range (batch has {} columns)",
                self.key_col,
                rel.width()
            )));
        }
        let col = rel.col_at(self.key_col);
        let validity = col.validity();
        let shards = self.shards as u64;
        let null_shard = NULL_SHARD % self.shards;
        let mut out = Vec::with_capacity(rel.len());
        // the same per-type formulas as `shard_of`, hoisted out of the
        // row loop (equality is pinned by the partition property tests)
        macro_rules! fill {
            ($values:expr, $hash:expr) => {
                for (i, v) in $values.iter().enumerate() {
                    let valid = validity.map_or(true, |m| m.get(i));
                    out.push(if valid {
                        (($hash)(v) % shards) as usize
                    } else {
                        null_shard
                    });
                }
            };
        }
        match col.data() {
            ColumnData::Bool(v) => fill!(v, |b: &bool| mix(*b as u64)),
            ColumnData::Int(v) | ColumnData::Ts(v) => fill!(v, |x: &i64| mix(*x as u64)),
            ColumnData::Double(v) => fill!(v, |x: &f64| {
                let x = if *x == 0.0 { 0.0 } else { *x };
                mix(x.to_bits())
            }),
            ColumnData::Str(v) => fill!(v, |s: &String| mix(fnv1a(s.as_bytes()))),
        }
        Ok(out)
    }

    /// Slice `rel` into one sub-batch per shard, preserving the relative
    /// order of rows within each shard. Columns are gathered directly
    /// (positional, typed memcpy-style) — no row materialization.
    ///
    /// The result always has exactly [`Partitioner::shards`] entries;
    /// shards that received no rows get an empty relation.
    pub fn split(&self, rel: &Relation) -> Result<Vec<Relation>> {
        if self.shards == 1 {
            // still validate: a misconfigured key column must error
            // identically at 1 shard and N shards
            if self.key_col >= rel.width() {
                return Err(EngineError::Config(format!(
                    "partition key column {} out of range (batch has {} columns)",
                    self.key_col,
                    rel.width()
                )));
            }
            return Ok(vec![rel.clone()]);
        }
        let assignments = self.assignments(rel)?;
        let mut positions: Vec<Vec<u32>> = vec![Vec::new(); self.shards];
        for (i, &s) in assignments.iter().enumerate() {
            positions[s].push(i as u32);
        }
        positions
            .iter()
            .map(|pos| {
                if pos.is_empty() {
                    Ok(Relation::new(&rel.schema()))
                } else {
                    rel.gather_positions(pos)
                        .map_err(|e| EngineError::Io(format!("partition gather: {e}")))
                }
            })
            .collect()
    }
}

/// FNV-1a over raw bytes — the string key path.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 finalizer: full-avalanche mix so low bits (which `% shards`
/// keeps) are uniform even for sequential integer keys.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_columns(vec![
            ("id".into(), Column::from_ints((0..100).collect())),
            ("v".into(), Column::from_ints((0..100).map(|i| i * 3).collect())),
        ])
        .unwrap()
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(Partitioner::new(0, 0).is_err());
        assert!(Partitioner::new(0, 1).is_ok());
    }

    #[test]
    fn single_shard_split_is_identity() {
        let rel = sample();
        let p = Partitioner::new(0, 1).unwrap();
        let parts = p.split(&rel).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], rel);
    }

    #[test]
    fn split_conserves_rows_and_order_within_shards() {
        let rel = sample();
        let p = Partitioner::new(0, 4).unwrap();
        let parts = p.split(&rel).unwrap();
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, rel.len());
        for (s, part) in parts.iter().enumerate() {
            let ids = part.column("id").unwrap().ints().unwrap();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "order preserved");
            for i in 0..part.len() {
                assert_eq!(p.shard_of(part, i).unwrap(), s, "row on its shard");
            }
        }
    }

    #[test]
    fn routing_is_deterministic_and_value_based() {
        let rel = sample();
        let p = Partitioner::new(1, 3).unwrap();
        let a = p.assignments(&rel).unwrap();
        let b = p.assignments(&rel).unwrap();
        assert_eq!(a, b);
        // same key value in a different batch routes identically
        let single = Relation::from_columns(vec![
            ("x".into(), Column::from_ints(vec![42])),
            ("k".into(), Column::from_ints(vec![21])),
        ])
        .unwrap();
        let i = rel.column("v").unwrap().ints().unwrap().iter().position(|&v| v == 21).unwrap();
        assert_eq!(p.shard_of(&single, 0).unwrap(), a[i]);
    }

    #[test]
    fn null_keys_route_to_the_null_shard() {
        let mut rel = Relation::new(&Schema::from_pairs(&[("k", ValueType::Str)]));
        rel.append_row(&[Value::Null]).unwrap();
        rel.append_row(&[Value::Str("x".into())]).unwrap();
        rel.append_row(&[Value::Null]).unwrap();
        let p = Partitioner::new(0, 5).unwrap();
        let assignments = p.assignments(&rel).unwrap();
        assert_eq!(assignments[0], NULL_SHARD % 5);
        assert_eq!(assignments[2], NULL_SHARD % 5);
    }

    #[test]
    fn int_and_ts_keys_agree() {
        let ints = Relation::from_columns(vec![("k".into(), Column::from_ints(vec![7, 123456789]))])
            .unwrap();
        let ts = Relation::from_columns(vec![("k".into(), Column::from_ts(vec![7, 123456789]))])
            .unwrap();
        let p = Partitioner::new(0, 7).unwrap();
        assert_eq!(p.assignments(&ints).unwrap(), p.assignments(&ts).unwrap());
    }

    #[test]
    fn negative_zero_co_locates_with_zero() {
        let rel = Relation::from_columns(vec![(
            "k".into(),
            Column::from_doubles(vec![0.0, -0.0]),
        )])
        .unwrap();
        let p = Partitioner::new(0, 8).unwrap();
        let a = p.assignments(&rel).unwrap();
        assert_eq!(a[0], a[1]);
    }

    #[test]
    fn uniform_int_keys_balance_within_2x() {
        let rel = Relation::from_columns(vec![(
            "k".into(),
            Column::from_ints((0..10_000).collect()),
        )])
        .unwrap();
        for shards in [2usize, 3, 5, 8] {
            let p = Partitioner::new(0, shards).unwrap();
            let parts = p.split(&rel).unwrap();
            let ideal = rel.len() / shards;
            for part in &parts {
                assert!(
                    part.len() * 2 >= ideal && part.len() <= ideal * 2,
                    "shard holds {} of {} rows across {} shards",
                    part.len(),
                    rel.len(),
                    shards
                );
            }
        }
    }

    #[test]
    fn key_out_of_range_is_an_error() {
        let rel = sample();
        for shards in [1, 2] {
            let p = Partitioner::new(9, shards).unwrap();
            assert!(p.shard_of(&rel, 0).is_err());
            assert!(p.assignments(&rel).is_err());
            assert!(p.split(&rel).is_err(), "shards={shards}");
        }
    }
}
