//! Baskets — the key data structure of the DataCell (paper §3.2).
//!
//! A basket holds a portion of a stream as a transient, main-memory
//! columnar table. Receptors append, factories read-and-consume, and the
//! whole structure is protected by a single lock (Algorithm 1 locks input
//! and output baskets for the duration of one factory firing).
//!
//! Differences from relational tables, per the paper, all present here:
//!
//! * **Basket integrity** — constraint-violating events are *silently
//!   dropped*, indistinguishable from never having arrived;
//! * **Basket ACID** — contents are transient (no crash survival), and
//!   concurrent access is regulated by the basket lock;
//! * **Basket control** — a disabled basket blocks its stream: appends are
//!   rejected until re-enabled.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use dctrace::BasketProbe;

use dcsql::ast::Expr;
use dcsql::exec::{eval_expr, ExecEnv, QueryContext, StaticContext};
use monet::bitset::Bitset;
use monet::ops::select::select_true;
use monet::prelude::*;
use parking_lot::{Mutex, MutexGuard};

use crate::clock::Clock;
use crate::error::{EngineError, Result};
use crate::persist::{PersistStats, StreamPersist};

/// Name of the automatic arrival-timestamp column.
pub const TS_COLUMN: &str = "dc_ts";

/// Counters exposed for monitoring and the benchmark harness.
#[derive(Debug, Default)]
pub struct BasketStats {
    /// Tuples accepted into the basket over its lifetime.
    pub total_in: AtomicU64,
    /// Tuples removed (consumed or drained).
    pub total_out: AtomicU64,
    /// Tuples silently dropped by integrity constraints.
    pub dropped: AtomicU64,
    /// Largest buffered tuple count ever observed after an append.
    pub high_water: AtomicU64,
}

impl BasketStats {
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.total_in.load(Ordering::Relaxed),
            self.total_out.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }

    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Logically-deleted rows below this count never trigger compaction on
/// their own (they still compact when they reach half the physical store).
pub const DEFAULT_COMPACT_THRESHOLD: usize = 1024;

/// The lock-protected contents.
///
/// Deletes are *logical*: consumption marks rows in a deleted-bitmap
/// instead of eagerly rewriting every column, and the physical store is
/// compacted lazily once enough rows are dead (the bounded-memory,
/// compact-lazily discipline). Physical row positions therefore stay
/// stable across marks, which is what lets a firing record consumption
/// positions against a snapshot taken earlier — guarded by the
/// generation counters below.
#[derive(Debug)]
pub struct BasketInner {
    /// Physical store; may contain logically-deleted rows.
    rel: Relation,
    /// Bit `i` set ⇒ physical row `i` is logically deleted. `None` ⇔ clean.
    deleted: Option<Bitset>,
    deleted_count: usize,
    /// Bumped whenever live-row numbering could have changed: logical
    /// marks, compaction, drains. A firing that snapshotted at generation
    /// `g` may apply its consumption positions only while `delete_gen`
    /// still reads `g`. Appends need no counter — they extend the store
    /// without renumbering existing rows, so snapshot positions survive
    /// them.
    delete_gen: u64,
    /// Lifetime count of physical compactions.
    compactions: u64,
    /// Memoized live gather for dirty snapshots, keyed on
    /// `(delete_gen, physical len)` — both change whenever the live view
    /// does (marks/compaction/drain bump the generation, appends grow the
    /// store), so repeated snapshots between mutations cost O(width).
    live_cache: Option<(u64, usize, Relation)>,
}

impl BasketInner {
    /// The physical store (under the basket lock). May contain
    /// logically-deleted rows — use [`BasketInner::live_snapshot`] for the
    /// visible contents.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Buffered (live) tuples.
    pub fn live_len(&self) -> usize {
        self.rel.len() - self.deleted_count
    }

    /// Logically-deleted rows awaiting compaction.
    pub fn pending_deletes(&self) -> usize {
        self.deleted_count
    }

    /// Lifetime physical compactions.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    pub fn delete_gen(&self) -> u64 {
        self.delete_gen
    }

    /// The visible contents. O(width) when no deletes are pending (a
    /// copy-on-write share of every column); a gather of the live rows
    /// otherwise — memoized, so only the first snapshot after a mutation
    /// pays the gather.
    pub fn live_snapshot(&mut self) -> Relation {
        let Some(live) = self.live_sel() else {
            return self.rel.clone();
        };
        if let Some((gen, len, cached)) = &self.live_cache {
            if *gen == self.delete_gen && *len == self.rel.len() {
                return cached.clone();
            }
        }
        let snap = self
            .rel
            .gather(&live)
            .expect("live positions are in bounds by construction");
        self.live_cache = Some((self.delete_gen, self.rel.len(), snap.clone()));
        snap
    }

    /// Pruned visible contents: only the `wanted` columns (plus a first-
    /// column row-count carrier when `wanted` names no stored column, so
    /// the snapshot's length always matches the live row count). `None`
    /// means everything — [`BasketInner::live_snapshot`]. O(wanted) Arc
    /// bumps on a clean basket; a gather of only the wanted columns when
    /// deletes are pending — the compiled-plan firing path's
    /// O(touched-columns) incremental snapshot.
    pub fn live_snapshot_cols(
        &mut self,
        wanted: Option<&std::collections::BTreeSet<String>>,
    ) -> Relation {
        let Some(wanted) = wanted else {
            return self.live_snapshot();
        };
        if self.rel.width() == 0 || wanted.len() >= self.rel.width() {
            // possibly everything wanted — the full snapshot is memoized
            // and costs the same or less than re-filtering
            if self.rel.width() == 0
                || self.rel.names().iter().all(|n| wanted.contains(n))
            {
                return self.live_snapshot();
            }
        }
        // iterate the (small) wanted set, not the (wide) schema: the
        // touched-columns cost model holds even per firing
        let names = self.rel.names();
        let mut idx: Vec<usize> = Vec::with_capacity(wanted.len());
        for w in wanted {
            if let Some(i) = names.iter().position(|n| n == w) {
                idx.push(i);
            }
        }
        idx.sort_unstable(); // keep schema order
        if idx.is_empty() {
            idx.push(0); // row-count carrier
        }
        match self.live_sel() {
            // clean store: column shares, O(wanted)
            None => {
                let cols: Vec<(String, Column)> = idx
                    .iter()
                    .map(|&i| (names[i].clone(), self.rel.col_at(i).clone()))
                    .collect();
                Relation::from_columns(cols).expect("non-empty aligned columns")
            }
            Some(live) => {
                // dirty store: reuse the memoized full gather when one is
                // current; otherwise gather only the wanted columns
                if let Some((gen, len, cached)) = &self.live_cache {
                    if *gen == self.delete_gen && *len == self.rel.len() {
                        let cols: Vec<(String, Column)> = idx
                            .iter()
                            .map(|&i| (names[i].clone(), cached.col_at(i).clone()))
                            .collect();
                        return Relation::from_columns(cols)
                            .expect("cache shares the store's schema");
                    }
                }
                let cols: Vec<(String, Column)> = idx
                    .iter()
                    .map(|&i| {
                        let col = self
                            .rel
                            .col_at(i)
                            .gather(&live)
                            .expect("live positions are in bounds by construction");
                        (names[i].clone(), col)
                    })
                    .collect();
                Relation::from_columns(cols).expect("non-empty aligned columns")
            }
        }
    }

    /// Ascending physical positions of the live rows; `None` when the
    /// identity mapping applies (no pending deletes).
    fn live_sel(&self) -> Option<SelVec> {
        let deleted = self.deleted.as_ref()?;
        let live: Vec<u32> = (0..self.rel.len() as u32)
            .filter(|&p| !deleted.get(p as usize))
            .collect();
        Some(SelVec::from_sorted(live).expect("ascending by construction"))
    }

    /// Translate live-view positions (ascending) to physical positions.
    fn to_physical(&self, live: &SelVec) -> Vec<u32> {
        match &self.deleted {
            None => live.as_slice().to_vec(),
            Some(deleted) => {
                let mut out = Vec::with_capacity(live.len());
                let mut want = live.iter();
                let mut next = want.next();
                let mut live_idx = 0u32;
                for phys in 0..self.rel.len() as u32 {
                    if deleted.get(phys as usize) {
                        continue;
                    }
                    match next {
                        Some(n) if n == live_idx => {
                            out.push(phys);
                            next = want.next();
                        }
                        _ => {}
                    }
                    live_idx += 1;
                }
                out
            }
        }
    }

    /// Keep the deleted-bitmap aligned after `appended` new rows.
    fn note_append(&mut self, appended: usize) {
        if let Some(d) = &mut self.deleted {
            d.extend_filled(appended, false);
        }
    }

    /// Physically drop the marked rows and reset the bitmap.
    fn compact(&mut self) {
        self.live_cache = None;
        let Some(deleted) = self.deleted.take() else {
            return;
        };
        if self.deleted_count == self.rel.len() {
            self.rel.clear();
        } else {
            let dead: Vec<u32> = deleted.iter_ones().map(|p| p as u32).collect();
            let sel = SelVec::from_sorted(dead).expect("bitmap yields ascending positions");
            self.rel
                .delete_sel(&sel)
                .expect("bitmap is aligned with the physical store");
        }
        self.deleted_count = 0;
        self.delete_gen += 1;
        self.compactions += 1;
    }
}

/// A shared, lockable stream buffer.
pub struct Basket {
    id: u64,
    name: String,
    schema: Schema,
    stamps_arrival: bool,
    enabled: AtomicBool,
    /// Receptor backpressure: buffered tuples above which feeders should
    /// block (0 = unbounded). Appends themselves are never rejected by
    /// the cap — cooperating producers gate on [`Basket::has_capacity`].
    pending_cap: AtomicUsize,
    /// Compaction knob: minimum logically-deleted rows before a physical
    /// rewrite is considered (0 = compact eagerly on every delete, the
    /// pre-copy-on-write behavior).
    compact_threshold: AtomicUsize,
    constraints: Mutex<Vec<Expr>>,
    inner: Mutex<BasketInner>,
    stats: BasketStats,
    /// Telemetry probe (dwell/append histograms, backpressure and
    /// compaction counters, the ingest watermark). Set once by the
    /// engine right after construction; absent when telemetry is off.
    probe: OnceLock<Arc<BasketProbe>>,
    /// Durability sink (`CREATE STREAM ... PERSIST`). Set once after
    /// construction — and after WAL replay, so recovered batches are not
    /// re-logged. Absent on ordinary transient baskets.
    persist: OnceLock<Arc<dyn StreamPersist>>,
}

impl std::fmt::Debug for Basket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Basket")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("len", &self.len())
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

static NEXT_BASKET_ID: AtomicU64 = AtomicU64::new(0);

impl Basket {
    /// Create a basket. `stamp_arrivals` adds the automatic [`TS_COLUMN`]
    /// holding each tuple's arrival time.
    pub fn new(name: impl Into<String>, schema: &Schema, stamp_arrivals: bool) -> Arc<Basket> {
        let mut fields: Vec<Field> = schema.fields().to_vec();
        if stamp_arrivals {
            fields.push(Field::new(TS_COLUMN, ValueType::Ts));
        }
        let full = Schema::new(fields);
        Arc::new(Basket {
            id: NEXT_BASKET_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            schema: full.clone(),
            stamps_arrival: stamp_arrivals,
            enabled: AtomicBool::new(true),
            pending_cap: AtomicUsize::new(0),
            compact_threshold: AtomicUsize::new(DEFAULT_COMPACT_THRESHOLD),
            constraints: Mutex::new(Vec::new()),
            inner: Mutex::new(BasketInner {
                rel: Relation::new(&full),
                deleted: None,
                deleted_count: 0,
                delete_gen: 0,
                compactions: 0,
                live_cache: None,
            }),
            stats: BasketStats::default(),
            probe: OnceLock::new(),
            persist: OnceLock::new(),
        })
    }

    /// Attach the telemetry probe (idempotent; first caller wins).
    pub fn set_probe(&self, probe: Arc<BasketProbe>) {
        let _ = self.probe.set(probe);
    }

    /// The attached telemetry probe, if any.
    pub fn probe(&self) -> Option<&Arc<BasketProbe>> {
        self.probe.get()
    }

    /// Attach the durability sink (idempotent; first caller wins).
    /// Attach only *after* any WAL replay — from this point on, every
    /// accepted append is logged before it is acknowledged.
    pub fn set_persist(&self, sink: Arc<dyn StreamPersist>) {
        let _ = self.persist.set(sink);
    }

    /// The attached durability sink, if any.
    pub fn persist(&self) -> Option<&Arc<dyn StreamPersist>> {
        self.persist.get()
    }

    /// Whether this basket is backed by durable storage.
    pub fn is_persistent(&self) -> bool {
        self.persist.get().is_some()
    }

    /// Durability counters (`None` on transient baskets).
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.persist.get().map(|p| p.stats())
    }

    /// Globally unique id; the engine locks baskets in id order to avoid
    /// deadlocks when factories touch overlapping sets.
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Full schema (including the timestamp column when stamping).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Width of user-facing rows (excludes the auto timestamp column).
    pub fn user_width(&self) -> usize {
        self.schema.width() - usize::from(self.stamps_arrival)
    }

    /// The user-facing part of the schema — what travels on the wire
    /// through receptors and emitters (excludes the auto timestamp column).
    pub fn user_schema(&self) -> Schema {
        Schema::new(self.schema.fields()[..self.user_width()].to_vec())
    }

    pub fn stats(&self) -> &BasketStats {
        &self.stats
    }

    // ---- basket control ----------------------------------------------------

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Block the stream: subsequent appends are rejected.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    // ---- backpressure -------------------------------------------------------

    /// Set the pending-batch cap (buffered tuples) above which feeders
    /// should stop appending; 0 removes the cap.
    pub fn set_pending_cap(&self, cap: usize) {
        self.pending_cap.store(cap, Ordering::Release);
    }

    /// The configured pending cap (0 = unbounded).
    pub fn pending_cap(&self) -> usize {
        self.pending_cap.load(Ordering::Acquire)
    }

    /// Whether a cooperating feeder may append right now.
    pub fn has_capacity(&self) -> bool {
        let cap = self.pending_cap();
        cap == 0 || self.len() < cap
    }

    // ---- compaction ---------------------------------------------------------

    /// Set the minimum pending logical deletes before compaction is
    /// considered; 0 compacts eagerly on every delete.
    pub fn set_compact_threshold(&self, rows: usize) {
        self.compact_threshold.store(rows, Ordering::Release);
    }

    pub fn compact_threshold(&self) -> usize {
        self.compact_threshold.load(Ordering::Acquire)
    }

    /// `(pending logical deletes, lifetime compactions)` — the
    /// [`crate::engine::BasketReport`] telemetry.
    pub fn compaction_stats(&self) -> (usize, u64) {
        let inner = self.inner.lock();
        (inner.pending_deletes(), inner.compactions())
    }

    /// Force a physical compaction now (rewrites columns if any rows are
    /// marked deleted).
    pub fn compact_now(&self) {
        let mut inner = self.inner.lock();
        let rows = inner.deleted_count;
        inner.compact();
        if rows > 0 {
            if let Some(p) = self.probe() {
                p.note_compaction(rows);
            }
        }
    }

    fn maybe_compact(&self, inner: &mut BasketInner) {
        if inner.deleted_count == 0 {
            return;
        }
        let threshold = self.compact_threshold();
        // Compact once the dead rows clear the absolute threshold AND an
        // eighth of the store: the rewrite is O(live), so this amortizes
        // to ≤ 8 rows moved per deleted row while bounding how long
        // snapshots/deletes stay in the dirty (gather/translate) regime.
        let due = threshold == 0
            || inner.deleted_count == inner.rel.len()
            || (inner.deleted_count >= threshold
                && inner.deleted_count * 8 >= inner.rel.len());
        if due {
            let rows = inner.deleted_count;
            inner.compact();
            if let Some(p) = self.probe() {
                p.note_compaction(rows);
            }
        }
    }

    /// Block until the basket drains below its cap (receptor
    /// backpressure). Polls; `abort` is checked each round so server
    /// shutdown can interrupt a blocked feeder, and a *disabled* basket
    /// always aborts the wait — `disable()` is the caller-independent
    /// lever to unwedge a blocked feeder whose consumer died. Returns
    /// `false` when aborted, `true` when capacity is available.
    pub fn wait_for_capacity(&self, abort: impl Fn() -> bool) -> bool {
        if self.has_capacity() {
            return true;
        }
        let started = std::time::Instant::now();
        let ok = loop {
            if abort() || !self.is_enabled() {
                break false;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            if self.has_capacity() {
                break true;
            }
        };
        if let Some(p) = self.probe() {
            p.note_backpressure(started.elapsed().as_micros() as u64);
        }
        ok
    }

    // ---- integrity ----------------------------------------------------------

    /// Install an integrity constraint (a boolean SQL expression over the
    /// basket's columns). Violating tuples are silently dropped on append.
    pub fn add_constraint(&self, predicate: Expr) {
        self.constraints.lock().push(predicate);
    }

    /// Apply constraints to a candidate batch, returning the accepted rows.
    fn filter_constraints(&self, batch: Relation) -> Result<Relation> {
        let constraints = self.constraints.lock();
        if constraints.is_empty() || batch.is_empty() {
            return Ok(batch);
        }
        let ctx = StaticContext::new();
        let env = ExecEnv::default();
        let mut keep = SelVec::all(batch.len());
        for c in constraints.iter() {
            let mask = eval_expr(c, &batch, &ctx as &dyn QueryContext, &env)
                .map_err(EngineError::Sql)?;
            // NULL is not TRUE → dropped, exactly like a silent filter
            let passing = select_true(&mask, None)?;
            keep = keep.intersect(&passing);
        }
        let dropped = batch.len() - keep.len();
        if dropped > 0 {
            self.stats.dropped.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        Ok(batch.gather(&keep)?)
    }

    // ---- ingestion ----------------------------------------------------------

    /// Append user rows (without the timestamp column); stamps arrival time
    /// when the basket was created with stamping. Returns accepted count.
    pub fn append_rows(&self, rows: &[Vec<Value>], clock: &dyn Clock) -> Result<usize> {
        if rows.is_empty() {
            return Ok(0);
        }
        let mut batch = Relation::new(&self.schema);
        let now = clock.now();
        for row in rows {
            if row.len() != self.user_width() {
                return Err(EngineError::Config(format!(
                    "basket {}: row width {} != schema width {}",
                    self.name,
                    row.len(),
                    self.user_width()
                )));
            }
            if self.stamps_arrival {
                let mut full = row.clone();
                full.push(Value::Ts(now));
                batch.append_row(&full)?;
            } else {
                batch.append_row(row)?;
            }
        }
        let uniform_ts = self.stamps_arrival.then_some(now);
        self.append_filtered(batch, uniform_ts)
    }

    /// Append an already-columnar batch. The batch must either match the
    /// full schema, or (for stamping baskets) the user schema — in which
    /// case arrival timestamps are added.
    pub fn append_relation(&self, batch: Relation, clock: &dyn Clock) -> Result<usize> {
        let (accepted, uniform_ts) = self.prepare_batch(batch, clock)?;
        let n = accepted.len();
        if n > 0 {
            let mut inner = self.inner.lock();
            self.log_accepted(&accepted, uniform_ts)?;
            inner.rel.append_relation(&accepted)?;
            inner.note_append(n);
            self.stats.total_in.fetch_add(n as u64, Ordering::Relaxed);
            self.note_high_water(inner.live_len());
            if let Some(p) = self.probe() {
                p.note_append(n);
            }
            self.maybe_seal(&mut inner)?;
        }
        Ok(n)
    }

    /// Append through an already-held guard (factory firing path, where
    /// the apply phase holds the output-basket lock).
    pub fn append_relation_locked(
        &self,
        inner: &mut BasketInner,
        batch: Relation,
        clock: &dyn Clock,
    ) -> Result<usize> {
        let (accepted, uniform_ts) = self.prepare_batch(batch, clock)?;
        let n = accepted.len();
        if n > 0 {
            self.log_accepted(&accepted, uniform_ts)?;
            inner.rel.append_relation(&accepted)?;
            inner.note_append(n);
            self.stats.total_in.fetch_add(n as u64, Ordering::Relaxed);
            self.note_high_water(inner.live_len());
            if let Some(p) = self.probe() {
                p.note_append(n);
            }
            self.maybe_seal(inner)?;
        }
        Ok(n)
    }

    fn note_high_water(&self, len: usize) {
        self.stats.high_water.fetch_max(len as u64, Ordering::Relaxed);
    }

    /// Stamp, validate and constraint-filter a batch (no locking).
    /// The second value is the single arrival timestamp this call
    /// stamped onto every row, when it did the stamping itself.
    fn prepare_batch(
        &self,
        mut batch: Relation,
        clock: &dyn Clock,
    ) -> Result<(Relation, Option<i64>)> {
        if !self.is_enabled() {
            return Err(EngineError::Disabled(self.name.clone()));
        }
        if batch.is_empty() {
            return Ok((Relation::new(&self.schema), None));
        }
        let mut uniform_ts = None;
        if self.stamps_arrival && batch.width() + 1 == self.schema.width() {
            let now = clock.now();
            let ts = Column::from_ts(vec![now; batch.len()]);
            batch.add_column(TS_COLUMN, ts)?;
            uniform_ts = Some(now);
        }
        if !batch.schema().compatible(&self.schema) {
            return Err(EngineError::Config(format!(
                "basket {}: incompatible batch schema",
                self.name
            )));
        }
        Ok((self.filter_constraints(batch)?, uniform_ts))
    }

    fn append_filtered(&self, batch: Relation, uniform_ts: Option<i64>) -> Result<usize> {
        if !self.is_enabled() {
            return Err(EngineError::Disabled(self.name.clone()));
        }
        let accepted = self.filter_constraints(batch)?;
        let n = accepted.len();
        if n > 0 {
            let mut inner = self.inner.lock();
            self.log_accepted(&accepted, uniform_ts)?;
            // positional compatibility was just validated
            inner.rel.append_relation(&accepted)?;
            inner.note_append(n);
            self.stats.total_in.fetch_add(n as u64, Ordering::Relaxed);
            self.note_high_water(inner.live_len());
            if let Some(p) = self.probe() {
                p.note_append(n);
            }
            self.maybe_seal(&mut inner)?;
        }
        Ok(n)
    }

    // ---- durability ---------------------------------------------------------

    /// WAL the accepted batch ahead of the in-memory append (no-op on
    /// transient baskets). Called under the basket lock; an error here
    /// rejects the whole append, so an acknowledged batch is always on
    /// the log first.
    fn log_accepted(&self, accepted: &Relation, uniform_ts: Option<i64>) -> Result<()> {
        match self.persist.get() {
            Some(p) => p.log_append(accepted, uniform_ts),
            None => Ok(()),
        }
    }

    /// Auto-seal once the resident rows cross the sink's threshold.
    fn maybe_seal(&self, inner: &mut BasketInner) -> Result<()> {
        if let Some(p) = self.persist.get() {
            let threshold = p.seal_threshold();
            if threshold > 0 && inner.live_len() >= threshold {
                self.seal_locked(inner, p.as_ref())?;
            }
        }
        Ok(())
    }

    /// Seal the live rows into durable storage now (`FLUSH STREAM`).
    /// Returns the number of rows sealed. Errors on transient baskets.
    pub fn seal_now(&self) -> Result<usize> {
        let sink = Arc::clone(self.persist.get().ok_or_else(|| {
            EngineError::Config(format!("basket {} is not persistent", self.name))
        })?);
        let mut inner = self.inner.lock();
        self.seal_locked(&mut inner, sink.as_ref())
    }

    /// Hand the live snapshot to the sink, then release the hot rows —
    /// they now live in an immutable segment. The snapshot is the
    /// copy-on-write column chain: O(width) Arc shares on a clean
    /// basket, never a row-wise re-encode.
    fn seal_locked(&self, inner: &mut BasketInner, sink: &dyn StreamPersist) -> Result<usize> {
        let snapshot = inner.live_snapshot();
        sink.seal(&snapshot)?;
        let n = snapshot.len();
        if !inner.rel.is_empty() {
            inner.rel = Relation::new(&self.schema);
            inner.deleted = None;
            inner.deleted_count = 0;
            inner.live_cache = None;
            inner.delete_gen += 1;
        }
        if n > 0 {
            self.stats.total_out.fetch_add(n as u64, Ordering::Relaxed);
            if let Some(p) = self.probe() {
                p.take_watermark();
            }
        }
        Ok(n)
    }

    // ---- reading & consumption ----------------------------------------------

    /// Number of buffered (live) tuples.
    pub fn len(&self) -> usize {
        self.inner.lock().live_len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The visible contents ("a basket can also be inspected outside a
    /// basket expression; then it behaves as any table"). O(width) when no
    /// deletes are pending — every column is a copy-on-write share.
    pub fn snapshot(&self) -> Relation {
        self.inner.lock().live_snapshot()
    }

    /// Pruned snapshot: only the `wanted` columns (`None` = everything).
    /// Same visibility semantics as [`Basket::snapshot`], but a query
    /// touching 2 of 32 columns pays 2 Arc bumps, not 32 — see
    /// [`BasketInner::live_snapshot_cols`].
    pub fn snapshot_cols(
        &self,
        wanted: Option<&std::collections::BTreeSet<String>>,
    ) -> Relation {
        self.inner.lock().live_snapshot_cols(wanted)
    }

    /// Acquire the basket lock for a multi-step read-modify cycle (the
    /// factory firing path). Lock ordering by [`Basket::id`] is the
    /// caller's responsibility.
    pub fn lock(&self) -> MutexGuard<'_, BasketInner> {
        self.inner.lock()
    }

    /// Delete the given live-view positions (consumption after a basket
    /// expression). Positions index the relation [`Basket::snapshot`]
    /// returns; they stay valid as long as no other delete/drain runs
    /// between snapshot and this call (appends are always safe). The
    /// delete is logical — columns are rewritten only when the compaction
    /// threshold trips.
    pub fn delete_sel(&self, sel: &SelVec) -> Result<()> {
        let mut inner = self.inner.lock();
        self.delete_sel_locked(&mut inner, sel)
    }

    /// Delete live-view positions through an already-held guard (keeps
    /// snapshot positions valid across the read-consume cycle).
    pub fn delete_sel_locked(
        &self,
        inner: &mut BasketInner,
        sel: &SelVec,
    ) -> Result<()> {
        if sel.is_empty() {
            return Ok(());
        }
        sel.check_bounds(inner.live_len())?;
        self.stats
            .total_out
            .fetch_add(sel.len() as u64, Ordering::Relaxed);
        if let Some(p) = self.probe() {
            p.take_watermark(); // records dwell for the consumed batch(es)
        }
        match &mut inner.deleted {
            None if sel.len() == inner.rel.len() => {
                // consuming everything in a clean basket: release the
                // storage wholesale, no bitmap needed (the common
                // "whole batch referenced" firing)
                inner.rel.clear();
                inner.delete_gen += 1;
                return Ok(());
            }
            None => {
                // clean basket: live positions ARE physical positions
                let mut deleted = Bitset::filled(inner.rel.len(), false);
                for p in sel.iter() {
                    deleted.set(p as usize, true);
                }
                inner.deleted = Some(deleted);
                inner.deleted_count = sel.len();
            }
            Some(_) => {
                let phys = inner.to_physical(sel);
                let deleted = inner.deleted.as_mut().expect("matched Some");
                for &p in &phys {
                    deleted.set(p as usize, true);
                }
                inner.deleted_count += phys.len();
            }
        }
        inner.delete_gen += 1;
        self.maybe_compact(inner);
        Ok(())
    }

    /// Remove and return everything live (`basket.empty` in Algorithm 1).
    pub fn drain(&self) -> Relation {
        let mut inner = self.inner.lock();
        let n = inner.live_len();
        let full = match inner.live_sel() {
            None => {
                let empty = Relation::new(&self.schema);
                std::mem::replace(&mut inner.rel, empty)
            }
            Some(live) => {
                let out = inner
                    .rel
                    .gather(&live)
                    .expect("live positions are in bounds by construction");
                inner.rel = Relation::new(&self.schema);
                inner.deleted = None;
                inner.deleted_count = 0;
                inner.live_cache = None;
                out
            }
        };
        if !full.is_empty() {
            inner.delete_gen += 1;
            if let Some(p) = self.probe() {
                p.take_watermark();
            }
        }
        self.stats.total_out.fetch_add(n as u64, Ordering::Relaxed);
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use dcsql::ast::BinOp;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", ValueType::Int), ("payload", ValueType::Int)])
    }

    #[test]
    fn append_stamps_arrival_time() {
        let clock = VirtualClock::starting_at(42);
        let b = Basket::new("B", &schema(), true);
        assert_eq!(b.schema().width(), 3);
        b.append_rows(&[vec![Value::Int(1), Value::Int(10)]], &clock)
            .unwrap();
        clock.advance(8);
        b.append_rows(&[vec![Value::Int(2), Value::Int(20)]], &clock)
            .unwrap();
        let snap = b.snapshot();
        assert_eq!(snap.column(TS_COLUMN).unwrap().ints().unwrap(), &[42, 50]);
        assert_eq!(b.stats().snapshot().0, 2);
    }

    #[test]
    fn unstamped_basket_keeps_user_schema() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), false);
        assert_eq!(b.schema().width(), 2);
        b.append_rows(&[vec![Value::Int(1), Value::Int(2)]], &clock)
            .unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn row_width_validated() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), true);
        assert!(b.append_rows(&[vec![Value::Int(1)]], &clock).is_err());
    }

    #[test]
    fn integrity_constraints_silently_drop() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), false);
        // payload > 0
        b.add_constraint(Expr::bin(
            BinOp::Gt,
            Expr::col("payload"),
            Expr::lit(0i64),
        ));
        let n = b
            .append_rows(
                &[
                    vec![Value::Int(1), Value::Int(5)],
                    vec![Value::Int(2), Value::Int(-1)],
                    vec![Value::Int(3), Value::Null], // NULL is not TRUE → dropped
                ],
                &clock,
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.stats().snapshot().2, 2, "two silent drops");
    }

    #[test]
    fn disable_blocks_the_stream() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), false);
        b.disable();
        assert!(matches!(
            b.append_rows(&[vec![Value::Int(1), Value::Int(1)]], &clock),
            Err(EngineError::Disabled(_))
        ));
        b.enable();
        assert_eq!(
            b.append_rows(&[vec![Value::Int(1), Value::Int(1)]], &clock)
                .unwrap(),
            1
        );
    }

    #[test]
    fn drain_and_delete_track_outflow() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), false);
        b.append_rows(
            &[
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(2), Value::Int(2)],
                vec![Value::Int(3), Value::Int(3)],
            ],
            &clock,
        )
        .unwrap();
        b.delete_sel(&SelVec::from_sorted(vec![1]).unwrap()).unwrap();
        assert_eq!(b.len(), 2);
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.stats().snapshot().1, 3);
    }

    #[test]
    fn append_relation_columnar_path() {
        let clock = VirtualClock::starting_at(7);
        let b = Basket::new("B", &schema(), true);
        let batch = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(vec![1, 2])),
            ("payload".into(), Column::from_ints(vec![10, 20])),
        ])
        .unwrap();
        assert_eq!(b.append_relation(batch, &clock).unwrap(), 2);
        let snap = b.snapshot();
        assert_eq!(snap.column(TS_COLUMN).unwrap().ints().unwrap(), &[7, 7]);

        // full-schema batch passes through unchanged
        let full = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(vec![3])),
            ("payload".into(), Column::from_ints(vec![30])),
            (TS_COLUMN.into(), Column::from_ts(vec![99])),
        ])
        .unwrap();
        b.append_relation(full, &clock).unwrap();
        assert_eq!(
            b.snapshot().column(TS_COLUMN).unwrap().ints().unwrap(),
            &[7, 7, 99]
        );

        let bad = Relation::from_columns(vec![("x".into(), Column::from_strs(vec!["s".into()]))])
            .unwrap();
        assert!(b.append_relation(bad, &clock).is_err());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), false);
        b.append_rows(
            &[
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(2), Value::Int(2)],
            ],
            &clock,
        )
        .unwrap();
        assert_eq!(b.stats().high_water(), 2);
        let _ = b.drain();
        b.append_rows(&[vec![Value::Int(3), Value::Int(3)]], &clock)
            .unwrap();
        assert_eq!(b.stats().high_water(), 2, "high water is a lifetime max");
        b.append_rows(
            &[
                vec![Value::Int(4), Value::Int(4)],
                vec![Value::Int(5), Value::Int(5)],
            ],
            &clock,
        )
        .unwrap();
        assert_eq!(b.stats().high_water(), 3);
    }

    #[test]
    fn pending_cap_gates_capacity() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), false);
        assert!(b.has_capacity(), "unbounded by default");
        b.set_pending_cap(2);
        assert_eq!(b.pending_cap(), 2);
        b.append_rows(
            &[
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(2), Value::Int(2)],
            ],
            &clock,
        )
        .unwrap();
        assert!(!b.has_capacity());
        assert!(!b.wait_for_capacity(|| true), "abort unblocks the wait");
        b.disable();
        assert!(
            !b.wait_for_capacity(|| false),
            "disabling the basket unblocks a waiting feeder"
        );
        b.enable();
        let _ = b.drain();
        assert!(b.has_capacity());
        assert!(b.wait_for_capacity(|| false));
    }

    #[test]
    fn pruned_snapshot_columns_and_fallbacks() {
        let clock = VirtualClock::new();
        let wide = Schema::from_pairs(&[
            ("a", ValueType::Int),
            ("b", ValueType::Int),
            ("c", ValueType::Int),
        ]);
        let b = Basket::new("B", &wide, false);
        b.append_rows(
            &[
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(2), Value::Int(20), Value::Int(200)],
                vec![Value::Int(3), Value::Int(30), Value::Int(300)],
            ],
            &clock,
        )
        .unwrap();
        let wanted: std::collections::BTreeSet<String> =
            ["a".to_string(), "c".to_string()].into();
        // clean basket: column shares of exactly the wanted columns
        let snap = b.snapshot_cols(Some(&wanted));
        assert_eq!(snap.names(), &["a", "c"]);
        assert_eq!(snap.len(), 3);
        assert!(snap.column("a").unwrap().shares_data(b.snapshot().column("a").unwrap()));
        // None = full snapshot
        assert_eq!(b.snapshot_cols(None).width(), 3);
        // unknown names leave a row-count carrier
        let ghost: std::collections::BTreeSet<String> = ["zz".to_string()].into();
        let snap = b.snapshot_cols(Some(&ghost));
        assert_eq!(snap.width(), 1);
        assert_eq!(snap.len(), 3);

        // dirty basket (pending logical delete): pruned gather sees only
        // live rows, same numbering as the full snapshot
        b.set_compact_threshold(1_000_000);
        b.delete_sel(&SelVec::from_sorted(vec![1]).unwrap()).unwrap();
        let full = b.snapshot();
        let pruned = b.snapshot_cols(Some(&wanted));
        assert_eq!(pruned.len(), full.len());
        assert_eq!(pruned.column("a").unwrap().ints().unwrap(), &[1, 3]);
        assert_eq!(pruned.column("c").unwrap().ints().unwrap(), &[100, 300]);
    }

    /// Test durability sink: captures every logged batch and the seal
    /// snapshot; optionally fails log_append to model a full disk.
    #[derive(Default)]
    struct MockSink {
        fail_log: AtomicBool,
        logged: Mutex<Vec<Relation>>,
        sealed: Mutex<Vec<Relation>>,
        threshold: AtomicUsize,
    }

    impl StreamPersist for MockSink {
        fn log_append(&self, batch: &Relation, _uniform_ts: Option<i64>) -> Result<()> {
            if self.fail_log.load(Ordering::Relaxed) {
                return Err(EngineError::Io("disk full".into()));
            }
            self.logged.lock().push(batch.clone());
            Ok(())
        }

        fn seal(&self, snapshot: &Relation) -> Result<()> {
            self.sealed.lock().push(snapshot.clone());
            Ok(())
        }

        fn seal_threshold(&self) -> usize {
            self.threshold.load(Ordering::Relaxed)
        }

        fn stats(&self) -> PersistStats {
            PersistStats::default()
        }
    }

    #[test]
    fn persistent_append_logs_before_ack() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), true);
        let sink = Arc::new(MockSink::default());
        b.set_persist(Arc::clone(&sink) as Arc<dyn StreamPersist>);
        b.append_rows(&[vec![Value::Int(1), Value::Int(10)]], &clock)
            .unwrap();
        {
            let logged = sink.logged.lock();
            assert_eq!(logged.len(), 1);
            assert_eq!(
                logged[0].schema().width(),
                b.schema().width(),
                "full schema (timestamps included) hits the log"
            );
        }
        // a failing log rejects the append outright: nothing enters the
        // basket, nothing is counted — the producer is never acked
        sink.fail_log.store(true, Ordering::Relaxed);
        assert!(b
            .append_rows(&[vec![Value::Int(2), Value::Int(20)]], &clock)
            .is_err());
        assert_eq!(b.len(), 1);
        assert_eq!(b.stats().snapshot().0, 1, "rejected batch not counted in");
    }

    #[test]
    fn seal_shares_columns_and_empties_the_basket() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), true);
        let sink = Arc::new(MockSink::default());
        b.set_persist(Arc::clone(&sink) as Arc<dyn StreamPersist>);
        b.append_rows(
            &[
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
            &clock,
        )
        .unwrap();
        let before = b.snapshot();
        assert_eq!(b.seal_now().unwrap(), 2);
        assert!(b.is_empty(), "sealed rows left the hot basket");
        assert_eq!(b.stats().snapshot().1, 2, "sealing counts as outflow");
        let sealed = sink.sealed.lock();
        assert_eq!(sealed.len(), 1);
        // O(width) clean path: the sealed snapshot *shares* the basket's
        // column storage — no row-wise re-encode happened
        for name in before.names() {
            assert!(
                sealed[0]
                    .column(name)
                    .unwrap()
                    .shares_data(before.column(name).unwrap()),
                "column {name} was copied, not shared"
            );
        }
    }

    #[test]
    fn threshold_crossing_seals_automatically() {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), true);
        let sink = Arc::new(MockSink::default());
        sink.threshold.store(3, Ordering::Relaxed);
        b.set_persist(Arc::clone(&sink) as Arc<dyn StreamPersist>);
        for i in 0..5 {
            b.append_rows(&[vec![Value::Int(i), Value::Int(i)]], &clock)
                .unwrap();
        }
        assert_eq!(sink.sealed.lock().len(), 1, "one threshold crossing");
        assert_eq!(b.len(), 2, "post-seal tail stays hot");
    }

    #[test]
    fn seal_on_transient_basket_is_an_error() {
        let b = Basket::new("B", &schema(), true);
        assert!(matches!(b.seal_now(), Err(EngineError::Config(_))));
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let a = Basket::new("a", &schema(), false);
        let b = Basket::new("b", &schema(), false);
        assert!(b.id() > a.id());
    }

    #[test]
    fn concurrent_appends() {
        let clock = std::sync::Arc::new(VirtualClock::new());
        let b = Basket::new("B", &schema(), true);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let b = Arc::clone(&b);
                let clock = Arc::clone(&clock);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        b.append_rows(&[vec![Value::Int(t), Value::Int(i)]], clock.as_ref())
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.len(), 1000);
    }
}
