//! Factories — stateful continuous-query execution units (paper §3.3).
//!
//! A factory wraps (part of) a query plan. Its execution state survives
//! between calls; each call (`fire`) snapshots the involved baskets,
//! evaluates the plan over the snapshots and applies the effects —
//! Algorithm 1 of the paper, restructured so query execution happens
//! *outside* the basket locks:
//!
//! 1. **snapshot under lock** — O(width) copy-on-write clones of every
//!    involved basket, plus their delete-generation counters;
//! 2. **execute unlocked** — other factories and receptors proceed
//!    concurrently;
//! 3. **reacquire and apply** — if no conflicting delete intervened
//!    (generation check), consumption positions are still valid and the
//!    effects apply as-is; otherwise fall back to re-executing under the
//!    held locks (the original whole-firing-locked Algorithm 1).
//!
//! The scheduler treats factories as Petri-net transitions: `ready()` is
//! the firing condition.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

use dcsql::ast::Stmt;
use dctrace::now_micros;
use dcsql::exec::{execute_script, Effects, QueryContext};
use dcsql::SqlError;
use monet::catalog::Catalog;
use monet::prelude::*;
use parking_lot::Mutex;

use crate::analyze::analyze;
use crate::basket::Basket;
use crate::clock::Clock;
use crate::error::{EngineError, Result};
use crate::varstore::VarStore;

/// Outcome of one firing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FireReport {
    /// Tuples removed from input baskets.
    pub consumed: usize,
    /// Tuples appended to output baskets / result channels / tables.
    pub produced: usize,
    /// Wall-clock execution time of this firing, in microseconds.
    pub elapsed_micros: u64,
    /// Time spent holding basket locks, in microseconds (contention
    /// telemetry; ≤ `elapsed_micros`, and far below it when the
    /// short-lock protocol is winning).
    pub lock_micros: u64,
    /// Rows the plan actually pulled through the firing context (snapshot
    /// and catalog scans alike, on every execution path — compiled,
    /// interpreter, and interpreter fallback); delta statements count
    /// only the appended rows they processed.
    pub rows_scanned: u64,
    /// Rows the plan emitted (result rows + insert rows).
    pub rows_out: u64,
    /// Plan compile time, µs — a *gauge*, not a per-firing cost: every
    /// firing reports the factory's one-time compile time, and stats
    /// absorb it by assignment (a query that never compiled reports 0).
    pub plan_micros: u64,
    /// Appended rows processed incrementally by delta-capable statements
    /// this firing (0 when the firing ran full re-executions only).
    pub delta_rows: u64,
    /// Delta-capable statements that fell back to full re-execution this
    /// firing (bootstrap, generation bump, variable poisoning, errors).
    pub full_reexecutes: u64,
    /// Heap bytes held by this factory's delta state plus the shared
    /// arrangements it touched — a *gauge* like `plan_micros`.
    pub arrangement_bytes: u64,
}

/// Which execution path a [`QueryFactory`] fires.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// The compiled [`dcsql::plan::PhysicalPlan`]: pruned snapshots,
    /// selection-vector filters, gather-at-projection.
    #[default]
    Compiled,
    /// The legacy AST interpreter with full-width snapshots — kept as
    /// the equivalence baseline (and the `fig6_pruning` comparison).
    Interpreted,
}

/// A Petri-net transition over baskets.
pub trait Factory: Send {
    fn name(&self) -> &str;

    /// Input places: the baskets whose contents trigger this factory.
    fn inputs(&self) -> &[Arc<Basket>];

    /// Output places (baskets this factory appends to).
    fn outputs(&self) -> &[Arc<Basket>];

    /// The Petri-net firing condition. Default: every input basket holds at
    /// least [`Factory::min_input`] tuples.
    fn ready(&self) -> bool {
        !self.inputs().is_empty()
            && self
                .inputs()
                .iter()
                .all(|b| b.len() >= self.min_input())
    }

    /// Minimum tuples per input before firing — the batch-processing
    /// threshold `T` of the micro-benchmarks.
    fn min_input(&self) -> usize {
        1
    }

    /// Execute one firing. Must be a no-op returning a default report if
    /// inputs vanished between `ready()` and `fire()`.
    fn fire(&mut self) -> Result<FireReport>;
}

/// How a query factory applies basket-expression consumption.
#[derive(Clone)]
pub enum ConsumeMode {
    /// Delete consumed tuples immediately after execution (separate-baskets
    /// and default behaviour — Algorithm 1).
    Apply,
    /// Record consumption into a shared ledger; an unlocker factory applies
    /// the union later (shared-baskets strategy, §4.2).
    Defer(Arc<PendingDeletes>),
}

impl std::fmt::Debug for ConsumeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsumeMode::Apply => f.write_str("Apply"),
            ConsumeMode::Defer(_) => f.write_str("Defer"),
        }
    }
}

/// Deferred-deletion ledger shared between a group of factories and their
/// unlocker. Positions stay valid as long as no deletes run on the basket
/// between recording and applying (appends are safe — they never shift
/// existing rows).
#[derive(Debug, Default)]
pub struct PendingDeletes {
    map: Mutex<HashMap<String, SelVec>>,
}

impl PendingDeletes {
    pub fn new() -> Arc<Self> {
        Arc::new(PendingDeletes::default())
    }

    /// Union `sel` into the pending set for `basket`.
    pub fn record(&self, basket: &str, sel: &SelVec) {
        let mut map = self.map.lock();
        match map.get_mut(basket) {
            Some(existing) => *existing = existing.union(sel),
            None => {
                map.insert(basket.to_string(), sel.clone());
            }
        }
    }

    /// Take everything recorded so far.
    pub fn take(&self) -> HashMap<String, SelVec> {
        std::mem::take(&mut self.map.lock())
    }

    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

/// Snapshot-based [`QueryContext`] for one firing.
struct FiringContext<'a> {
    snapshots: &'a HashMap<String, Relation>,
    catalog: &'a Catalog,
    vars: &'a VarStore,
    now: i64,
    /// Rows handed to the executor, counted at the pull boundary — so
    /// interpreter-fallback statements and catalog-table scans are
    /// accounted exactly like compiled ones, and the delta executor can
    /// subtract the prefix it skipped.
    scans: AtomicU64,
}

impl<'a> FiringContext<'a> {
    fn new(
        snapshots: &'a HashMap<String, Relation>,
        catalog: &'a Catalog,
        vars: &'a VarStore,
        now: i64,
    ) -> Self {
        FiringContext {
            snapshots,
            catalog,
            vars,
            now,
            scans: AtomicU64::new(0),
        }
    }

    fn rows_scanned(&self) -> u64 {
        self.scans.load(AtomicOrdering::Relaxed)
    }
}

impl QueryContext for FiringContext<'_> {
    fn relation(&self, name: &str) -> dcsql::Result<Relation> {
        let rel = if let Some(r) = self.snapshots.get(name) {
            r.clone()
        } else {
            match self.catalog.get(name) {
                Ok(t) => t.read().expect("catalog lock").clone(),
                Err(_) => return Err(SqlError::Unknown(name.to_string())),
            }
        };
        self.scans
            .fetch_add(rel.len() as u64, AtomicOrdering::Relaxed);
        Ok(rel)
    }

    fn get_var(&self, name: &str) -> Option<Value> {
        self.vars.get(name)
    }

    fn now(&self) -> i64 {
        self.now
    }

    fn scan_counter(&self) -> Option<&AtomicU64> {
        Some(&self.scans)
    }
}

/// A factory executing a SQL script (the common case: one continuous
/// query, possibly a WITH-split or multiple statements).
pub struct QueryFactory {
    name: String,
    stmts: Vec<Stmt>,
    /// Compiled once at registration; fired forever.
    plan: dcsql::plan::PhysicalPlan,
    plan_mode: PlanMode,
    /// Baskets that gate firing (the consumed baskets, unless overridden
    /// by `trigger_on`).
    inputs: Vec<Arc<Basket>>,
    /// Baskets consumed by basket expressions — the only baskets whose
    /// delete generation can invalidate this factory's recorded
    /// consumption positions.
    consumed_inputs: Vec<Arc<Basket>>,
    /// Baskets read non-consumingly (snapshotted, but don't gate firing).
    reads: Vec<Arc<Basket>>,
    /// Baskets inserted into.
    outputs: Vec<Arc<Basket>>,
    catalog: Arc<Catalog>,
    vars: Arc<VarStore>,
    clock: Arc<dyn Clock>,
    min_input: usize,
    consume: ConsumeMode,
    /// Channel receiving bare-SELECT results (the emitter side).
    result_tx: Option<crossbeam::channel::Sender<Relation>>,
    /// Telemetry probe (fire-phase histograms, tuple latency, the flight
    /// recorder); absent when telemetry is off.
    probe: Option<Arc<dctrace::FireProbe>>,
    /// Carried delta-execution state (join pair lists, group
    /// accumulators), committed only after a firing's effects applied.
    delta_state: dcsql::plan::PlanDeltaState,
    /// Engine-wide shared arrangements; `None` keeps delta execution
    /// working with private per-statement indexes.
    arrangements: Option<Arc<dcsql::plan::ArrangementRegistry>>,
    /// `(len, delete_gen)` of each `reads` basket at the start of the
    /// last completed firing. Readiness mark for *read-only* standing
    /// queries (no consumed inputs, no trigger): such a factory is ready
    /// exactly when a read basket changed, so schedulers re-fire it on
    /// new data without spinning on unchanged inputs.
    read_marks: Option<Vec<(usize, u64)>>,
}

impl QueryFactory {
    /// Build a query factory. `resolve` maps table names to baskets; names
    /// that don't resolve are treated as catalog tables.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        stmts: Vec<Stmt>,
        resolve: &dyn Fn(&str) -> Option<Arc<Basket>>,
        catalog: Arc<Catalog>,
        vars: Arc<VarStore>,
        clock: Arc<dyn Clock>,
        consume: ConsumeMode,
        trigger_on: Option<Vec<Arc<Basket>>>,
    ) -> Result<Self> {
        let shape = analyze(&stmts);
        let mut inputs = Vec::new();
        for name in &shape.consumed {
            match resolve(name) {
                Some(b) => inputs.push(b),
                None => {
                    // a consumed name that is a catalog table is a config
                    // error: persistent tables are not consumable
                    if catalog.contains(name) {
                        return Err(EngineError::Config(format!(
                            "basket expression over persistent table {name}"
                        )));
                    }
                    return Err(EngineError::Unknown(name.clone()));
                }
            }
        }
        let mut reads = Vec::new();
        for name in &shape.read {
            if let Some(b) = resolve(name) {
                reads.push(b);
            } else if !catalog.contains(name) {
                return Err(EngineError::Unknown(name.clone()));
            }
        }
        let mut outputs = Vec::new();
        for name in &shape.inserted {
            if let Some(b) = resolve(name) {
                outputs.push(b);
            } else if !catalog.contains(name) {
                return Err(EngineError::Unknown(name.clone()));
            }
        }
        let consumed_inputs = inputs.clone();
        let inputs = trigger_on.unwrap_or(inputs);
        let plan = dcsql::plan::PhysicalPlan::compile(&stmts);
        Ok(QueryFactory {
            name: name.into(),
            stmts,
            plan,
            plan_mode: PlanMode::default(),
            inputs,
            consumed_inputs,
            reads,
            outputs,
            catalog,
            vars,
            clock,
            min_input: 1,
            consume,
            result_tx: None,
            probe: None,
            delta_state: dcsql::plan::PlanDeltaState::default(),
            arrangements: None,
            read_marks: None,
        })
    }

    /// Batch threshold: fire only once every input holds ≥ `n` tuples.
    pub fn with_min_input(mut self, n: usize) -> Self {
        self.min_input = n.max(1);
        self
    }

    /// Select the execution path (default: the compiled plan).
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// Attach the telemetry probe (fire-phase histograms and events).
    pub fn with_probe(mut self, probe: Option<Arc<dctrace::FireProbe>>) -> Self {
        self.probe = probe;
        self
    }

    /// Share the engine's arrangement registry so delta-capable joins
    /// reuse one `(basket, key)` index across standing queries.
    pub fn with_arrangements(
        mut self,
        registry: Option<Arc<dcsql::plan::ArrangementRegistry>>,
    ) -> Self {
        self.arrangements = registry;
        self
    }

    /// Live delta-execution footprint in bytes (EXPLAIN introspection).
    pub fn delta_state_bytes(&self) -> u64 {
        self.delta_state.bytes() as u64
    }

    /// Whether a variable read permanently disabled delta execution.
    pub fn delta_poisoned(&self) -> bool {
        self.delta_state.is_poisoned()
    }

    /// The compiled plan (EXPLAIN introspection).
    pub fn plan(&self) -> &dcsql::plan::PhysicalPlan {
        &self.plan
    }

    /// Snapshot one scanned basket for a firing: pruned to the plan's
    /// column requirements on the compiled path, full-width on the
    /// interpreter path.
    fn snapshot_for_fire(
        &self,
        basket: &Basket,
        guard: &mut crate::basket::BasketInner,
    ) -> Relation {
        match self.plan_mode {
            PlanMode::Compiled => guard.live_snapshot_cols(self.plan.wanted_for(basket.name())),
            PlanMode::Interpreted => guard.live_snapshot(),
        }
    }

    /// Run the script over the firing snapshots on the configured path.
    /// On the compiled path with delta-capable statements this runs the
    /// standing-query executor: `spans` carries the delete generation of
    /// every scanned basket (the append-only premise check) and the
    /// returned state is committed by the caller only after the firing's
    /// effects applied.
    #[allow(clippy::type_complexity)]
    fn run_script(
        &self,
        ctx: &FiringContext<'_>,
        spans: &HashMap<String, u64>,
    ) -> dcsql::Result<(
        Effects,
        Option<(dcsql::plan::DeltaOutcome, dcsql::plan::PlanDeltaState)>,
    )> {
        match self.plan_mode {
            PlanMode::Compiled if self.plan.delta_count() > 0 => {
                let (effects, outcome, state) = self.plan.execute_standing(
                    ctx,
                    spans,
                    &self.delta_state,
                    self.arrangements.as_deref(),
                )?;
                Ok((effects, Some((outcome, state))))
            }
            PlanMode::Compiled => Ok((self.plan.execute(ctx)?, None)),
            PlanMode::Interpreted => Ok((execute_script(&self.stmts, ctx)?, None)),
        }
    }

    /// Attach a result channel; bare SELECT results are sent there batch
    /// by batch (an emitter drains the other end).
    pub fn result_channel(&mut self) -> crossbeam::channel::Receiver<Relation> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.result_tx = Some(tx);
        rx
    }

    /// All baskets this firing must lock, in id order, deduplicated.
    fn involved(&self) -> Vec<Arc<Basket>> {
        let mut v: Vec<Arc<Basket>> = self
            .inputs
            .iter()
            .chain(self.consumed_inputs.iter())
            .chain(self.reads.iter())
            .chain(self.outputs.iter())
            .cloned()
            .collect();
        v.sort_by_key(|b| b.id());
        v.dedup_by_key(|b| b.id());
        v
    }

    /// Apply the executor's effects under the held basket guards.
    fn apply_effects(
        &self,
        mut effects: Effects,
        baskets: &HashMap<String, (Arc<Basket>, usize)>,
        guards: &mut [parking_lot::MutexGuard<'_, crate::basket::BasketInner>],
    ) -> Result<FireReport> {
        let mut consumed = 0usize;
        let mut produced = 0usize;

        // deletions (basket-expression consumption). The executor unions
        // selections per basket (`merge_consumed`), so each basket appears
        // at most once — crucial, since every selection is positioned
        // against the same snapshot and chained deletes would shift later
        // positions.
        debug_assert!(
            {
                let names: Vec<&String> = effects.consumed.iter().map(|(n, _)| n).collect();
                names.iter().collect::<std::collections::HashSet<_>>().len() == names.len()
            },
            "executor must union consumption per basket"
        );
        for (name, sel) in std::mem::take(&mut effects.consumed) {
            match &self.consume {
                ConsumeMode::Apply => {
                    if let Some((basket, gi)) = baskets.get(&name) {
                        basket.delete_sel_locked(&mut guards[*gi], &sel)?;
                        consumed += sel.len();
                    }
                }
                ConsumeMode::Defer(pending) => {
                    pending.record(&name, &sel);
                    consumed += sel.len();
                }
            }
        }

        // inserts
        for (table, columns, rows) in effects.inserts {
            let rows = match &columns {
                Some(cols) => remap_columns(rows, cols)?,
                None => rows,
            };
            produced += rows.len();
            if let Some((basket, gi)) = baskets.get(&table) {
                basket.append_relation_locked(
                    &mut guards[*gi],
                    rows,
                    self.clock.as_ref(),
                )?;
            } else {
                let t = self.catalog.get(&table)?;
                let mut t = t.write().expect("catalog table lock");
                t.append_relation(&rows)?;
            }
        }

        // variables
        for (name, vtype) in effects.declares {
            // re-declare silently: continuous scripts run repeatedly
            let _ = self.vars.declare(&name, vtype);
        }
        for (name, value) in effects.var_updates {
            if !self.vars.is_declared(&name) {
                let vtype = value.value_type().unwrap_or(ValueType::Int);
                self.vars.declare(&name, vtype)?;
            }
            self.vars.set(&name, value)?;
        }

        // bare SELECT result
        if let Some(rel) = effects.result {
            if !rel.is_empty() {
                produced += rel.len();
                if let Some(tx) = &self.result_tx {
                    let _ = tx.send(rel);
                }
            }
        }
        Ok(FireReport {
            consumed,
            produced,
            ..FireReport::default()
        })
    }
}

/// Rename an insert batch to an explicit column list (positional payload,
/// named targets). The batch is renamed in place — no column data moves.
fn remap_columns(rows: Relation, cols: &[String]) -> Result<Relation> {
    if cols.len() != rows.width() {
        return Err(EngineError::Config(format!(
            "insert column list has {} names but select produced {} columns",
            cols.len(),
            rows.width()
        )));
    }
    let mut renamed = rows;
    renamed.rename_columns(cols.to_vec())?;
    Ok(renamed)
}

impl Factory for QueryFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> &[Arc<Basket>] {
        &self.inputs
    }

    fn outputs(&self) -> &[Arc<Basket>] {
        &self.outputs
    }

    fn min_input(&self) -> usize {
        self.min_input
    }

    fn ready(&self) -> bool {
        if !self.inputs.is_empty() {
            return self.inputs.iter().all(|b| b.len() >= self.min_input);
        }
        // Read-only standing query: fire when a read basket changed
        // since the last firing (or holds data and we never fired).
        match &self.read_marks {
            None => self.reads.iter().any(|b| !b.is_empty()),
            Some(marks) => self.reads.iter().zip(marks).any(|(b, &(len, gen))| {
                let g = b.lock();
                g.live_len() != len || g.delete_gen() != gen
            }),
        }
    }

    fn fire(&mut self) -> Result<FireReport> {
        let started = Instant::now();
        let involved = self.involved();
        // Mark the read baskets *before* snapshotting: anything appended
        // after the mark re-arms `ready()` even if this firing already
        // saw it — one redundant firing, never a missed one.
        let read_marks: Vec<(usize, u64)> = self
            .reads
            .iter()
            .map(|b| {
                let g = b.lock();
                (g.live_len(), g.delete_gen())
            })
            .collect();
        // Oldest pending ingest timestamp across the consumed baskets —
        // read before the snapshot so the end-to-end tuple latency spans
        // the whole firing. One relaxed load per basket; 0 when unset or
        // telemetry is off.
        let watermark = if self.probe.is_some() {
            self.consumed_inputs
                .iter()
                .filter_map(|b| b.probe())
                .map(|p| p.watermark())
                .filter(|&w| w != 0)
                .min()
                .unwrap_or(0)
        } else {
            0
        };
        // Pending trace mark of a sampled batch in one of the consumed
        // baskets — the firing that drains it owns its basket-dwell and
        // fire spans (first mark wins when several inputs are traced).
        let trace_mark = if self.probe.is_some() {
            self.consumed_inputs
                .iter()
                .filter_map(|b| b.probe())
                .find_map(|p| p.take_trace_mark())
        } else {
            None
        };
        if let Some(p) = &self.probe {
            p.note_fire_start();
        }

        // Phase 1 — snapshot under a short lock. Only the baskets the
        // script can actually *read* need snapshots (consumed + reads);
        // pure outputs are locked later, in the apply phase, so a
        // downstream consumer of our output is never serialized against
        // our snapshot. With copy-on-write columns each snapshot is
        // O(width); the delete generations (by basket id) pin the
        // live-row numbering the consumed snapshots were taken at.
        let mut scanned: Vec<Arc<Basket>> = self
            .consumed_inputs
            .iter()
            .chain(self.reads.iter())
            .cloned()
            .collect();
        scanned.sort_by_key(|b| b.id());
        scanned.dedup_by_key(|b| b.id());
        let scanned_ids: std::collections::HashSet<u64> =
            scanned.iter().map(|b| b.id()).collect();
        let lock_started = Instant::now();
        let mut guards: Vec<parking_lot::MutexGuard<'_, crate::basket::BasketInner>> =
            scanned.iter().map(|b| b.lock()).collect();
        let acquire_micros = lock_started.elapsed().as_micros() as u64;
        let snapshot_started = Instant::now();
        let mut snapshots: HashMap<String, Relation> = HashMap::new();
        let mut gens: HashMap<u64, u64> = HashMap::with_capacity(scanned.len());
        let mut spans: HashMap<String, u64> = HashMap::with_capacity(scanned.len());
        for (i, b) in scanned.iter().enumerate() {
            let snap = self.snapshot_for_fire(b, &mut guards[i]);
            snapshots.insert(b.name().to_string(), snap);
            gens.insert(b.id(), guards[i].delete_gen());
            spans.insert(b.name().to_string(), guards[i].delete_gen());
        }
        drop(guards);
        let snapshot_micros = snapshot_started.elapsed().as_micros() as u64;
        let mut lock_micros = acquire_micros + snapshot_micros;

        // Phase 2 — execute with no basket locks held: other factories,
        // receptors and emitters proceed concurrently. The compiled plan
        // walks selection vectors; the interpreter re-walks the AST.
        // Rows-scanned is counted at the context's pull boundary, so the
        // interpreter and interpreter-fallback statements are accounted
        // too, and delta statements subtract the prefix they skipped.
        let execute_started = Instant::now();
        let (effects, delta, mut rows_scanned) = {
            let ctx = FiringContext::new(&snapshots, &self.catalog, &self.vars, self.clock.now());
            let (effects, delta) = self.run_script(&ctx, &spans)?;
            let rows = ctx.rows_scanned();
            (effects, delta, rows)
        };
        let mut execute_micros = execute_started.elapsed().as_micros() as u64;

        // Phase 3 — reacquire and apply. Appends elsewhere are harmless
        // (they never renumber existing rows); a delete/drain/compaction
        // on a *consumed* basket shifts the live numbering our consumption
        // positions refer to, so on a generation mismatch fall back to
        // re-executing with every lock held (the original whole-firing-
        // locked Algorithm 1) — conservative, rare, and guaranteed
        // consistent. Only consumed baskets matter here: nothing positional
        // is ever applied to read-only or output baskets, so a downstream
        // consumer draining our output must not force a re-execution.
        let lock_started = Instant::now();
        let mut guards: Vec<parking_lot::MutexGuard<'_, crate::basket::BasketInner>> =
            involved.iter().map(|b| b.lock()).collect();
        let acquire_micros = acquire_micros + lock_started.elapsed().as_micros() as u64;
        let mut index: HashMap<String, (Arc<Basket>, usize)> = HashMap::new();
        for (i, b) in involved.iter().enumerate() {
            index.insert(b.name().to_string(), (Arc::clone(b), i));
        }
        let consumed_ids: std::collections::HashSet<u64> =
            self.consumed_inputs.iter().map(|b| b.id()).collect();
        let unchanged = involved
            .iter()
            .enumerate()
            .filter(|(_, b)| consumed_ids.contains(&b.id()))
            .all(|(i, b)| Some(&guards[i].delete_gen()) == gens.get(&b.id()));
        let (effects, delta) = if unchanged {
            (effects, delta)
        } else {
            if let Some(p) = &self.probe {
                p.note_reexecute();
            }
            let reexec_started = Instant::now();
            let mut snapshots: HashMap<String, Relation> = HashMap::new();
            let mut spans: HashMap<String, u64> = HashMap::new();
            for (i, b) in involved.iter().enumerate() {
                let snap = self.snapshot_for_fire(b, &mut guards[i]);
                // `involved` also carries pure output baskets — those are
                // snapshotted for the context but are not plan input (the
                // scan counter only sees what the plan pulls), and their
                // generations don't gate delta execution
                if scanned_ids.contains(&b.id()) {
                    spans.insert(b.name().to_string(), guards[i].delete_gen());
                }
                snapshots.insert(b.name().to_string(), snap);
            }
            let ctx = FiringContext::new(&snapshots, &self.catalog, &self.vars, self.clock.now());
            let (effects, delta) = self.run_script(&ctx, &spans)?;
            rows_scanned = ctx.rows_scanned();
            execute_micros += reexec_started.elapsed().as_micros() as u64;
            (effects, delta)
        };
        let apply_started = Instant::now();
        let mut report = self.apply_effects(effects, &index, &mut guards)?;
        let apply_micros = apply_started.elapsed().as_micros() as u64;
        // Commit the delta state only now: if applying the effects had
        // failed, the old state would replay the same appended rows on the
        // next firing instead of silently dropping them (exactly-once).
        if let Some((outcome, state)) = delta {
            self.delta_state = state;
            report.delta_rows = outcome.delta_rows;
            report.full_reexecutes = outcome.full_reexecutes;
            report.arrangement_bytes = outcome.state_bytes + outcome.arrangement_bytes;
            if let Some(p) = &self.probe {
                for reason in &outcome.fallbacks {
                    p.note_delta_fallback(reason);
                }
            }
        }
        self.read_marks = Some(read_marks);
        lock_micros += lock_started.elapsed().as_micros() as u64;
        report.elapsed_micros = started.elapsed().as_micros() as u64;
        report.lock_micros = lock_micros;
        report.rows_scanned = rows_scanned;
        // today the plan's output cardinality coincides with `produced`
        // (everything the plan emits is applied); the field is the
        // plan-boundary counter, so paths that apply less than they
        // compute (e.g. future delta re-execution) report them apart
        report.rows_out = report.produced as u64;
        report.plan_micros = self.plan.compile_micros;
        if let Some(p) = &self.probe {
            p.note_fire_end(
                acquire_micros,
                snapshot_micros,
                execute_micros,
                apply_micros,
                report.elapsed_micros,
                watermark,
                report.rows_scanned,
                report.rows_out,
            );
            if let Some((batch, stamp)) = trace_mark {
                let fire_start = now_micros().saturating_sub(report.elapsed_micros);
                p.note_trace(batch, fire_start.saturating_sub(stamp), report.elapsed_micros);
            }
        }
        Ok(report)
    }
}

/// A factory defined by a closure — used for lockers/unlockers, replica-
/// tors, Linear Road's bespoke operators, and tests. The closure receives
/// no arguments: it captures the baskets it needs and does its own locking.
pub struct ClosureFactory {
    name: String,
    inputs: Vec<Arc<Basket>>,
    outputs: Vec<Arc<Basket>>,
    min_input: usize,
    ready_fn: Option<Box<dyn Fn() -> bool + Send>>,
    fire_fn: Box<dyn FnMut() -> Result<FireReport> + Send>,
}

impl ClosureFactory {
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<Arc<Basket>>,
        outputs: Vec<Arc<Basket>>,
        fire_fn: impl FnMut() -> Result<FireReport> + Send + 'static,
    ) -> Self {
        ClosureFactory {
            name: name.into(),
            inputs,
            outputs,
            min_input: 1,
            ready_fn: None,
            fire_fn: Box::new(fire_fn),
        }
    }

    pub fn with_min_input(mut self, n: usize) -> Self {
        self.min_input = n.max(1);
        self
    }

    /// Override the firing condition entirely.
    pub fn with_ready(mut self, f: impl Fn() -> bool + Send + 'static) -> Self {
        self.ready_fn = Some(Box::new(f));
        self
    }
}

impl Factory for ClosureFactory {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> &[Arc<Basket>] {
        &self.inputs
    }

    fn outputs(&self) -> &[Arc<Basket>] {
        &self.outputs
    }

    fn min_input(&self) -> usize {
        self.min_input
    }

    fn ready(&self) -> bool {
        match &self.ready_fn {
            Some(f) => f(),
            None => {
                !self.inputs.is_empty()
                    && self.inputs.iter().all(|b| b.len() >= self.min_input)
            }
        }
    }

    fn fire(&mut self) -> Result<FireReport> {
        let started = Instant::now();
        let mut report = (self.fire_fn)()?;
        report.elapsed_micros = started.elapsed().as_micros() as u64;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use dcsql::parse_statements;

    #[allow(clippy::type_complexity)]
    fn setup() -> (
        Arc<VirtualClock>,
        Arc<Catalog>,
        Arc<VarStore>,
        Arc<Basket>,
        Arc<Basket>,
    ) {
        let clock = Arc::new(VirtualClock::starting_at(1_000));
        let catalog = Arc::new(Catalog::new());
        let vars = Arc::new(VarStore::new());
        let schema = Schema::from_pairs(&[("id", ValueType::Int), ("payload", ValueType::Int)]);
        let input = Basket::new("S", &schema, false);
        let output = Basket::new("OUT", &schema, false);
        (clock, catalog, vars, input, output)
    }

    fn mkq(
        sql: &str,
        input: &Arc<Basket>,
        output: &Arc<Basket>,
        clock: Arc<VirtualClock>,
        catalog: Arc<Catalog>,
        vars: Arc<VarStore>,
        consume: ConsumeMode,
    ) -> QueryFactory {
        let stmts = parse_statements(sql).unwrap();
        let i2 = Arc::clone(input);
        let o2 = Arc::clone(output);
        QueryFactory::new(
            "q",
            stmts,
            &move |n: &str| match n {
                "S" => Some(Arc::clone(&i2)),
                "OUT" => Some(Arc::clone(&o2)),
                _ => None,
            },
            catalog,
            vars,
            clock,
            consume,
            None,
        )
        .unwrap()
    }

    #[test]
    fn algorithm1_select_into_output() {
        let (clock, catalog, vars, input, output) = setup();
        input
            .append_rows(
                &[
                    vec![Value::Int(1), Value::Int(50)],
                    vec![Value::Int(2), Value::Int(150)],
                    vec![Value::Int(3), Value::Int(250)],
                ],
                clock.as_ref(),
            )
            .unwrap();
        let mut q = mkq(
            "insert into OUT select * from [select * from S where payload > 100] as Z",
            &input,
            &output,
            clock,
            catalog,
            vars,
            ConsumeMode::Apply,
        );
        assert!(q.ready());
        let report = q.fire().unwrap();
        assert_eq!(report.consumed, 2);
        assert_eq!(report.produced, 2);
        assert_eq!(input.len(), 1, "only the non-matching tuple remains");
        assert_eq!(output.len(), 2);
        // the unmatched tuple is still buffered, so the factory stays ready
        assert!(q.ready());
    }

    #[test]
    fn consume_all_referenced_empties_basket() {
        let (clock, catalog, vars, input, output) = setup();
        input
            .append_rows(&[vec![Value::Int(1), Value::Int(5)]], clock.as_ref())
            .unwrap();
        let mut q = mkq(
            "insert into OUT select * from [select * from S] as Z where Z.payload > 100",
            &input,
            &output,
            clock,
            catalog,
            vars,
            ConsumeMode::Apply,
        );
        let report = q.fire().unwrap();
        assert_eq!(report.consumed, 1, "referenced despite failing outer filter");
        assert_eq!(report.produced, 0);
        assert!(input.is_empty());
        assert!(output.is_empty());
    }

    #[test]
    fn deferred_consumption_records_only() {
        let (clock, catalog, vars, input, output) = setup();
        input
            .append_rows(&[vec![Value::Int(1), Value::Int(5)]], clock.as_ref())
            .unwrap();
        let pending = PendingDeletes::new();
        let mut q = mkq(
            "insert into OUT select * from [select * from S] as Z",
            &input,
            &output,
            clock,
            catalog,
            vars,
            ConsumeMode::Defer(Arc::clone(&pending)),
        );
        q.fire().unwrap();
        assert_eq!(input.len(), 1, "tuple still in basket");
        let taken = pending.take();
        assert_eq!(taken["S"].as_slice(), &[0]);
        assert!(pending.is_empty());
    }

    #[test]
    fn result_channel_receives_select_output() {
        let (clock, catalog, vars, input, output) = setup();
        input
            .append_rows(&[vec![Value::Int(7), Value::Int(70)]], clock.as_ref())
            .unwrap();
        let mut q = mkq(
            "select * from [select * from S] as Z",
            &input,
            &output,
            clock,
            catalog,
            vars,
            ConsumeMode::Apply,
        );
        let rx = q.result_channel();
        q.fire().unwrap();
        let batch = rx.try_recv().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.column("id").unwrap().ints().unwrap(), &[7]);
    }

    #[test]
    fn min_input_batch_threshold() {
        let (clock, catalog, vars, input, output) = setup();
        let mut q = mkq(
            "insert into OUT select * from [select * from S] as Z",
            &input,
            &output,
            Arc::clone(&clock),
            catalog,
            vars,
            ConsumeMode::Apply,
        )
        .with_min_input(3);
        input
            .append_rows(&[vec![Value::Int(1), Value::Int(1)]], clock.as_ref())
            .unwrap();
        assert!(!q.ready());
        input
            .append_rows(
                &[
                    vec![Value::Int(2), Value::Int(2)],
                    vec![Value::Int(3), Value::Int(3)],
                ],
                clock.as_ref(),
            )
            .unwrap();
        assert!(q.ready());
        let r = q.fire().unwrap();
        assert_eq!(r.consumed, 3);
    }

    #[test]
    fn inserts_into_catalog_tables() {
        let (clock, catalog, vars, input, output) = setup();
        catalog
            .create_table(
                "hist",
                &Schema::from_pairs(&[("id", ValueType::Int), ("payload", ValueType::Int)]),
            )
            .unwrap();
        input
            .append_rows(&[vec![Value::Int(4), Value::Int(40)]], clock.as_ref())
            .unwrap();
        let mut q = mkq(
            "insert into hist select * from [select * from S] as Z",
            &input,
            &output,
            clock,
            catalog.clone(),
            vars,
            ConsumeMode::Apply,
        );
        q.fire().unwrap();
        let t = catalog.get("hist").unwrap();
        assert_eq!(t.read().unwrap().len(), 1);
    }

    #[test]
    fn variables_update_via_set() {
        let (clock, catalog, vars, input, output) = setup();
        input
            .append_rows(
                &[
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(20)],
                ],
                clock.as_ref(),
            )
            .unwrap();
        vars.declare("cnt", ValueType::Int).unwrap();
        vars.set("cnt", Value::Int(0)).unwrap();
        let mut q = mkq(
            "with Z as [select payload from S] begin \
             set cnt = cnt + (select count(*) from Z); end",
            &input,
            &output,
            Arc::clone(&clock),
            catalog,
            Arc::clone(&vars),
            ConsumeMode::Apply,
        );
        q.fire().unwrap();
        assert_eq!(vars.get("cnt"), Some(Value::Int(2)));
        assert!(input.is_empty(), "WITH source consumed");
    }

    #[test]
    fn closure_factory_ready_and_fire() {
        let (clock, _, _, input, output) = setup();
        input
            .append_rows(&[vec![Value::Int(1), Value::Int(1)]], clock.as_ref())
            .unwrap();
        let i = Arc::clone(&input);
        let o = Arc::clone(&output);
        let c2 = Arc::clone(&clock);
        let mut f = ClosureFactory::new(
            "copier",
            vec![Arc::clone(&input)],
            vec![Arc::clone(&output)],
            move || {
                let batch = i.drain();
                let n = batch.len();
                o.append_relation(batch, c2.as_ref())?;
                Ok(FireReport {
                    consumed: n,
                    produced: n,
                    ..FireReport::default()
                })
            },
        );
        assert!(f.ready());
        let r = f.fire().unwrap();
        assert_eq!(r.consumed, 1);
        assert!(!f.ready());
        assert_eq!(output.len(), 1);

        let always = ClosureFactory::new("gen", vec![], vec![], || Ok(FireReport::default()))
            .with_ready(|| true);
        assert!(always.ready());
    }

    #[test]
    fn compiled_and_interpreted_paths_agree() {
        for mode in [PlanMode::Compiled, PlanMode::Interpreted] {
            let (clock, catalog, vars, input, output) = setup();
            input
                .append_rows(
                    &[
                        vec![Value::Int(1), Value::Int(50)],
                        vec![Value::Int(2), Value::Int(150)],
                        vec![Value::Int(3), Value::Int(250)],
                    ],
                    clock.as_ref(),
                )
                .unwrap();
            let mut q = mkq(
                "insert into OUT select id, payload from \
                 [select id, payload from S where payload > 100] as Z where Z.id < 3",
                &input,
                &output,
                clock,
                catalog,
                vars,
                ConsumeMode::Apply,
            )
            .with_plan_mode(mode);
            let r = q.fire().unwrap();
            assert_eq!(r.consumed, 2, "inner filter defines consumption ({mode:?})");
            assert_eq!(r.produced, 1, "outer filter bounds output ({mode:?})");
            assert_eq!(r.rows_scanned, 3);
            assert_eq!(r.rows_out, 1);
            assert_eq!(input.len(), 1);
            assert_eq!(output.len(), 1);
            assert_eq!(
                output.snapshot().column("id").unwrap().ints().unwrap(),
                &[2]
            );
        }
    }

    #[test]
    fn plan_micros_is_a_persistent_gauge() {
        let (clock, catalog, vars, input, output) = setup();
        input
            .append_rows(&[vec![Value::Int(1), Value::Int(5)]], clock.as_ref())
            .unwrap();
        let mut q = mkq(
            "insert into OUT select * from [select * from S] as Z",
            &input,
            &output,
            Arc::clone(&clock),
            catalog,
            vars,
            ConsumeMode::Apply,
        );
        let first = q.fire().unwrap();
        // compile time can legitimately round to 0µs; the invariant is
        // that every firing reports the same gauge value, so stats that
        // absorb by assignment never lose it
        assert_eq!(first.plan_micros, q.plan().compile_micros);
        input
            .append_rows(&[vec![Value::Int(2), Value::Int(6)]], clock.as_ref())
            .unwrap();
        let second = q.fire().unwrap();
        assert_eq!(second.plan_micros, q.plan().compile_micros);
    }

    #[test]
    fn unknown_table_rejected_at_build() {
        let (clock, catalog, vars, input, output) = setup();
        let stmts = parse_statements("select * from [select * from NOPE] as Z").unwrap();
        let i2 = Arc::clone(&input);
        let o2 = Arc::clone(&output);
        let err = QueryFactory::new(
            "q",
            stmts,
            &move |n: &str| match n {
                "S" => Some(Arc::clone(&i2)),
                "OUT" => Some(Arc::clone(&o2)),
                _ => None,
            },
            catalog,
            vars,
            clock,
            ConsumeMode::Apply,
            None,
        );
        assert!(err.is_err());
    }
}
