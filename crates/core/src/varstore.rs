//! Global variable store for `DECLARE` / `SET`.
//!
//! The paper's incremental-aggregation idiom keeps running totals in global
//! variables updated by continuous queries; this is their home.

use std::collections::HashMap;

use monet::prelude::*;
use parking_lot::RwLock;

use crate::error::{EngineError, Result};

/// Thread-safe variable registry.
#[derive(Debug, Default)]
pub struct VarStore {
    vars: RwLock<HashMap<String, (ValueType, Value)>>,
}

impl VarStore {
    pub fn new() -> Self {
        VarStore::default()
    }

    /// Declare a variable with its type; initializes to NULL. Re-declaring
    /// is an error.
    pub fn declare(&self, name: &str, vtype: ValueType) -> Result<()> {
        let mut vars = self.vars.write();
        if vars.contains_key(name) {
            return Err(EngineError::Duplicate(format!("variable {name}")));
        }
        vars.insert(name.to_string(), (vtype, Value::Null));
        Ok(())
    }

    /// Assign; the value must match the declared type (NULL always fits,
    /// Int coerces into Double/Ts slots).
    pub fn set(&self, name: &str, value: Value) -> Result<()> {
        let mut vars = self.vars.write();
        let slot = vars
            .get_mut(name)
            .ok_or_else(|| EngineError::Unknown(format!("variable {name}")))?;
        let coerced = coerce(slot.0, value)?;
        slot.1 = coerced;
        Ok(())
    }

    /// Current value, if declared.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.vars.read().get(name).map(|(_, v)| v.clone())
    }

    pub fn is_declared(&self, name: &str) -> bool {
        self.vars.read().contains_key(name)
    }

    /// Names in sorted order (diagnostics).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.vars.read().keys().cloned().collect();
        v.sort();
        v
    }
}

fn coerce(vtype: ValueType, value: Value) -> Result<Value> {
    if value.is_null() {
        return Ok(Value::Null);
    }
    let found = value.value_type().expect("non-null");
    let ok = match (vtype, &value) {
        _ if found == vtype => true,
        (ValueType::Double, Value::Int(_)) => {
            return Ok(Value::Double(value.as_double().expect("int")))
        }
        (ValueType::Ts, Value::Int(i)) => return Ok(Value::Ts(*i)),
        (ValueType::Int, Value::Ts(t)) => return Ok(Value::Int(*t)),
        _ => false,
    };
    if ok {
        Ok(value)
    } else {
        Err(EngineError::Config(format!(
            "variable type mismatch: declared {vtype}, got {found}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_set_get() {
        let vs = VarStore::new();
        vs.declare("cnt", ValueType::Int).unwrap();
        assert_eq!(vs.get("cnt"), Some(Value::Null));
        vs.set("cnt", Value::Int(5)).unwrap();
        assert_eq!(vs.get("cnt"), Some(Value::Int(5)));
        assert!(vs.is_declared("cnt"));
        assert!(!vs.is_declared("other"));
        assert_eq!(vs.get("other"), None);
    }

    #[test]
    fn redeclare_and_unknown_set_fail() {
        let vs = VarStore::new();
        vs.declare("x", ValueType::Int).unwrap();
        assert!(vs.declare("x", ValueType::Int).is_err());
        assert!(vs.set("nope", Value::Int(1)).is_err());
    }

    #[test]
    fn type_coercions() {
        let vs = VarStore::new();
        vs.declare("d", ValueType::Double).unwrap();
        vs.set("d", Value::Int(3)).unwrap();
        assert_eq!(vs.get("d"), Some(Value::Double(3.0)));
        vs.declare("t", ValueType::Ts).unwrap();
        vs.set("t", Value::Int(99)).unwrap();
        assert_eq!(vs.get("t"), Some(Value::Ts(99)));
        vs.declare("i", ValueType::Int).unwrap();
        assert!(vs.set("i", Value::Str("x".into())).is_err());
        vs.set("i", Value::Null).unwrap();
        assert_eq!(vs.get("i"), Some(Value::Null));
    }

    #[test]
    fn names_sorted() {
        let vs = VarStore::new();
        vs.declare("b", ValueType::Int).unwrap();
        vs.declare("a", ValueType::Int).unwrap();
        assert_eq!(vs.names(), vec!["a".to_string(), "b".to_string()]);
    }
}
