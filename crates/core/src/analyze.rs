//! Static analysis of continuous-query scripts.
//!
//! Before a query becomes a factory the engine must know which baskets it
//! *consumes* (scans inside basket expressions — these are the factory's
//! Petri-net input places), which it merely *reads* (plain table scans),
//! and which it *inserts into* (output places). The walk here mirrors the
//! executor's lineage rules exactly.

use std::collections::{BTreeMap, BTreeSet};

use dcsql::ast::{Expr, FromItem, SelectStmt, Stmt};
use dcsql::plan::{column_requirements, ScanRequirement};

/// The basket/table footprint of a script.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryShape {
    /// Tables scanned inside basket expressions (consumed → inputs).
    pub consumed: BTreeSet<String>,
    /// Tables scanned outside basket expressions (non-consuming reads).
    pub read: BTreeSet<String>,
    /// INSERT targets (outputs).
    pub inserted: BTreeSet<String>,
    /// Exact per-table column footprint (plan-level pruning): which
    /// columns each scan can touch, whether it consumes, and whether
    /// consumption needs rid lineage. Snapshot providers use this to
    /// hand out O(touched-columns) snapshots.
    pub requirements: BTreeMap<String, ScanRequirement>,
}

impl QueryShape {
    /// The pruned column set for one table; `None` = snapshot everything.
    pub fn wanted_for(&self, table: &str) -> Option<&BTreeSet<String>> {
        self.requirements
            .get(table)
            .and_then(|r| r.columns.as_cols())
    }
}

/// Analyze a parsed script.
pub fn analyze(stmts: &[Stmt]) -> QueryShape {
    let mut shape = QueryShape::default();
    let mut bound = BTreeSet::new();
    for stmt in stmts {
        walk_stmt(stmt, &mut shape, &mut bound);
    }
    shape.requirements = column_requirements(stmts);
    shape
}

fn walk_stmt(stmt: &Stmt, shape: &mut QueryShape, bound: &mut BTreeSet<String>) {
    match stmt {
        Stmt::Select(s) => walk_select(s, false, shape, bound),
        Stmt::Insert { table, source, .. } => {
            shape.inserted.insert(table.clone());
            walk_select(source, false, shape, bound);
        }
        Stmt::With {
            binding,
            source,
            body,
        } => {
            // the WITH source is a basket expression: consuming
            walk_select(source, true, shape, bound);
            let added = bound.insert(binding.clone());
            for s in body {
                walk_stmt(s, shape, bound);
            }
            if added {
                bound.remove(binding);
            }
        }
        Stmt::Set { expr, .. } => walk_expr(expr, shape, bound),
        Stmt::Declare { .. } | Stmt::Create { .. } => {}
    }
}

fn walk_select(
    s: &SelectStmt,
    track: bool,
    shape: &mut QueryShape,
    bound: &mut BTreeSet<String>,
) {
    for item in &s.from {
        match item {
            FromItem::Table { name, .. } => {
                if bound.contains(name) {
                    continue; // WITH binding, not a real table
                }
                if track {
                    shape.consumed.insert(name.clone());
                } else {
                    shape.read.insert(name.clone());
                }
            }
            FromItem::Basket { query, .. } => walk_select(query, true, shape, bound),
            FromItem::Subquery { query, .. } => walk_select(query, false, shape, bound),
        }
    }
    let exprs = s
        .projection
        .iter()
        .filter_map(|p| match p {
            dcsql::ast::SelectItem::Expr { expr, .. } => Some(expr),
            _ => None,
        })
        .chain(s.where_clause.iter())
        .chain(s.group_by.iter())
        .chain(s.having.iter())
        .chain(s.order_by.iter().map(|(e, _)| e));
    for e in exprs {
        walk_expr(e, shape, bound);
    }
    if let Some((_, rhs)) = &s.union {
        walk_select(rhs, track, shape, bound);
    }
}

fn walk_expr(e: &Expr, shape: &mut QueryShape, bound: &mut BTreeSet<String>) {
    match e {
        Expr::ScalarSubquery(sub) => walk_select(sub, false, shape, bound),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => walk_expr(expr, shape, bound),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, shape, bound);
            walk_expr(right, shape, bound);
        }
        Expr::Between { expr, lo, hi, .. } => {
            walk_expr(expr, shape, bound);
            walk_expr(lo, shape, bound);
            walk_expr(hi, shape, bound);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, shape, bound);
            for i in list {
                walk_expr(i, shape, bound);
            }
        }
        Expr::FuncCall { args, .. } => {
            for a in args {
                walk_expr(a, shape, bound);
            }
        }
        Expr::Column { .. } | Expr::Literal(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcsql::parse_statements;

    fn shape_of(src: &str) -> QueryShape {
        analyze(&parse_statements(src).unwrap())
    }

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simple_basket_query() {
        let s = shape_of("select * from [select * from R] as S where S.a > 1");
        assert_eq!(s.consumed, set(&["R"]));
        assert!(s.read.is_empty());
        assert!(s.inserted.is_empty());
    }

    #[test]
    fn insert_with_basket_source() {
        let s = shape_of("insert into outliers select * from [select top 20 from X] as b");
        assert_eq!(s.consumed, set(&["X"]));
        assert_eq!(s.inserted, set(&["outliers"]));
    }

    #[test]
    fn plain_reads_are_not_consumed() {
        let s = shape_of("select * from R, [select * from S] as T where R.id = T.id");
        assert_eq!(s.read, set(&["R"]));
        assert_eq!(s.consumed, set(&["S"]));
    }

    #[test]
    fn with_binding_shadows() {
        let s = shape_of(
            "with A as [select * from X] begin \
             insert into Y select * from A where A.p > 1; \
             insert into Z select * from A; end",
        );
        assert_eq!(s.consumed, set(&["X"]));
        assert_eq!(s.inserted, set(&["Y", "Z"]));
        assert!(s.read.is_empty(), "A is a binding, not a table");
    }

    #[test]
    fn join_inside_basket_consumes_both() {
        let s = shape_of("select A.* from [select * from X, Y where X.id = Y.id] as A");
        assert_eq!(s.consumed, set(&["X", "Y"]));
    }

    #[test]
    fn scalar_subquery_reads() {
        let s = shape_of("select * from [select * from X where X.t < (select max(t) from HB)] as A");
        assert_eq!(s.consumed, set(&["X"]));
        assert_eq!(s.read, set(&["HB"]));
    }

    #[test]
    fn union_propagates_tracking() {
        let s = shape_of("select * from [select * from X union all select * from Y] as A");
        assert_eq!(s.consumed, set(&["X", "Y"]));
    }

    #[test]
    fn nested_subquery_not_tracked() {
        let s = shape_of("select * from (select * from R) as T");
        assert_eq!(s.read, set(&["R"]));
        assert!(s.consumed.is_empty());
    }
}
