//! The DataCell scheduler (paper §4.1).
//!
//! "The scheduler runs an infinite loop and at every iteration it checks
//! which of the existing transitions can be processed by analyzing their
//! inputs." Two execution modes are provided:
//!
//! * a deterministic, single-threaded loop (rounds over all factories) —
//!   used by the benchmarks and tests for reproducibility;
//! * a thread-per-factory mode matching the paper's "every single
//!   component is an independent thread" architecture.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use petri::{Marking, Net, PlaceId};

use crate::basket::Basket;
use crate::error::Result;
use crate::factory::{Factory, FireReport};

/// Cumulative per-factory counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FactoryStats {
    pub firings: u64,
    pub consumed: u64,
    pub produced: u64,
    pub busy_micros: u64,
    /// Time spent holding basket locks, out of `busy_micros` — the
    /// contention signal: a factory with `lock_micros` close to
    /// `busy_micros` is serializing its peers on shared baskets.
    pub lock_micros: u64,
    /// Snapshot rows the plan executed over, lifetime.
    pub rows_scanned: u64,
    /// Rows the plan emitted (results + inserts), lifetime.
    pub rows_out: u64,
    /// One-time plan compile cost, µs — a persistent gauge: every firing
    /// reports it and absorption assigns rather than sums, so the value
    /// survives however many stats snapshots are taken (0 only for a
    /// factory that never compiled a plan, e.g. closure factories).
    pub plan_micros: u64,
    /// Appended rows processed incrementally by delta statements,
    /// lifetime.
    pub delta_rows: u64,
    /// Delta-capable statement executions that fell back to full
    /// re-execution, lifetime.
    pub full_reexecutes: u64,
    /// Delta state + shared arrangement bytes as of the last firing — a
    /// gauge like `plan_micros` (absorbed by assignment).
    pub arrangement_bytes: u64,
}

impl FactoryStats {
    fn absorb(&mut self, r: &FireReport) {
        self.firings += 1;
        self.consumed += r.consumed as u64;
        self.produced += r.produced as u64;
        self.busy_micros += r.elapsed_micros;
        self.lock_micros += r.lock_micros;
        self.rows_scanned += r.rows_scanned;
        self.rows_out += r.rows_out;
        self.plan_micros = r.plan_micros;
        self.delta_rows += r.delta_rows;
        self.full_reexecutes += r.full_reexecutes;
        self.arrangement_bytes = r.arrangement_bytes;
    }
}

/// Outcome of one scheduling round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundReport {
    pub fired: usize,
    pub consumed: usize,
    pub produced: usize,
}

/// Single-threaded Petri-net scheduler.
#[derive(Default)]
pub struct Scheduler {
    factories: Vec<Box<dyn Factory>>,
    stats: Vec<FactoryStats>,
}

impl Scheduler {
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Register a factory (a Petri-net transition).
    pub fn add(&mut self, factory: Box<dyn Factory>) -> usize {
        self.factories.push(factory);
        self.stats.push(FactoryStats::default());
        self.factories.len() - 1
    }

    pub fn len(&self) -> usize {
        self.factories.len()
    }

    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }

    pub fn factory_names(&self) -> Vec<String> {
        self.factories.iter().map(|f| f.name().to_string()).collect()
    }

    /// Dissolve into the factory list (thread-per-factory deployment).
    pub fn into_factories(self) -> Vec<Box<dyn Factory>> {
        self.factories
    }

    pub fn stats(&self) -> &[FactoryStats] {
        &self.stats
    }

    pub fn stats_of(&self, name: &str) -> Option<&FactoryStats> {
        self.factories
            .iter()
            .position(|f| f.name() == name)
            .map(|i| &self.stats[i])
    }

    /// One pass over all factories: fire each ready one once.
    pub fn run_round(&mut self) -> Result<RoundReport> {
        let mut report = RoundReport::default();
        for (i, f) in self.factories.iter_mut().enumerate() {
            if f.ready() {
                let r = f.fire()?;
                self.stats[i].absorb(&r);
                report.fired += 1;
                report.consumed += r.consumed;
                report.produced += r.produced;
            }
        }
        Ok(report)
    }

    /// Loop until a full round fires nothing (quiescence) or `max_rounds`
    /// is hit. Returns the number of rounds executed.
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> Result<usize> {
        for round in 0..max_rounds {
            let r = self.run_round()?;
            if r.fired == 0 {
                return Ok(round);
            }
        }
        Ok(max_rounds)
    }

    /// Mirror the factory network into a Petri net for structural analysis
    /// (places = baskets, transitions = factories, arcs = input/output
    /// relationships; token counts = basket lengths).
    pub fn to_petri(&self) -> (Net, Marking, Vec<(String, PlaceId)>) {
        let mut builder = Net::builder();
        let mut places: Vec<(u64, String, PlaceId)> = Vec::new();
        let place_of = |builder: &mut petri::net::NetBuilder,
                            places: &mut Vec<(u64, String, PlaceId)>,
                            b: &Arc<Basket>| {
            if let Some((_, _, p)) = places.iter().find(|(id, _, _)| *id == b.id()) {
                return *p;
            }
            let p = builder.place(b.name());
            places.push((b.id(), b.name().to_string(), p));
            p
        };
        let mut transitions = Vec::new();
        for f in &self.factories {
            let inputs: Vec<(PlaceId, u64)> = f
                .inputs()
                .iter()
                .map(|b| (place_of(&mut builder, &mut places, b), 1))
                .collect();
            let outputs: Vec<(PlaceId, u64)> = f
                .outputs()
                .iter()
                .map(|b| (place_of(&mut builder, &mut places, b), 1))
                .collect();
            transitions.push((f.name().to_string(), inputs, outputs));
        }
        for (name, inputs, outputs) in transitions {
            builder
                .transition(name, inputs, outputs)
                .expect("net construction from a valid factory graph");
        }
        let net = builder.build();
        let mut marking = Marking::empty(&net);
        let mut names = Vec::new();
        for (id, name, p) in &places {
            let basket = self
                .factories
                .iter()
                .flat_map(|f| f.inputs().iter().chain(f.outputs().iter()))
                .find(|b| b.id() == *id)
                .expect("place derived from factory baskets");
            marking.set_tokens(*p, basket.len() as u64);
            names.push((name.clone(), *p));
        }
        (net, marking, names)
    }
}

/// Handle to a running thread-per-factory deployment.
///
/// Factories can be added dynamically while the deployment runs — the
/// `datacelld` server registers continuous queries at any point in the
/// server's lifetime and hands each new factory to the live scheduler.
pub struct ThreadedScheduler {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<FactoryStats>>,
    idle_backoff: Duration,
}

impl ThreadedScheduler {
    /// An empty deployment; factories are added with [`ThreadedScheduler::add`].
    pub fn new() -> Self {
        Self::with_backoff(Duration::from_micros(50))
    }

    pub fn with_backoff(idle_backoff: Duration) -> Self {
        ThreadedScheduler {
            stop: Arc::new(AtomicBool::new(false)),
            handles: Vec::new(),
            idle_backoff,
        }
    }

    /// Spawn one thread per factory. Each thread loops: fire when ready,
    /// otherwise back off briefly — the multi-threaded architecture of
    /// §3.3 ("every single component is an independent thread").
    pub fn spawn(factories: Vec<Box<dyn Factory>>) -> Self {
        Self::spawn_with_backoff(factories, Duration::from_micros(50))
    }

    pub fn spawn_with_backoff(factories: Vec<Box<dyn Factory>>, idle_backoff: Duration) -> Self {
        let mut sched = Self::with_backoff(idle_backoff);
        for f in factories {
            sched.add(f);
        }
        sched
    }

    /// Add a factory to the running deployment (its thread starts at once).
    pub fn add(&mut self, factory: Box<dyn Factory>) {
        self.add_shared(factory);
    }

    /// Add a factory and get a live handle to its cumulative stats — the
    /// server's `STATS` command reads these while the threads run.
    pub fn add_shared(&mut self, mut f: Box<dyn Factory>) -> Arc<Mutex<FactoryStats>> {
        let shared = Arc::new(Mutex::new(FactoryStats::default()));
        let live = Arc::clone(&shared);
        let stop = Arc::clone(&self.stop);
        let idle_backoff = self.idle_backoff;
        self.handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if f.ready() {
                    match f.fire() {
                        Ok(r) => {
                            shared.lock().absorb(&r);
                            // a firing that neither consumed nor produced
                            // left only tokens it will never take (e.g. a
                            // selective inner predicate's residue) — back
                            // off instead of spinning on them
                            if r.consumed == 0 && r.produced == 0 {
                                std::thread::sleep(idle_backoff);
                            }
                        }
                        Err(_) => break,
                    }
                } else {
                    std::thread::sleep(idle_backoff);
                }
            }
            // drain after stop so no input is stranded — but only while
            // firings make progress: a factory whose predicate leaves
            // rows behind stays `ready()` forever (tokens it will never
            // consume), and an unbounded drain would wedge shutdown.
            // (Per-thread drains were never coordinated: with an empty
            // input, `ready()` exits the loop immediately whether or not
            // an upstream drain is about to deliver — this break only
            // adds the no-progress case to the same best-effort policy.)
            while f.ready() {
                match f.fire() {
                    Ok(r) => {
                        shared.lock().absorb(&r);
                        if r.consumed == 0 && r.produced == 0 {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            let final_stats = shared.lock().clone();
            final_stats
        }));
        live
    }

    /// The shared stop flag (e.g. to wire into a server-wide shutdown).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Number of factory threads spawned so far.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Signal shutdown and collect per-factory stats.
    pub fn stop(self) -> Vec<FactoryStats> {
        self.stop.store(true, Ordering::Release);
        // give threads a moment to observe the flag
        std::thread::sleep(self.idle_backoff);
        self.handles
            .into_iter()
            .map(|h| h.join().expect("factory thread panicked"))
            .collect()
    }
}

impl Default for ThreadedScheduler {
    fn default() -> Self {
        ThreadedScheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use monet::prelude::*;

    fn copier(
        name: &str,
        from: &Arc<Basket>,
        to: &Arc<Basket>,
        clock: &Arc<VirtualClock>,
    ) -> Box<dyn Factory> {
        let f = Arc::clone(from);
        let t = Arc::clone(to);
        let c = Arc::clone(clock);
        Box::new(crate::factory::ClosureFactory::new(
            name,
            vec![Arc::clone(from)],
            vec![Arc::clone(to)],
            move || {
                let batch = f.drain();
                let n = batch.len();
                t.append_relation(batch, c.as_ref())?;
                Ok(FireReport {
                    consumed: n,
                    produced: n,
                    ..FireReport::default()
                })
            },
        ))
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[("x", ValueType::Int)])
    }

    #[test]
    fn pipeline_drains_to_quiescence() {
        let clock = Arc::new(VirtualClock::new());
        let a = Basket::new("a", &schema(), false);
        let b = Basket::new("b", &schema(), false);
        let c = Basket::new("c", &schema(), false);
        a.append_rows(&[vec![Value::Int(1)], vec![Value::Int(2)]], clock.as_ref())
            .unwrap();

        let mut s = Scheduler::new();
        s.add(copier("ab", &a, &b, &clock));
        s.add(copier("bc", &b, &c, &clock));
        let rounds = s.run_until_quiescent(100).unwrap();
        assert!(rounds <= 3, "two hops should settle in ≤2 firing rounds + 1 empty");
        assert_eq!(c.len(), 2);
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(s.stats_of("ab").unwrap().firings, 1);
        assert_eq!(s.stats_of("ab").unwrap().consumed, 2);
    }

    #[test]
    fn round_fires_each_ready_factory_once() {
        let clock = Arc::new(VirtualClock::new());
        let a = Basket::new("a1", &schema(), false);
        let b = Basket::new("b1", &schema(), false);
        a.append_rows(&[vec![Value::Int(1)]], clock.as_ref()).unwrap();
        let mut s = Scheduler::new();
        s.add(copier("ab", &a, &b, &clock));
        let r = s.run_round().unwrap();
        assert_eq!(r.fired, 1);
        let r = s.run_round().unwrap();
        assert_eq!(r.fired, 0);
    }

    #[test]
    fn petri_mirror_matches_topology() {
        let clock = Arc::new(VirtualClock::new());
        let a = Basket::new("pa", &schema(), false);
        let b = Basket::new("pb", &schema(), false);
        a.append_rows(&[vec![Value::Int(5)]], clock.as_ref()).unwrap();
        let mut s = Scheduler::new();
        s.add(copier("t", &a, &b, &clock));
        let (net, marking, names) = s.to_petri();
        assert_eq!(net.num_places(), 2);
        assert_eq!(net.num_transitions(), 1);
        let pa = names.iter().find(|(n, _)| n == "pa").unwrap().1;
        let pb = names.iter().find(|(n, _)| n == "pb").unwrap().1;
        assert_eq!(marking.tokens(pa), 1);
        assert_eq!(marking.tokens(pb), 0);
        // analysis: this net deadlocks once the token reaches pb
        assert!(petri::analysis::has_deadlock(&net, &marking, 100).is_some());
    }

    #[test]
    fn threaded_scheduler_processes_and_stops() {
        let clock = Arc::new(VirtualClock::new());
        let a = Basket::new("ta", &schema(), false);
        let b = Basket::new("tb", &schema(), false);
        let factories = vec![copier("ab", &a, &b, &clock)];
        let ts = ThreadedScheduler::spawn(factories);
        for i in 0..100 {
            a.append_rows(&[vec![Value::Int(i)]], clock.as_ref()).unwrap();
        }
        // wait for the pipeline to drain
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while b.len() < 100 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = ts.stop();
        assert_eq!(b.len(), 100);
        assert!(stats[0].firings >= 1);
        assert_eq!(stats[0].consumed, 100);
    }
}
