//! Durability hooks — the seam between the in-memory engine and the
//! `dcstore` storage crate.
//!
//! The engine stays storage-agnostic: a basket created with persistence
//! holds an `Arc<dyn StreamPersist>` and calls it at exactly two points,
//! both under the basket lock:
//!
//! * [`StreamPersist::log_append`] — *before* an accepted batch becomes
//!   visible. An error rejects the append, so a batch is never
//!   acknowledged to a producer unless it is on the log first.
//! * [`StreamPersist::seal`] — when the resident rows cross the
//!   [`StreamPersist::seal_threshold`], or on an explicit
//!   `FLUSH STREAM`. The snapshot handed over is the basket's live
//!   copy-on-write column chain (O(width) Arc shares on a clean
//!   basket — the sink serializes columns, never rows).
//!
//! [`DurabilityProvider`] is the factory side: the server installs one
//! on the engine (`DataCell::set_durability`) and `CREATE STREAM ...
//! PERSIST` asks it for a per-stream sink.

use std::sync::Arc;

use monet::prelude::*;

use crate::error::Result;

/// Durability counters for one stream — surfaced through `STATS`
/// (`wal_bytes=`, `segments=`) and the cluster aggregation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Current write-ahead-log size in bytes (the unsealed tail).
    pub wal_bytes: u64,
    /// Live immutable segment files.
    pub segments: u64,
    /// Rows moved into segments over the stream's lifetime.
    pub sealed_rows: u64,
}

/// Per-stream durability sink. Implementations must be cheap to call
/// under the basket lock (buffered writes; fsync policy decides the
/// rest).
pub trait StreamPersist: Send + Sync {
    /// Log an accepted batch (full basket schema, arrival timestamps
    /// included) ahead of the in-memory append. Called under the basket
    /// lock; an error aborts the append, so acknowledged data is always
    /// logged.
    ///
    /// `uniform_ts` is `Some(ts)` when the engine stamped the whole
    /// batch with the single arrival time `ts` (the common receptor
    /// path) — the sink may then log the user columns plus one
    /// timestamp instead of a per-row timestamp column. `None` means
    /// the batch carried its own timestamps and must be logged in full.
    fn log_append(&self, batch: &Relation, uniform_ts: Option<i64>) -> Result<()>;

    /// Seal a snapshot of the basket's live rows into an immutable
    /// segment and truncate the WAL it covers. Called under the basket
    /// lock. An empty snapshot writes no segment but still truncates
    /// the WAL (its rows were all consumed).
    fn seal(&self, snapshot: &Relation) -> Result<()>;

    /// Resident-row count above which the basket auto-seals after an
    /// append (0 = seal only on explicit `FLUSH STREAM`).
    fn seal_threshold(&self) -> usize;

    /// Current durability counters.
    fn stats(&self) -> PersistStats;
}

/// Factory for per-stream sinks — implemented by `dcstore::Store` and
/// installed on the engine by the server when `--data-dir` is set.
pub trait DurabilityProvider: Send + Sync {
    /// Open (creating durable state for) the named stream. `user_schema`
    /// excludes the automatic timestamp column; the sink derives the
    /// full on-disk schema itself.
    fn open_stream(&self, name: &str, user_schema: &Schema) -> Result<Arc<dyn StreamPersist>>;
}
