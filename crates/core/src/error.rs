//! Engine-level errors.

use std::fmt;

/// Errors raised by the DataCell engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Unknown basket/table/query name.
    Unknown(String),
    /// Name already registered.
    Duplicate(String),
    /// Kernel error.
    Kernel(monet::error::MonetError),
    /// SQL front-end or executor error.
    Sql(dcsql::SqlError),
    /// Basket is disabled (stream blocked).
    Disabled(String),
    /// Configuration / wiring error.
    Config(String),
    /// Network adapter failure.
    Io(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Unknown(n) => write!(f, "unknown name: {n}"),
            EngineError::Duplicate(n) => write!(f, "duplicate name: {n}"),
            EngineError::Kernel(e) => write!(f, "kernel: {e}"),
            EngineError::Sql(e) => write!(f, "sql: {e}"),
            EngineError::Disabled(n) => write!(f, "basket {n} is disabled"),
            EngineError::Config(m) => write!(f, "configuration: {m}"),
            EngineError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<monet::error::MonetError> for EngineError {
    fn from(e: monet::error::MonetError) -> Self {
        EngineError::Kernel(e)
    }
}

impl From<dcsql::SqlError> for EngineError {
    fn from(e: dcsql::SqlError) -> Self {
        EngineError::Sql(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e.to_string())
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = monet::error::MonetError::NotFound("x".into()).into();
        assert_eq!(e.to_string(), "kernel: not found: x");
        let e: EngineError = dcsql::SqlError::Unknown("q".into()).into();
        assert_eq!(e.to_string(), "sql: unknown name: q");
        assert_eq!(
            EngineError::Disabled("b".into()).to_string(),
            "basket b is disabled"
        );
    }
}
