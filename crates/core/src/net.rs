//! Text wire protocol for receptors/emitters.
//!
//! "The interchange format between the various components is purposely
//! kept simple using a textual interface for exchanging flat relational
//! tuples" (§3.1). Tuples travel as `|`-separated lines; NULL is the empty
//! field.

use std::io::{BufRead, Write};

use monet::prelude::*;

use crate::error::{EngineError, Result};

/// Escape one string field onto a wire buffer.
fn escape_str_into(out: &mut String, s: &str) {
    if s.is_empty() {
        // an empty field means NULL on the wire, so the empty string
        // needs an explicit escape to stay distinguishable
        out.push_str("\\e");
        return;
    }
    // escape the separator and newlines
    for c in s.chars() {
        match c {
            '|' => out.push_str("\\p"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\\' => out.push_str("\\\\"),
            other => out.push(other),
        }
    }
}

/// Render one tuple onto an existing buffer (no trailing newline).
pub fn format_row_into(out: &mut String, row: &[Value]) {
    use std::fmt::Write as _;
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.push('|');
        }
        match v {
            Value::Null => {}
            Value::Str(s) => escape_str_into(out, s),
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
}

/// Render one tuple as a wire line (no trailing newline).
pub fn format_row(row: &[Value]) -> String {
    let mut out = String::new();
    format_row_into(&mut out, row);
    out
}

/// Render a whole batch into `out`, one line per tuple, reading the
/// columns directly — no per-row `Vec<Value>` materialization and no
/// per-row `String`. This is the hot path of every text emitter.
pub fn encode_batch_text(out: &mut String, rel: &Relation) {
    use std::fmt::Write as _;
    for i in 0..rel.len() {
        for c in 0..rel.width() {
            if c > 0 {
                out.push('|');
            }
            let col = rel.col_at(c);
            if !col.is_valid(i) {
                continue; // NULL is the empty field
            }
            match col.data() {
                ColumnData::Bool(v) => {
                    let _ = write!(out, "{}", v[i]);
                }
                ColumnData::Int(v) | ColumnData::Ts(v) => {
                    let _ = write!(out, "{}", v[i]);
                }
                ColumnData::Double(v) => {
                    let _ = write!(out, "{}", v[i]);
                }
                ColumnData::Str(v) => escape_str_into(out, &v[i]),
            }
        }
        out.push('\n');
    }
}

/// Parse one wire line against a schema (user columns only).
pub fn parse_row(line: &str, schema: &Schema) -> Result<Vec<Value>> {
    let fields: Vec<&str> = line.split('|').collect();
    if fields.len() != schema.width() {
        return Err(EngineError::Io(format!(
            "wire row has {} fields, schema expects {}",
            fields.len(),
            schema.width()
        )));
    }
    let mut row = Vec::with_capacity(fields.len());
    for (raw, field) in fields.iter().zip(schema.fields()) {
        if raw.is_empty() {
            row.push(Value::Null);
            continue;
        }
        let v = match field.vtype {
            ValueType::Int => Value::Int(raw.parse().map_err(|_| bad(raw, "int"))?),
            ValueType::Ts => Value::Ts(raw.parse().map_err(|_| bad(raw, "timestamp"))?),
            ValueType::Double => Value::Double(raw.parse().map_err(|_| bad(raw, "double"))?),
            ValueType::Bool => Value::Bool(raw.parse().map_err(|_| bad(raw, "bool"))?),
            ValueType::Str => Value::Str(unescape(raw)),
        };
        row.push(v);
    }
    Ok(row)
}

fn bad(raw: &str, ty: &str) -> EngineError {
    EngineError::Io(format!("cannot parse {raw:?} as {ty}"))
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('p') => out.push('|'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('e') => {} // explicit empty string
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Write a batch of rows to a writer, one line per tuple. The whole
/// batch is rendered into a single buffer and written with one call.
pub fn write_batch<W: Write>(w: &mut W, rel: &Relation) -> Result<usize> {
    let mut buf = String::new();
    encode_batch_text(&mut buf, rel);
    w.write_all(buf.as_bytes())?;
    w.flush()?;
    Ok(rel.len())
}

/// Read up to `max` lines into rows (blocking until EOF or `max`).
pub fn read_rows<R: BufRead>(r: &mut R, schema: &Schema, max: usize) -> Result<Vec<Vec<Value>>> {
    let mut rows = Vec::new();
    let mut line = String::new();
    while rows.len() < max {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        rows.push(parse_row(trimmed, schema)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("ts", ValueType::Ts),
            ("id", ValueType::Int),
            ("score", ValueType::Double),
            ("name", ValueType::Str),
            ("ok", ValueType::Bool),
        ])
    }

    #[test]
    fn roundtrip_all_types() {
        let row = vec![
            Value::Ts(123456),
            Value::Int(-9),
            Value::Double(2.5),
            Value::Str("hello world".into()),
            Value::Bool(true),
        ];
        let line = format_row(&row);
        let back = parse_row(&line, &schema()).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn null_roundtrip() {
        let row = vec![
            Value::Null,
            Value::Int(1),
            Value::Null,
            Value::Null,
            Value::Null,
        ];
        let line = format_row(&row);
        assert_eq!(line, "|1|||");
        let back = parse_row(&line, &schema()).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn string_escaping() {
        let row = vec![
            Value::Ts(0),
            Value::Int(0),
            Value::Double(0.0),
            Value::Str("a|b\\c\nd\re".into()),
            Value::Bool(false),
        ];
        let line = format_row(&row);
        assert!(!line.contains('\n') && !line.contains('\r'));
        let back = parse_row(&line, &schema()).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn empty_string_distinct_from_null() {
        let row = vec![
            Value::Ts(1),
            Value::Int(2),
            Value::Double(3.0),
            Value::Str(String::new()),
            Value::Bool(true),
        ];
        let line = format_row(&row);
        assert_eq!(line, "1|2|3|\\e|true");
        let back = parse_row(&line, &schema()).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn arity_and_type_errors() {
        assert!(parse_row("1|2", &schema()).is_err());
        assert!(parse_row("x|1|1.0|s|true", &schema()).is_err());
    }

    #[test]
    fn columnar_text_encoding_matches_row_path() {
        let mut rel = Relation::from_columns(vec![
            ("a".into(), Column::from_ints(vec![1, -7])),
            (
                "s".into(),
                Column::from_strs(vec!["a|b\nc".into(), String::new()]),
            ),
            ("d".into(), Column::from_doubles(vec![2.5, -0.75])),
            ("b".into(), Column::from_bools(vec![true, false])),
        ])
        .unwrap();
        rel.append_row(&[Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
        let mut columnar = String::new();
        encode_batch_text(&mut columnar, &rel);
        let mut by_rows = String::new();
        for row in rel.iter_rows() {
            by_rows.push_str(&format_row(&row));
            by_rows.push('\n');
        }
        assert_eq!(columnar, by_rows);
    }

    #[test]
    fn batch_io() {
        let rel = Relation::from_columns(vec![
            ("a".into(), Column::from_ints(vec![1, 2])),
            ("b".into(), Column::from_strs(vec!["x".into(), "y".into()])),
        ])
        .unwrap();
        let mut buf = Vec::new();
        write_batch(&mut buf, &rel).unwrap();
        let s = Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Str)]);
        let mut reader = std::io::BufReader::new(&buf[..]);
        let rows = read_rows(&mut reader, &s, 100).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec![Value::Int(2), Value::Str("y".into())]);
    }
}
