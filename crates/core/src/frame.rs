//! Columnar wire frames — the batch-first data-plane codec.
//!
//! The paper keeps the *interchange* format textual (§3.1) but everything
//! inside the kernel is column-at-a-time: baskets are aligned BATs and
//! "tuple reconstruction is positional and free" (§2.1). This module
//! closes the gap on the wire: a [`WireFormat::Binary`] frame ships a
//! whole [`Relation`] column-at-a-time so receptors can append it with a
//! handful of `memcpy`s instead of a parse per field.
//!
//! ## Binary frame layout
//!
//! ```text
//! u8          version            (FRAME_VERSION = 1, FRAME_VERSION_TRACED = 2)
//! u32 LE      payload length     (bytes after this word)
//! payload:
//!   [v2 only] u64 LE batch id + u64 LE origin µs   (16-byte trace header)
//!   varint    column count       (must match the negotiated schema)
//!   varint    row count
//!   per column:
//!     u8      type tag           (0 bool, 1 int, 2 double, 3 str, 4 ts)
//!     u8      null flag          (1 = validity bitmap present)
//!     [nulls] ceil(rows/8) bytes (bit i set = row i is non-NULL, LSB first)
//!     values  bool: 1 byte/row; int/ts/double: 8 bytes LE/row;
//!             str: per row varint byte-length + UTF-8 bytes
//! ```
//!
//! Varints are unsigned LEB128. NULL slots still carry a (zero/empty)
//! payload value so decoding stays branch-light; the bitmap restores
//! them. Empty strings are distinguishable from NULL by construction —
//! no escape convention needed, unlike the text protocol.
//!
//! Frames are self-delimiting: [`decode_frame`] on a partial buffer
//! reports "incomplete" rather than failing, so socket loops with read
//! timeouts can accumulate bytes and drain complete frames as they land.

use std::io::{BufRead, Write};
use std::sync::{Arc, OnceLock};

use monet::bitset::Bitset;
use monet::prelude::*;

use crate::error::{EngineError, Result};
use crate::net;

/// Version byte leading every binary frame.
pub const FRAME_VERSION: u8 = 1;

/// Version byte of a frame carrying a trace header: the payload starts
/// with a 16-byte trace prefix (u64 LE batch id + u64 LE origin
/// timestamp in µs) before the usual column payload. Decoders that
/// understand only [`FRAME_VERSION`] reject these, so tracing is
/// version-gated — untraced frames are byte-identical to v1.
pub const FRAME_VERSION_TRACED: u8 = 2;

/// Bytes of frame header preceding the payload (version + u32 length).
const HEADER_LEN: usize = 5;

/// Bytes of the in-payload trace prefix on a v2 frame.
const TRACE_HEADER_LEN: usize = 16;

/// Upper bound on a frame payload (64 MiB). Decoders reject larger
/// declared lengths before allocating, bounding per-connection memory
/// against malicious or corrupt peers; encoders error instead of
/// producing a frame no receiver would accept. At 8 bytes/value that is
/// ~8M int tuples per frame — far above any sane batch.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// The data-plane encodings a receptor/emitter port can speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// `|`-separated text lines (§3.1) — the default, wire-compatible
    /// with every existing client.
    #[default]
    Text,
    /// Length-prefixed columnar binary frames (this module).
    Binary,
}

impl WireFormat {
    pub fn as_str(&self) -> &'static str {
        match self {
            WireFormat::Text => "text",
            WireFormat::Binary => "binary",
        }
    }

    /// A fresh codec for this format (owns its scratch buffers).
    pub fn new_codec(&self) -> Box<dyn FrameCodec> {
        match self {
            WireFormat::Text => Box::new(TextCodec::default()),
            WireFormat::Binary => Box::new(BinaryCodec),
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for WireFormat {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        if s.eq_ignore_ascii_case("text") {
            Ok(WireFormat::Text)
        } else if s.eq_ignore_ascii_case("binary") {
            Ok(WireFormat::Binary)
        } else {
            Err(format!("unknown wire format {s:?} (expected TEXT or BINARY)"))
        }
    }
}

// ---- varints ----------------------------------------------------------------

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one varint; `Ok(None)` when the buffer ends mid-varint.
fn get_varint(bytes: &[u8], pos: usize) -> Result<Option<(u64, usize)>> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut at = pos;
    loop {
        let Some(&b) = bytes.get(at) else {
            return Ok(None);
        };
        at += 1;
        if shift >= 64 {
            return Err(EngineError::Io("varint overflows u64".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(Some((v, at)));
        }
        shift += 7;
    }
}

// ---- type tags --------------------------------------------------------------

fn type_tag(t: ValueType) -> u8 {
    match t {
        ValueType::Bool => 0,
        ValueType::Int => 1,
        ValueType::Double => 2,
        ValueType::Str => 3,
        ValueType::Ts => 4,
    }
}

fn tag_type(b: u8) -> Result<ValueType> {
    Ok(match b {
        0 => ValueType::Bool,
        1 => ValueType::Int,
        2 => ValueType::Double,
        3 => ValueType::Str,
        4 => ValueType::Ts,
        other => return Err(EngineError::Io(format!("unknown frame type tag {other}"))),
    })
}

// ---- trace header -----------------------------------------------------------

/// The sampled-batch trace carried by a [`FRAME_VERSION_TRACED`] frame:
/// a cluster-unique batch id plus the origin timestamp (µs, on the
/// stamping process's monotonic clock) so every hop can report dwell
/// relative to where the batch entered the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    pub batch: u64,
    pub origin_micros: u64,
}

impl TraceHeader {
    fn write_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.batch.to_le_bytes());
        out.extend_from_slice(&self.origin_micros.to_le_bytes());
    }

    fn read_from(p: &[u8]) -> Result<TraceHeader> {
        if p.len() < TRACE_HEADER_LEN {
            return Err(EngineError::Io(format!(
                "traced frame payload of {} bytes is shorter than the {TRACE_HEADER_LEN}-byte trace header",
                p.len()
            )));
        }
        Ok(TraceHeader {
            batch: u64::from_le_bytes(p[..8].try_into().unwrap()),
            origin_micros: u64::from_le_bytes(p[8..16].try_into().unwrap()),
        })
    }
}

// ---- encoding ---------------------------------------------------------------

/// Exact encoded payload size of `rel` — computed before encoding so an
/// over-limit batch is rejected without allocating its serialization.
fn payload_len_of(rel: &Relation) -> usize {
    let rows = rel.len();
    let mut len = varint_len(rel.width() as u64) + varint_len(rows as u64);
    for c in 0..rel.width() {
        let col = rel.col_at(c);
        len += 2; // type tag + null flag
        if col.validity().is_some() {
            len += rows.div_ceil(8);
        }
        len += match col.data() {
            ColumnData::Bool(_) => rows,
            ColumnData::Int(_) | ColumnData::Ts(_) | ColumnData::Double(_) => rows * 8,
            ColumnData::Str(v) => v
                .iter()
                .map(|s| varint_len(s.len() as u64) + s.len())
                .sum(),
        };
    }
    len
}

/// Append one binary frame carrying `rel` to `out`. Errors (leaving
/// `out` unchanged) when the encoding would exceed [`MAX_FRAME_LEN`] —
/// split the batch instead of producing a frame no receiver accepts.
pub fn encode_frame(out: &mut Vec<u8>, rel: &Relation) -> Result<()> {
    encode_frame_traced(out, rel, None)
}

/// [`encode_frame`] with an optional trace header. `Some(trace)`
/// produces a [`FRAME_VERSION_TRACED`] frame whose payload leads with
/// the 16-byte trace prefix; `None` is byte-identical to a v1 frame.
pub fn encode_frame_traced(out: &mut Vec<u8>, rel: &Relation, trace: Option<&TraceHeader>) -> Result<()> {
    let body_len = payload_len_of(rel);
    let payload_len = body_len + if trace.is_some() { TRACE_HEADER_LEN } else { 0 };
    if payload_len > MAX_FRAME_LEN {
        return Err(frame_too_big(payload_len));
    }
    out.reserve(HEADER_LEN + payload_len);
    out.push(if trace.is_some() { FRAME_VERSION_TRACED } else { FRAME_VERSION });
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    let payload_start = out.len();
    if let Some(t) = trace {
        t.write_into(out);
    }

    let rows = rel.len();
    put_varint(out, rel.width() as u64);
    put_varint(out, rows as u64);
    for c in 0..rel.width() {
        let col = rel.col_at(c);
        out.push(type_tag(col.vtype()));
        match col.validity() {
            Some(mask) => {
                out.push(1);
                let mut acc = 0u8;
                for i in 0..rows {
                    if mask.get(i) {
                        acc |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        out.push(acc);
                        acc = 0;
                    }
                }
                if !rows.is_multiple_of(8) {
                    out.push(acc);
                }
            }
            None => out.push(0),
        }
        match col.data() {
            ColumnData::Bool(v) => out.extend(v.iter().map(|&b| b as u8)),
            ColumnData::Int(v) | ColumnData::Ts(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Double(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Str(v) => {
                for s in v {
                    put_varint(out, s.len() as u64);
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }
    debug_assert_eq!(
        out.len() - payload_start,
        payload_len,
        "payload_len_of must match the actual encoding"
    );
    Ok(())
}

/// Encode and write one frame; returns the tuple count.
pub fn write_frame<W: Write>(w: &mut W, rel: &Relation) -> Result<usize> {
    let mut buf = Vec::with_capacity(HEADER_LEN + 16 + rel.len() * rel.width() * 8);
    encode_frame(&mut buf, rel)?;
    w.write_all(&buf)?;
    w.flush()?;
    Ok(rel.len())
}

// ---- decoding ---------------------------------------------------------------

/// Try to decode one frame from the front of `bytes`.
///
/// * `Ok(Some((rel, consumed)))` — a complete frame; `consumed` bytes used.
/// * `Ok(None)` — the buffer holds only a partial frame (or is empty).
/// * `Err(_)` — corrupt stream (bad version/tag/UTF-8/lengths).
pub fn decode_frame(bytes: &[u8], schema: &Schema) -> Result<Option<(Relation, usize)>> {
    let Some((rel, total, _trace)) = decode_frame_traced(bytes, schema)? else {
        return Ok(None);
    };
    Ok(Some((rel, total)))
}

/// [`decode_frame`] additionally surfacing the trace header of a
/// [`FRAME_VERSION_TRACED`] frame (`None` for plain v1 frames).
pub fn decode_frame_traced(
    bytes: &[u8],
    schema: &Schema,
) -> Result<Option<(Relation, usize, Option<TraceHeader>)>> {
    let Some(total) = frame_len(bytes)? else {
        return Ok(None);
    };
    let payload = &bytes[HEADER_LEN..total];
    let trace = if bytes[0] == FRAME_VERSION_TRACED {
        Some(TraceHeader::read_from(payload)?)
    } else {
        None
    };
    let body = if trace.is_some() { &payload[TRACE_HEADER_LEN..] } else { payload };
    let rel = decode_payload(body, schema)?;
    Ok(Some((rel, total, trace)))
}

/// Total byte length (header + payload) of the frame at the front of
/// `bytes`, without decoding it.
///
/// * `Ok(Some(len))` — a complete frame of `len` bytes is buffered.
/// * `Ok(None)` — only a partial frame (or nothing) so far.
/// * `Err(_)` — bad version or over-limit declared length.
///
/// This is the schema-free half of [`decode_frame`]: relays (e.g. the
/// cluster router's emitter merge) use it to peel whole frames off a
/// byte stream and forward them verbatim, never paying a decode.
pub fn frame_len(bytes: &[u8]) -> Result<Option<usize>> {
    let Some(&version) = bytes.first() else {
        return Ok(None);
    };
    if version != FRAME_VERSION && version != FRAME_VERSION_TRACED {
        return Err(EngineError::Io(format!(
            "unsupported frame version {version} (expected {FRAME_VERSION} or {FRAME_VERSION_TRACED})"
        )));
    }
    if bytes.len() < HEADER_LEN {
        return Ok(None);
    }
    let payload_len = u32::from_le_bytes(bytes[1..HEADER_LEN].try_into().unwrap()) as usize;
    if payload_len > MAX_FRAME_LEN {
        return Err(frame_too_big(payload_len));
    }
    let total = HEADER_LEN + payload_len;
    if bytes.len() < total {
        return Ok(None);
    }
    Ok(Some(total))
}

/// Like [`frame_len`], additionally returning the frame's declared row
/// count — decoded from the first two payload varints, without touching
/// the column data. Relays use it to keep tuple counters while
/// forwarding frames verbatim.
pub fn frame_meta(bytes: &[u8]) -> Result<Option<(usize, u64)>> {
    let Some(total) = frame_len(bytes)? else {
        return Ok(None);
    };
    let mut payload = &bytes[HEADER_LEN..total];
    if bytes[0] == FRAME_VERSION_TRACED {
        TraceHeader::read_from(payload)?;
        payload = &payload[TRACE_HEADER_LEN..];
    }
    let truncated = || EngineError::Io("truncated frame payload".into());
    let (_ncols, at) = get_varint(payload, 0)?.ok_or_else(truncated)?;
    let (rows, _) = get_varint(payload, at)?.ok_or_else(truncated)?;
    Ok(Some((total, rows)))
}

fn frame_too_big(len: usize) -> EngineError {
    EngineError::Io(format!(
        "frame payload of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit"
    ))
}

/// Blocking read of one frame; `Ok(None)` on clean EOF before a frame.
pub fn read_frame<R: BufRead + ?Sized>(r: &mut R, schema: &Schema) -> Result<Option<Relation>> {
    let mut header = [0u8; HEADER_LEN];
    match r.read_exact(&mut header[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    if header[0] != FRAME_VERSION && header[0] != FRAME_VERSION_TRACED {
        return Err(EngineError::Io(format!(
            "unsupported frame version {} (expected {FRAME_VERSION} or {FRAME_VERSION_TRACED})",
            header[0]
        )));
    }
    r.read_exact(&mut header[1..])?;
    let payload_len = u32::from_le_bytes(header[1..].try_into().unwrap()) as usize;
    if payload_len > MAX_FRAME_LEN {
        return Err(frame_too_big(payload_len));
    }
    let mut payload = vec![0u8; payload_len];
    r.read_exact(&mut payload)?;
    let body = if header[0] == FRAME_VERSION_TRACED {
        TraceHeader::read_from(&payload)?;
        &payload[TRACE_HEADER_LEN..]
    } else {
        &payload[..]
    };
    Ok(Some(decode_payload(body, schema)?))
}

/// Decode a frame payload against the negotiated schema (names come from
/// the schema; types must agree with the frame's tags).
fn decode_payload(p: &[u8], schema: &Schema) -> Result<Relation> {
    let truncated = || EngineError::Io("truncated frame payload".into());
    let (ncols, mut at) = get_varint(p, 0)?.ok_or_else(truncated)?;
    let (rows, next) = get_varint(p, at)?.ok_or_else(truncated)?;
    at = next;
    if ncols as usize != schema.width() {
        return Err(EngineError::Io(format!(
            "frame has {} columns, schema expects {}",
            ncols,
            schema.width()
        )));
    }
    // every encoding spends at least one byte per row per column, so a
    // declared row count beyond the payload size is definitionally
    // corrupt — reject it BEFORE any row-count-sized allocation (an
    // attacker-controlled `Vec::with_capacity(2^50)` aborts the process,
    // it does not return an Err)
    if rows > p.len() as u64 {
        return Err(EngineError::Io(format!(
            "frame declares {rows} rows in a {}-byte payload",
            p.len()
        )));
    }
    let rows = rows as usize;
    let mut cols: Vec<(String, Column)> = Vec::with_capacity(schema.width());
    for field in schema.fields() {
        let &tag = p.get(at).ok_or_else(truncated)?;
        let vtype = tag_type(tag)?;
        if vtype != field.vtype {
            return Err(EngineError::Io(format!(
                "frame column {} is {}, schema expects {}",
                field.name, vtype, field.vtype
            )));
        }
        let &null_flag = p.get(at + 1).ok_or_else(truncated)?;
        at += 2;
        let validity = if null_flag != 0 {
            let nbytes = rows.div_ceil(8);
            let bits = p.get(at..at + nbytes).ok_or_else(truncated)?;
            at += nbytes;
            let mut mask = Bitset::new();
            for i in 0..rows {
                mask.push(bits[i / 8] & (1 << (i % 8)) != 0);
            }
            Some(mask)
        } else {
            None
        };
        let data = match vtype {
            ValueType::Bool => {
                let raw = p.get(at..at + rows).ok_or_else(truncated)?;
                at += rows;
                ColumnData::Bool(raw.iter().map(|&b| b != 0).collect())
            }
            ValueType::Int | ValueType::Ts => {
                let raw = p.get(at..at + rows * 8).ok_or_else(truncated)?;
                at += rows * 8;
                let v: Vec<i64> = raw
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                if vtype == ValueType::Ts {
                    ColumnData::Ts(v)
                } else {
                    ColumnData::Int(v)
                }
            }
            ValueType::Double => {
                let raw = p.get(at..at + rows * 8).ok_or_else(truncated)?;
                at += rows * 8;
                ColumnData::Double(
                    raw.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            ValueType::Str => {
                // capacity bounded by the bytes actually present (each
                // string costs ≥1 varint byte), not the declared row
                // count — 24-byte String headers would otherwise amplify
                // a hostile row count ~25x before the truncation error
                let mut v = Vec::with_capacity(rows.min(p.len() - at));
                for _ in 0..rows {
                    let (len, next) = get_varint(p, at)?.ok_or_else(truncated)?;
                    at = next;
                    // checked: a huge declared string length must surface
                    // as "truncated", not as an overflow or allocation
                    let len = usize::try_from(len).map_err(|_| truncated())?;
                    let end = at.checked_add(len).ok_or_else(truncated)?;
                    let raw = p.get(at..end).ok_or_else(truncated)?;
                    at = end;
                    v.push(
                        std::str::from_utf8(raw)
                            .map_err(|_| EngineError::Io("frame string is not UTF-8".into()))?
                            .to_string(),
                    );
                }
                ColumnData::Str(v)
            }
        };
        let col = Column::from_parts(data, validity)
            .map_err(|e| EngineError::Io(format!("frame column rebuild: {e}")))?;
        cols.push((field.name.clone(), col));
    }
    if at != p.len() {
        return Err(EngineError::Io(format!(
            "frame payload has {} trailing bytes",
            p.len() - at
        )));
    }
    Relation::from_columns(cols).map_err(|e| EngineError::Io(format!("frame relation: {e}")))
}

// ---- the codec abstraction --------------------------------------------------

/// One wire encoding of `Relation` batches. The text protocol (§3.1) and
/// the binary frame format are the two implementations; receptors,
/// emitters and clients are written against this trait so a session's
/// negotiated format is one constructor argument, not a code path.
pub trait FrameCodec: Send {
    fn format(&self) -> WireFormat;

    /// Append one encoded frame carrying `rel` to `out`. Scratch space is
    /// owned by the codec, so repeated calls reuse allocations.
    fn encode(&mut self, rel: &Relation, out: &mut Vec<u8>) -> Result<()>;

    /// Read the next batch, blocking until `max_rows` rows arrive (text),
    /// a full frame arrives (binary), or the stream ends. `Ok(None)`
    /// means clean end-of-stream.
    fn read_batch(
        &mut self,
        r: &mut dyn BufRead,
        schema: &Schema,
        max_rows: usize,
    ) -> Result<Option<Relation>>;
}

/// The §3.1 textual protocol as a [`FrameCodec`]. One frame = one line
/// per tuple; the whole batch is rendered into a single reused buffer.
#[derive(Default)]
pub struct TextCodec {
    scratch: String,
}

impl FrameCodec for TextCodec {
    fn format(&self) -> WireFormat {
        WireFormat::Text
    }

    fn encode(&mut self, rel: &Relation, out: &mut Vec<u8>) -> Result<()> {
        self.scratch.clear();
        net::encode_batch_text(&mut self.scratch, rel);
        out.extend_from_slice(self.scratch.as_bytes());
        Ok(())
    }

    fn read_batch(
        &mut self,
        mut r: &mut dyn BufRead,
        schema: &Schema,
        max_rows: usize,
    ) -> Result<Option<Relation>> {
        let rows = net::read_rows(&mut r, schema, max_rows)?;
        if rows.is_empty() {
            return Ok(None);
        }
        let mut rel = Relation::new(schema);
        rel.append_rows(rows.iter().map(|row| row.as_slice()))
            .map_err(|e| EngineError::Io(format!("wire row rejected: {e}")))?;
        Ok(Some(rel))
    }
}

/// The binary columnar frame format as a [`FrameCodec`].
#[derive(Default)]
pub struct BinaryCodec;

impl FrameCodec for BinaryCodec {
    fn format(&self) -> WireFormat {
        WireFormat::Binary
    }

    fn encode(&mut self, rel: &Relation, out: &mut Vec<u8>) -> Result<()> {
        encode_frame(out, rel)
    }

    fn read_batch(
        &mut self,
        r: &mut dyn BufRead,
        schema: &Schema,
        _max_rows: usize,
    ) -> Result<Option<Relation>> {
        // a binary frame *is* a batch — the sender chose its size
        read_frame(r, schema)
    }
}

// ---- encode-once fan-out ----------------------------------------------------

/// A result batch shared across emitter subscribers. Each wire encoding
/// is produced at most once, on first demand, no matter how many
/// subscribers (of either format) deliver the batch.
pub struct SharedFrame {
    rel: Relation,
    text: OnceLock<Arc<Vec<u8>>>,
    /// `None` once encoding failed (batch beyond [`MAX_FRAME_LEN`]).
    binary: OnceLock<Option<Arc<Vec<u8>>>>,
}

impl SharedFrame {
    pub fn new(rel: Relation) -> Arc<SharedFrame> {
        Arc::new(SharedFrame {
            rel,
            text: OnceLock::new(),
            binary: OnceLock::new(),
        })
    }

    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// Tuples in the batch.
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// The encoded frame for `format`, encoding on first use only.
    /// Errors when a batch cannot be framed (binary, beyond
    /// [`MAX_FRAME_LEN`]); the error repeats on every call.
    pub fn bytes(&self, format: WireFormat) -> Result<Arc<Vec<u8>>> {
        match format {
            WireFormat::Text => Ok(Arc::clone(self.text.get_or_init(|| {
                let mut s = String::new();
                net::encode_batch_text(&mut s, &self.rel);
                Arc::new(s.into_bytes())
            }))),
            WireFormat::Binary => self
                .binary
                .get_or_init(|| {
                    let mut buf = Vec::new();
                    encode_frame(&mut buf, &self.rel).ok()?;
                    Some(Arc::new(buf))
                })
                .clone()
                .ok_or_else(|| {
                    EngineError::Io("result batch exceeds the binary frame size limit".into())
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut rel = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(vec![1, -2, 3])),
            (
                "name".into(),
                Column::from_strs(vec!["a|b".into(), String::new(), "☂ line\n2".into()]),
            ),
            ("score".into(), Column::from_doubles(vec![0.5, -1.25, 3.0])),
            ("ok".into(), Column::from_bools(vec![true, false, true])),
            ("at".into(), Column::from_ts(vec![10, 20, 30])),
        ])
        .unwrap();
        rel.append_row(&[Value::Null, Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
        rel
    }

    #[test]
    fn binary_roundtrip_all_types_and_nulls() {
        let rel = sample();
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rel).unwrap();
        let (back, used) = decode_frame(&buf, &rel.schema()).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, rel);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let schema = Schema::from_pairs(&[("a", ValueType::Int), ("s", ValueType::Str)]);
        let rel = Relation::new(&schema);
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rel).unwrap();
        let (back, used) = decode_frame(&buf, &schema).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert!(back.is_empty());
        assert_eq!(back.schema(), schema);
    }

    #[test]
    fn partial_buffers_report_incomplete() {
        let rel = sample();
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rel).unwrap();
        let schema = rel.schema();
        for cut in 0..buf.len() {
            assert!(
                decode_frame(&buf[..cut], &schema).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
    }

    #[test]
    fn back_to_back_frames_decode_in_order() {
        let a = sample();
        let schema = a.schema();
        let b = Relation::new(&schema);
        let mut buf = Vec::new();
        encode_frame(&mut buf, &a).unwrap();
        encode_frame(&mut buf, &b).unwrap();
        let (first, used) = decode_frame(&buf, &schema).unwrap().unwrap();
        assert_eq!(first, a);
        let (second, used2) = decode_frame(&buf[used..], &schema).unwrap().unwrap();
        assert!(second.is_empty());
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn frame_len_peels_without_schema() {
        let rel = sample();
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rel).unwrap();
        encode_frame(&mut buf, &rel).unwrap();
        let first = frame_len(&buf).unwrap().unwrap();
        assert_eq!(frame_len(&buf[first..]).unwrap().unwrap(), buf.len() - first);
        for cut in 0..first {
            assert!(frame_len(&buf[..cut]).unwrap().is_none());
        }
        let mut bad = buf.clone();
        bad[0] = 99;
        assert!(frame_len(&bad).is_err());
        let mut huge = vec![FRAME_VERSION];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(frame_len(&huge).is_err());
        // frame_meta reports (total, rows) without a schema
        let (total, rows) = frame_meta(&buf).unwrap().unwrap();
        assert_eq!(total, first);
        assert_eq!(rows, rel.len() as u64);
        assert!(frame_meta(&buf[..3]).unwrap().is_none());
    }

    #[test]
    fn version_and_type_mismatches_are_errors() {
        let rel = sample();
        let schema = rel.schema();
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rel).unwrap();
        let mut bad = buf.clone();
        bad[0] = 99;
        assert!(decode_frame(&bad, &schema).is_err());
        let wrong = Schema::from_pairs(&[
            ("id", ValueType::Str),
            ("name", ValueType::Str),
            ("score", ValueType::Double),
            ("ok", ValueType::Bool),
            ("at", ValueType::Ts),
        ]);
        assert!(decode_frame(&buf, &wrong).is_err());
        let narrow = Schema::from_pairs(&[("id", ValueType::Int)]);
        assert!(decode_frame(&buf, &narrow).is_err());
    }

    #[test]
    fn hostile_row_count_is_an_error_not_an_abort() {
        // a ~20-byte frame declaring 2^50 rows must surface as Err — a
        // row-count-sized allocation would abort the whole process
        let schema = Schema::from_pairs(&[("s", ValueType::Str)]);
        let mut frame = vec![FRAME_VERSION];
        let mut payload = Vec::new();
        super::put_varint(&mut payload, 1); // ncols
        super::put_varint(&mut payload, 1 << 50); // rows
        payload.push(3); // tag: Str
        payload.push(0); // no nulls
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(decode_frame(&frame, &schema).is_err());

        // same for a hostile per-string length
        let mut payload = Vec::new();
        super::put_varint(&mut payload, 1); // ncols
        super::put_varint(&mut payload, 1); // rows
        payload.push(3); // tag: Str
        payload.push(0); // no nulls
        super::put_varint(&mut payload, u64::MAX); // string "length"
        let mut frame = vec![FRAME_VERSION];
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(decode_frame(&frame, &schema).is_err());
    }

    #[test]
    fn traced_frame_roundtrips_and_stays_self_delimiting() {
        let rel = sample();
        let schema = rel.schema();
        let trace = TraceHeader { batch: 0xDEAD_BEEF_CAFE, origin_micros: 123_456_789 };
        let mut buf = Vec::new();
        encode_frame_traced(&mut buf, &rel, Some(&trace)).unwrap();
        assert_eq!(buf[0], FRAME_VERSION_TRACED);

        // traced decode surfaces the header; plain decode ignores it
        let (back, used, got) = decode_frame_traced(&buf, &schema).unwrap().unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, rel);
        assert_eq!(got, Some(trace));
        let (back2, used2) = decode_frame(&buf, &schema).unwrap().unwrap();
        assert_eq!((back2, used2), (rel.clone(), buf.len()));

        // schema-free peeling skips the trace prefix
        assert_eq!(frame_len(&buf).unwrap().unwrap(), buf.len());
        let (total, rows) = frame_meta(&buf).unwrap().unwrap();
        assert_eq!((total, rows), (buf.len(), rel.len() as u64));

        // still self-delimiting: every proper prefix is incomplete
        for cut in 0..buf.len() {
            assert!(decode_frame_traced(&buf[..cut], &schema).unwrap().is_none());
        }

        // blocking reader accepts v2 frames too
        let mut r = std::io::BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r, &schema).unwrap().unwrap(), rel);

        // an untraced encode through the traced entry point is a byte-
        // identical v1 frame
        let mut plain = Vec::new();
        encode_frame_traced(&mut plain, &rel, None).unwrap();
        let mut v1 = Vec::new();
        encode_frame(&mut v1, &rel).unwrap();
        assert_eq!(plain, v1);
        let (_, _, none) = decode_frame_traced(&v1, &schema).unwrap().unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn traced_frame_shorter_than_trace_header_is_an_error() {
        let schema = Schema::from_pairs(&[("a", ValueType::Int)]);
        let mut frame = vec![FRAME_VERSION_TRACED];
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&[0u8; 8]); // 8-byte payload < 16-byte trace header
        assert!(decode_frame_traced(&frame, &schema).is_err());
        assert!(frame_meta(&frame).is_err());
    }

    #[test]
    fn oversized_declared_payload_is_rejected_before_allocation() {
        let schema = Schema::from_pairs(&[("a", ValueType::Int)]);
        let mut frame = vec![FRAME_VERSION];
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame(&frame, &schema).is_err());
        let mut r = std::io::BufReader::new(&frame[..]);
        assert!(read_frame(&mut r, &schema).is_err());
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let rel = sample();
        let schema = rel.schema();
        let mut wire = Vec::new();
        write_frame(&mut wire, &rel).unwrap();
        write_frame(&mut wire, &rel).unwrap();
        let mut r = std::io::BufReader::new(&wire[..]);
        assert_eq!(read_frame(&mut r, &schema).unwrap().unwrap(), rel);
        assert_eq!(read_frame(&mut r, &schema).unwrap().unwrap(), rel);
        assert!(read_frame(&mut r, &schema).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn codecs_roundtrip_equivalently() {
        let rel = sample();
        let schema = rel.schema();
        for format in [WireFormat::Text, WireFormat::Binary] {
            let mut codec = format.new_codec();
            let mut wire = Vec::new();
            codec.encode(&rel, &mut wire).unwrap();
            let mut r = std::io::BufReader::new(&wire[..]);
            let back = codec.read_batch(&mut r, &schema, usize::MAX).unwrap().unwrap();
            assert_eq!(back, rel, "{format} codec must round-trip");
            assert!(codec.read_batch(&mut r, &schema, usize::MAX).unwrap().is_none());
        }
    }

    #[test]
    fn shared_frame_encodes_once_per_format() {
        let frame = SharedFrame::new(sample());
        let t1 = frame.bytes(WireFormat::Text).unwrap();
        let t2 = frame.bytes(WireFormat::Text).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2), "text encoded exactly once");
        let b1 = frame.bytes(WireFormat::Binary).unwrap();
        let b2 = frame.bytes(WireFormat::Binary).unwrap();
        assert!(Arc::ptr_eq(&b1, &b2), "binary encoded exactly once");
        assert_ne!(t1.as_slice(), b1.as_slice());
        let (rel, _) = decode_frame(&b1, &frame.relation().schema()).unwrap().unwrap();
        assert_eq!(&rel, frame.relation());
    }

    #[test]
    fn wire_format_parse_and_display() {
        assert_eq!("TEXT".parse::<WireFormat>().unwrap(), WireFormat::Text);
        assert_eq!("binary".parse::<WireFormat>().unwrap(), WireFormat::Binary);
        assert!("csv".parse::<WireFormat>().is_err());
        assert_eq!(WireFormat::Binary.to_string(), "binary");
        assert_eq!(WireFormat::default(), WireFormat::Text);
    }
}
