//! # datacell — a stream engine on top of a column-store kernel
//!
//! Reproduction of *"Exploiting the Power of Relational Databases for
//! Efficient Stream Processing"* (Liarou, Goncalves, Idreos — EDBT 2009).
//!
//! DataCell turns a relational kernel into a stream engine by inverting
//! the classic DSMS dataflow: instead of pushing each tuple through
//! standing queries, arriving tuples are appended to **baskets**
//! (transient columnar tables) and continuous queries — **factories** —
//! are repeatedly thrown *at the data* as ordinary relational plans. A
//! Petri-net **scheduler** fires factories whose input baskets hold
//! tuples; consumed tuples are deleted from their baskets; **receptors**
//! and **emitters** connect the kernel to the outside world.
//!
//! Module map (paper section → module):
//!
//! | paper | module |
//! |-------|--------|
//! | §3.1 receptors/emitters      | [`receptor`], [`emitter`], [`net`], [`frame`] |
//! | §3.2 baskets                 | [`basket`] |
//! | §3.3 factories (Algorithm 1) | [`factory`] |
//! | §3.4 basket expressions      | `dcsql` crate |
//! | §4.1 Petri-net scheduling    | [`scheduler`] (model in `petri`) |
//! | §4.2 processing strategies   | [`strategy`] |
//! | §5 metronome & heartbeat     | [`metronome`], [`varstore`] |
//! | scale-out (ROADMAP)          | [`partition`], `dccluster` crate (`crates/cluster`) |
//! | durability (ROADMAP)         | [`persist`], `dcstore` crate (`crates/storage`) |
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use datacell::prelude::*;
//!
//! let clock = Arc::new(VirtualClock::new());
//! let engine = DataCell::with_clock(clock);
//! engine.create_stream("S", &Schema::from_pairs(&[
//!     ("id", ValueType::Int), ("payload", ValueType::Int),
//! ])).unwrap();
//!
//! // continuous query with a predicate window (basket expression)
//! let results = engine.register_query(
//!     "hot",
//!     "select id from [select * from S where payload > 100] as W",
//!     QueryOptions::subscribed(),
//! ).unwrap().unwrap();
//!
//! engine.ingest("S", &[
//!     vec![Value::Int(1), Value::Int(50)],
//!     vec![Value::Int(2), Value::Int(500)],
//! ]).unwrap();
//! engine.run_until_quiescent(16).unwrap();
//!
//! let batch = results.try_recv().unwrap();
//! assert_eq!(batch.column("id").unwrap().ints().unwrap(), &[2]);
//! ```

pub mod analyze;
pub mod basket;
pub mod clock;
pub mod emitter;
pub mod engine;
pub mod error;
pub mod factory;
pub mod frame;
pub mod metronome;
pub mod net;
pub mod partition;
pub mod persist;
pub mod receptor;
pub mod scheduler;
pub mod strategy;
pub mod varstore;

/// Common imports for applications built on the engine.
pub mod prelude {
    pub use crate::basket::{Basket, TS_COLUMN};
    pub use crate::clock::{Clock, SystemClock, VirtualClock, MICROS_PER_SEC};
    pub use crate::emitter::Emitter;
    pub use crate::engine::{BasketReport, DataCell, QueryOptions};
    pub use crate::error::{EngineError, Result};
    pub use crate::factory::{ClosureFactory, ConsumeMode, Factory, FireReport, QueryFactory};
    pub use crate::frame::{FrameCodec, SharedFrame, WireFormat};
    pub use crate::metronome::{Heartbeat, Metronome};
    pub use crate::partition::Partitioner;
    pub use crate::persist::{DurabilityProvider, PersistStats, StreamPersist};
    pub use crate::receptor::Receptor;
    pub use crate::scheduler::{Scheduler, ThreadedScheduler};
    pub use crate::varstore::VarStore;
    pub use monet::prelude::*;
}
