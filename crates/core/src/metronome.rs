//! Metronome and heartbeat components (paper §5).
//!
//! A **metronome** injects marker tuples into a basket at a fixed
//! interval, letting queries react to the *absence* of events. A
//! **heartbeat** builds on it to guarantee a uniform event stream: every
//! epoch without real traffic gets a null-payload filler tuple.

use std::sync::Arc;

use monet::prelude::*;

use crate::basket::Basket;
use crate::clock::Clock;
use crate::error::Result;
use crate::factory::{Factory, FireReport};

/// A time-triggered factory appending marker rows.
pub struct Metronome {
    name: String,
    target: Arc<Basket>,
    outputs: Vec<Arc<Basket>>,
    clock: Arc<dyn Clock>,
    interval_micros: i64,
    next_tick: i64,
    row_fn: Box<dyn FnMut(i64) -> Vec<Value> + Send>,
}

impl Metronome {
    /// `row_fn(tick_time)` produces the marker tuple (user columns only).
    pub fn new(
        name: impl Into<String>,
        target: Arc<Basket>,
        clock: Arc<dyn Clock>,
        interval_micros: i64,
        row_fn: impl FnMut(i64) -> Vec<Value> + Send + 'static,
    ) -> Self {
        assert!(interval_micros > 0, "metronome interval must be positive");
        let first = clock.now() + interval_micros;
        Metronome {
            name: name.into(),
            outputs: vec![Arc::clone(&target)],
            target,
            clock,
            interval_micros,
            next_tick: first,
            row_fn: Box::new(row_fn),
        }
    }

    pub fn interval(&self) -> i64 {
        self.interval_micros
    }
}

impl Factory for Metronome {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> &[Arc<Basket>] {
        &[]
    }

    fn outputs(&self) -> &[Arc<Basket>] {
        &self.outputs
    }

    /// Fires when the clock reaches the next tick (a transition whose
    /// implicit input place is time itself).
    fn ready(&self) -> bool {
        self.clock.now() >= self.next_tick
    }

    fn fire(&mut self) -> Result<FireReport> {
        let now = self.clock.now();
        let mut produced = 0;
        // catch up over missed epochs so downstream windows see every tick
        while self.next_tick <= now {
            let row = (self.row_fn)(self.next_tick);
            produced += self.target.append_rows(&[row], self.clock.as_ref())?;
            self.next_tick += self.interval_micros;
        }
        Ok(FireReport {
            consumed: 0,
            produced,
            ..FireReport::default()
        })
    }
}

/// A heartbeat: watches a data basket and emits one filler tuple per epoch
/// in which no event arrived, so downstream consumers always observe a
/// uniform stream.
pub struct Heartbeat {
    name: String,
    watched: Arc<Basket>,
    target: Arc<Basket>,
    outputs: Vec<Arc<Basket>>,
    clock: Arc<dyn Clock>,
    epoch_micros: i64,
    next_epoch: i64,
    filler_fn: Box<dyn FnMut(i64) -> Vec<Value> + Send>,
}

impl Heartbeat {
    pub fn new(
        name: impl Into<String>,
        watched: Arc<Basket>,
        target: Arc<Basket>,
        clock: Arc<dyn Clock>,
        epoch_micros: i64,
        filler_fn: impl FnMut(i64) -> Vec<Value> + Send + 'static,
    ) -> Self {
        assert!(epoch_micros > 0, "heartbeat epoch must be positive");
        let first = clock.now() + epoch_micros;
        Heartbeat {
            name: name.into(),
            outputs: vec![Arc::clone(&target)],
            watched,
            target,
            clock,
            epoch_micros,
            next_epoch: first,
            filler_fn: Box::new(filler_fn),
        }
    }
}

impl Factory for Heartbeat {
    fn name(&self) -> &str {
        &self.name
    }

    fn inputs(&self) -> &[Arc<Basket>] {
        &[]
    }

    fn outputs(&self) -> &[Arc<Basket>] {
        &self.outputs
    }

    fn ready(&self) -> bool {
        self.clock.now() >= self.next_epoch
    }

    fn fire(&mut self) -> Result<FireReport> {
        let now = self.clock.now();
        let mut produced = 0;
        while self.next_epoch <= now {
            // epoch [next - epoch_micros, next): real traffic present?
            let (total_in, _, _) = self.watched.stats().snapshot();
            let quiet = total_in == 0 || self.watched.is_empty();
            if quiet {
                let row = (self.filler_fn)(self.next_epoch);
                produced += self.target.append_rows(&[row], self.clock.as_ref())?;
            }
            self.next_epoch += self.epoch_micros;
        }
        Ok(FireReport {
            consumed: 0,
            produced,
            ..FireReport::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::scheduler::Scheduler;

    fn schema() -> Schema {
        Schema::from_pairs(&[("tag", ValueType::Ts), ("payload", ValueType::Int)])
    }

    #[test]
    fn metronome_fires_on_schedule() {
        let clock = Arc::new(VirtualClock::new());
        let b = Basket::new("HB", &schema(), false);
        let m = Metronome::new("m", Arc::clone(&b), clock.clone(), 1_000_000, |t| {
            vec![Value::Ts(t), Value::Null]
        });
        let mut sched = Scheduler::new();
        sched.add(Box::new(m));

        sched.run_round().unwrap();
        assert_eq!(b.len(), 0, "before the first tick");

        clock.advance(1_000_000);
        sched.run_round().unwrap();
        assert_eq!(b.len(), 1);

        // catch-up over three missed ticks
        clock.advance(3_000_000);
        sched.run_round().unwrap();
        assert_eq!(b.len(), 4);
        let tags = b.snapshot();
        assert_eq!(
            tags.column("tag").unwrap().ints().unwrap(),
            &[1_000_000, 2_000_000, 3_000_000, 4_000_000]
        );
    }

    #[test]
    fn heartbeat_fills_quiet_epochs_only() {
        let clock = Arc::new(VirtualClock::new());
        let data = Basket::new("X", &schema(), false);
        let hb = Basket::new("HB", &schema(), false);
        let h = Heartbeat::new(
            "h",
            Arc::clone(&data),
            Arc::clone(&hb),
            clock.clone(),
            1_000_000,
            |t| vec![Value::Ts(t), Value::Null],
        );
        let mut sched = Scheduler::new();
        sched.add(Box::new(h));

        // quiet epoch → filler
        clock.advance(1_000_000);
        sched.run_round().unwrap();
        assert_eq!(hb.len(), 1);

        // busy epoch → no filler
        data.append_rows(&[vec![Value::Ts(clock.now()), Value::Int(5)]], clock.as_ref())
            .unwrap();
        clock.advance(1_000_000);
        sched.run_round().unwrap();
        assert_eq!(hb.len(), 1, "real traffic suppresses the filler");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let clock = Arc::new(VirtualClock::new());
        let b = Basket::new("HB", &schema(), false);
        let _ = Metronome::new("m", b, clock, 0, |_| vec![]);
    }
}
