//! Receptors — adapter threads feeding baskets (paper §3.1).
//!
//! A receptor continuously picks events off a communication channel,
//! validates their structure and appends them to its basket(s). Two
//! channel kinds are provided: in-process crossbeam channels (benchmarks,
//! tests) and TCP streams speaking a negotiated [`WireFormat`] — the §3.1
//! textual protocol or the columnar binary frames of [`crate::frame`].
//! Receptors honor their basket's pending cap: a full basket blocks the
//! feed (backpressure) instead of growing without bound.

use std::io::BufReader;
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::Receiver;
use monet::prelude::*;

use crate::basket::Basket;
use crate::clock::Clock;
use crate::error::Result;
use crate::frame::WireFormat;

/// Handle to a running receptor thread.
pub struct Receptor {
    name: String,
    handle: JoinHandle<ReceptorReport>,
}

/// Lifetime statistics returned when the receptor ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceptorReport {
    /// Tuples successfully appended.
    pub accepted: u64,
    /// Tuples rejected (bad structure, disabled basket).
    pub rejected: u64,
}

impl Receptor {
    /// Receptor on an in-process channel. Each message is one tuple; the
    /// receptor greedily batches whatever is queued before appending, so a
    /// burst becomes a single columnar append.
    pub fn spawn_channel(
        name: impl Into<String>,
        rx: Receiver<Vec<Value>>,
        basket: Arc<Basket>,
        clock: Arc<dyn Clock>,
    ) -> Receptor {
        let name = name.into();
        let tname = name.clone();
        let handle = std::thread::spawn(move || {
            let mut report = ReceptorReport::default();
            let mut batch: Vec<Vec<Value>> = Vec::new();
            while let Ok(first) = rx.recv() {
                batch.clear();
                batch.push(first);
                while let Ok(more) = rx.try_recv() {
                    batch.push(more);
                    if batch.len() >= 4096 {
                        break;
                    }
                }
                match basket.append_rows(&batch, clock.as_ref()) {
                    Ok(n) => {
                        report.accepted += n as u64;
                        report.rejected += (batch.len() - n) as u64;
                    }
                    Err(_) => report.rejected += batch.len() as u64,
                }
            }
            let _ = tname;
            report
        });
        Receptor { name, handle }
    }

    /// Receptor on an in-process channel of ready-made columnar batches —
    /// the batch-first twin of [`Receptor::spawn_channel`]. Each message
    /// is appended as one columnar batch.
    ///
    /// A basket with a pending cap blocks this feed while full
    /// (backpressure). If the consumer is gone for good, call
    /// `basket.disable()` to unblock the wait — the pending batch is
    /// then rejected and the loop resumes, ending at channel close.
    pub fn spawn_channel_batches(
        name: impl Into<String>,
        rx: Receiver<Relation>,
        basket: Arc<Basket>,
        clock: Arc<dyn Clock>,
    ) -> Receptor {
        let name = name.into();
        let handle = std::thread::spawn(move || {
            let mut report = ReceptorReport::default();
            while let Ok(batch) = rx.recv() {
                let total = batch.len() as u64;
                basket.wait_for_capacity(|| false);
                match basket.append_relation(batch, clock.as_ref()) {
                    Ok(n) => {
                        report.accepted += n as u64;
                        report.rejected += total - n as u64;
                    }
                    Err(_) => report.rejected += total,
                }
            }
            report
        });
        Receptor { name, handle }
    }

    /// Receptor listening on TCP: accepts one sensor connection and
    /// consumes batches in the given wire format until EOF. Text streams
    /// are chopped into batches of up to 1024 tuples; binary streams
    /// arrive pre-framed. When the basket has a pending cap, the loop
    /// blocks (backpressure onto the peer's send buffer) instead of
    /// growing the basket unboundedly; `basket.disable()` unblocks a
    /// wait whose consumer died (the batch is rejected and the loop
    /// resumes, ending at EOF).
    pub fn spawn_tcp(
        name: impl Into<String>,
        listener: TcpListener,
        basket: Arc<Basket>,
        clock: Arc<dyn Clock>,
        format: WireFormat,
    ) -> Receptor {
        let name = name.into();
        let schema = basket.user_schema();
        let handle = std::thread::spawn(move || {
            let mut report = ReceptorReport::default();
            let Ok((stream, _)) = listener.accept() else {
                return report;
            };
            let mut reader = BufReader::new(stream);
            let mut codec = format.new_codec();
            loop {
                match codec.read_batch(&mut reader, &schema, 1024) {
                    Ok(None) => break,
                    Ok(Some(batch)) => {
                        let total = batch.len() as u64;
                        basket.wait_for_capacity(|| false);
                        match basket.append_relation(batch, clock.as_ref()) {
                            Ok(n) => {
                                report.accepted += n as u64;
                                report.rejected += total - n as u64;
                            }
                            Err(_) => report.rejected += total,
                        }
                    }
                    Err(_) => {
                        report.rejected += 1;
                        break;
                    }
                }
            }
            report
        });
        Receptor { name, handle }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wait for the feed to end and collect statistics.
    pub fn join(self) -> Result<ReceptorReport> {
        self.handle
            .join()
            .map_err(|_| crate::error::EngineError::Io("receptor thread panicked".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::io::Write;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)])
    }

    #[test]
    fn channel_receptor_feeds_basket() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let basket = Basket::new("B", &schema(), true);
        let (tx, rx) = crossbeam::channel::unbounded();
        let receptor = Receptor::spawn_channel("r", rx, Arc::clone(&basket), clock);
        for i in 0..100 {
            tx.send(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
        drop(tx);
        let report = receptor.join().unwrap();
        assert_eq!(report.accepted, 100);
        assert_eq!(report.rejected, 0);
        assert_eq!(basket.len(), 100);
    }

    #[test]
    fn channel_receptor_counts_rejects() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let basket = Basket::new("B", &schema(), true);
        basket.disable();
        let (tx, rx) = crossbeam::channel::unbounded();
        let receptor = Receptor::spawn_channel("r", rx, Arc::clone(&basket), clock);
        tx.send(vec![Value::Int(1), Value::Int(1)]).unwrap();
        drop(tx);
        let report = receptor.join().unwrap();
        assert_eq!(report.accepted, 0);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn tcp_receptor_parses_lines() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let basket = Basket::new("B", &schema(), true);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let receptor = Receptor::spawn_tcp(
            "r",
            listener,
            Arc::clone(&basket),
            clock,
            WireFormat::Text,
        );

        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        sock.write_all(b"1|10\n2|20\n3|30\n").unwrap();
        drop(sock);

        let report = receptor.join().unwrap();
        assert_eq!(report.accepted, 3);
        assert_eq!(basket.len(), 3);
        let snap = basket.snapshot();
        assert_eq!(snap.column("v").unwrap().ints().unwrap(), &[10, 20, 30]);
    }

    #[test]
    fn tcp_receptor_consumes_binary_frames() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let basket = Basket::new("B", &schema(), true);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let receptor = Receptor::spawn_tcp(
            "r",
            listener,
            Arc::clone(&basket),
            clock,
            WireFormat::Binary,
        );

        let batch = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(vec![1, 2, 3])),
            ("v".into(), Column::from_ints(vec![10, 20, 30])),
        ])
        .unwrap();
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        crate::frame::write_frame(&mut sock, &batch).unwrap();
        drop(sock);

        let report = receptor.join().unwrap();
        assert_eq!(report.accepted, 3);
        assert_eq!(report.rejected, 0);
        let snap = basket.snapshot();
        assert_eq!(snap.column("v").unwrap().ints().unwrap(), &[10, 20, 30]);
    }

    #[test]
    fn batch_channel_receptor_appends_columnar() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let basket = Basket::new("B", &schema(), true);
        let (tx, rx) = crossbeam::channel::unbounded();
        let receptor =
            Receptor::spawn_channel_batches("r", rx, Arc::clone(&basket), clock);
        let batch = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(vec![1, 2])),
            ("v".into(), Column::from_ints(vec![7, 8])),
        ])
        .unwrap();
        tx.send(batch).unwrap();
        drop(tx);
        let report = receptor.join().unwrap();
        assert_eq!(report.accepted, 2);
        assert_eq!(basket.len(), 2);
    }

    #[test]
    fn tcp_receptor_blocks_on_full_basket() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let basket = Basket::new("B", &schema(), false);
        basket.set_pending_cap(8);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let receptor = Receptor::spawn_tcp(
            "r",
            listener,
            Arc::clone(&basket),
            clock,
            WireFormat::Binary,
        );

        // 20 frames of 5 tuples: the basket (cap 8) can hold at most
        // cap-1 tuples when an append is admitted, so occupancy never
        // exceeds 7 + 5 = 12
        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        for f in 0..20i64 {
            let batch = Relation::from_columns(vec![
                ("id".into(), Column::from_ints((0..5).map(|i| f * 5 + i).collect())),
                ("v".into(), Column::from_ints(vec![0; 5])),
            ])
            .unwrap();
            crate::frame::write_frame(&mut sock, &batch).unwrap();
        }
        drop(sock);

        let mut total = 0usize;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while total < 100 {
            assert!(
                std::time::Instant::now() < deadline,
                "receptor stalled: {total} tuples after 10s"
            );
            let drained = basket.drain();
            total += drained.len();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(total, 100);
        let report = receptor.join().unwrap();
        assert_eq!(report.accepted, 100);
        assert!(
            basket.stats().high_water() <= 12,
            "backpressure must bound occupancy, saw high water {}",
            basket.stats().high_water()
        );
    }
}
