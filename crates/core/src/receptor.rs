//! Receptors — adapter threads feeding baskets (paper §3.1).
//!
//! A receptor continuously picks events off a communication channel,
//! validates their structure and appends them to its basket(s). Two
//! channel kinds are provided: in-process crossbeam channels (benchmarks,
//! tests) and TCP text streams (the sensor experiments).

use std::io::BufReader;
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::Receiver;
use monet::prelude::*;

use crate::basket::Basket;
use crate::clock::Clock;
use crate::error::Result;
use crate::net::read_rows;

/// Handle to a running receptor thread.
pub struct Receptor {
    name: String,
    handle: JoinHandle<ReceptorReport>,
}

/// Lifetime statistics returned when the receptor ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceptorReport {
    /// Tuples successfully appended.
    pub accepted: u64,
    /// Tuples rejected (bad structure, disabled basket).
    pub rejected: u64,
}

impl Receptor {
    /// Receptor on an in-process channel. Each message is one tuple; the
    /// receptor greedily batches whatever is queued before appending, so a
    /// burst becomes a single columnar append.
    pub fn spawn_channel(
        name: impl Into<String>,
        rx: Receiver<Vec<Value>>,
        basket: Arc<Basket>,
        clock: Arc<dyn Clock>,
    ) -> Receptor {
        let name = name.into();
        let tname = name.clone();
        let handle = std::thread::spawn(move || {
            let mut report = ReceptorReport::default();
            let mut batch: Vec<Vec<Value>> = Vec::new();
            while let Ok(first) = rx.recv() {
                batch.clear();
                batch.push(first);
                while let Ok(more) = rx.try_recv() {
                    batch.push(more);
                    if batch.len() >= 4096 {
                        break;
                    }
                }
                match basket.append_rows(&batch, clock.as_ref()) {
                    Ok(n) => {
                        report.accepted += n as u64;
                        report.rejected += (batch.len() - n) as u64;
                    }
                    Err(_) => report.rejected += batch.len() as u64,
                }
            }
            let _ = tname;
            report
        });
        Receptor { name, handle }
    }

    /// Receptor listening on TCP: accepts one sensor connection and
    /// consumes newline-framed tuples until EOF.
    pub fn spawn_tcp(
        name: impl Into<String>,
        listener: TcpListener,
        basket: Arc<Basket>,
        clock: Arc<dyn Clock>,
    ) -> Receptor {
        let name = name.into();
        let schema = basket.user_schema();
        let handle = std::thread::spawn(move || {
            let mut report = ReceptorReport::default();
            let Ok((stream, _)) = listener.accept() else {
                return report;
            };
            let mut reader = BufReader::new(stream);
            loop {
                match read_rows(&mut reader, &schema, 1024) {
                    Ok(rows) if rows.is_empty() => break,
                    Ok(rows) => match basket.append_rows(&rows, clock.as_ref()) {
                        Ok(n) => {
                            report.accepted += n as u64;
                            report.rejected += (rows.len() - n) as u64;
                        }
                        Err(_) => report.rejected += rows.len() as u64,
                    },
                    Err(_) => {
                        report.rejected += 1;
                        break;
                    }
                }
            }
            report
        });
        Receptor { name, handle }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wait for the feed to end and collect statistics.
    pub fn join(self) -> Result<ReceptorReport> {
        self.handle
            .join()
            .map_err(|_| crate::error::EngineError::Io("receptor thread panicked".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use std::io::Write;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)])
    }

    #[test]
    fn channel_receptor_feeds_basket() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let basket = Basket::new("B", &schema(), true);
        let (tx, rx) = crossbeam::channel::unbounded();
        let receptor = Receptor::spawn_channel("r", rx, Arc::clone(&basket), clock);
        for i in 0..100 {
            tx.send(vec![Value::Int(i), Value::Int(i * 10)]).unwrap();
        }
        drop(tx);
        let report = receptor.join().unwrap();
        assert_eq!(report.accepted, 100);
        assert_eq!(report.rejected, 0);
        assert_eq!(basket.len(), 100);
    }

    #[test]
    fn channel_receptor_counts_rejects() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let basket = Basket::new("B", &schema(), true);
        basket.disable();
        let (tx, rx) = crossbeam::channel::unbounded();
        let receptor = Receptor::spawn_channel("r", rx, Arc::clone(&basket), clock);
        tx.send(vec![Value::Int(1), Value::Int(1)]).unwrap();
        drop(tx);
        let report = receptor.join().unwrap();
        assert_eq!(report.accepted, 0);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn tcp_receptor_parses_lines() {
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let basket = Basket::new("B", &schema(), true);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let receptor = Receptor::spawn_tcp("r", listener, Arc::clone(&basket), clock);

        let mut sock = std::net::TcpStream::connect(addr).unwrap();
        sock.write_all(b"1|10\n2|20\n3|30\n").unwrap();
        drop(sock);

        let report = receptor.join().unwrap();
        assert_eq!(report.accepted, 3);
        assert_eq!(basket.len(), 3);
        let snap = basket.snapshot();
        assert_eq!(snap.column("v").unwrap().ints().unwrap(), &[10, 20, 30]);
    }
}
