//! Property-based tests on engine invariants: baskets conserve tuples,
//! consumption is exactly-once, the scheduler drains pipelines, and the
//! threaded scheduler agrees with the single-threaded one.

use std::sync::Arc;

use datacell::clock::VirtualClock;
use datacell::prelude::*;
use datacell::scheduler::Scheduler;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// total_in == len + total_out, always.
    #[test]
    fn basket_flow_conservation(ops in prop::collection::vec(0u8..4, 1..60)) {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), false);
        let mut counter = 0i64;
        for op in ops {
            match op {
                0 | 1 => {
                    let rows: Vec<Vec<Value>> = (0..3)
                        .map(|i| vec![Value::Int(counter + i), Value::Int(0)])
                        .collect();
                    counter += 3;
                    b.append_rows(&rows, &clock).unwrap();
                }
                2 => {
                    if b.len() >= 2 {
                        b.delete_sel(&SelVec::from_sorted(vec![0, 1]).unwrap()).unwrap();
                    }
                }
                _ => {
                    b.drain();
                }
            }
            let (total_in, total_out, dropped) = b.stats().snapshot();
            prop_assert_eq!(total_in, b.len() as u64 + total_out);
            prop_assert_eq!(dropped, 0);
        }
    }

    /// Every ingested tuple is delivered exactly once through a basket-
    /// expression query, regardless of how the batches are sliced.
    #[test]
    fn exactly_once_consumption(batch_sizes in prop::collection::vec(1usize..40, 1..20)) {
        let clock = Arc::new(VirtualClock::new());
        let engine = DataCell::with_clock(clock);
        engine.create_stream("S", &schema()).unwrap();
        let rx = engine
            .register_query(
                "all",
                "select id from [select * from S] as Z",
                QueryOptions::subscribed(),
            )
            .unwrap()
            .unwrap();
        let mut next = 0i64;
        for size in &batch_sizes {
            let rows: Vec<Vec<Value>> = (0..*size as i64)
                .map(|i| vec![Value::Int(next + i), Value::Int(0)])
                .collect();
            next += *size as i64;
            engine.ingest("S", &rows).unwrap();
            engine.run_until_quiescent(8).unwrap();
        }
        let mut seen = Vec::new();
        while let Ok(batch) = rx.try_recv() {
            seen.extend(batch.column("id").unwrap().ints().unwrap().iter().copied());
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..next).collect::<Vec<i64>>());
        prop_assert!(engine.basket("S").unwrap().is_empty());
    }

    /// A linear pipeline of pass-through factories conserves tuples
    /// end-to-end for any depth and feed pattern.
    #[test]
    fn pipeline_conservation(
        depth in 1usize..6,
        feeds in prop::collection::vec(1usize..30, 1..10),
    ) {
        let clock = Arc::new(VirtualClock::new());
        let baskets: Vec<Arc<Basket>> = (0..=depth)
            .map(|i| Basket::new(format!("b{i}"), &schema(), false))
            .collect();
        let mut sched = Scheduler::new();
        for i in 0..depth {
            let src = Arc::clone(&baskets[i]);
            let dst = Arc::clone(&baskets[i + 1]);
            let clk = clock.clone();
            sched.add(Box::new(ClosureFactory::new(
                format!("f{i}"),
                vec![Arc::clone(&baskets[i])],
                vec![Arc::clone(&baskets[i + 1])],
                move || {
                    let batch = src.drain();
                    let n = batch.len();
                    dst.append_relation(batch, clk.as_ref())?;
                    Ok(FireReport { consumed: n, produced: n, ..FireReport::default() })
                },
            )));
        }
        let mut total = 0usize;
        for n in feeds {
            total += n;
            let rows: Vec<Vec<Value>> = (0..n as i64)
                .map(|i| vec![Value::Int(i), Value::Int(0)])
                .collect();
            baskets[0].append_rows(&rows, clock.as_ref()).unwrap();
            sched.run_until_quiescent(depth + 2).unwrap();
        }
        prop_assert_eq!(baskets[depth].len(), total);
        for b in &baskets[..depth] {
            prop_assert!(b.is_empty());
        }
    }
}

#[test]
fn threaded_scheduler_agrees_with_single_threaded() {
    // identical query networks, one run per scheduler flavour
    let run = |threaded: bool| -> i64 {
        let clock = Arc::new(VirtualClock::new());
        let engine = DataCell::with_clock(clock);
        engine.create_stream("S", &schema()).unwrap();
        let rx = engine
            .register_query(
                "evens",
                "select id from [select * from S] as Z where Z.id % 2 = 0",
                QueryOptions::subscribed(),
            )
            .unwrap()
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..500i64).map(|i| vec![Value::Int(i), Value::Int(0)]).collect();
        engine.ingest("S", &rows).unwrap();
        if threaded {
            let ts = ThreadedScheduler::spawn(engine.take_factories());
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while !engine.basket("S").unwrap().is_empty()
                && std::time::Instant::now() < deadline
            {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            ts.stop();
        } else {
            engine.run_until_quiescent(16).unwrap();
        }
        let mut sum = 0i64;
        while let Ok(batch) = rx.try_recv() {
            sum += batch.column("id").unwrap().ints().unwrap().iter().sum::<i64>();
        }
        sum
    };
    let single = run(false);
    let threaded = run(true);
    assert_eq!(single, threaded);
    assert_eq!(single, (0..500i64).filter(|i| i % 2 == 0).sum::<i64>());
}

#[test]
fn disabled_basket_blocks_and_preserves() {
    let clock = Arc::new(VirtualClock::new());
    let engine = DataCell::with_clock(clock);
    engine.create_stream("S", &schema()).unwrap();
    engine.ingest("S", &[vec![Value::Int(1), Value::Int(1)]]).unwrap();
    let b = engine.basket("S").unwrap();
    b.disable();
    assert!(engine.ingest("S", &[vec![Value::Int(2), Value::Int(2)]]).is_err());
    assert_eq!(b.len(), 1, "existing contents preserved while blocked");
    b.enable();
    engine.ingest("S", &[vec![Value::Int(2), Value::Int(2)]]).unwrap();
    assert_eq!(b.len(), 2);
}
