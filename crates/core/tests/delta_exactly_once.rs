//! Exactly-once accounting of delta (incremental) standing-query
//! execution at the engine level.
//!
//! * A standing join factory must process each appended row exactly once
//!   through its carried state, produce results identical to the
//!   interpreter at every firing, and fall back to full re-execution
//!   when a delete breaks the append-only premise.
//! * Under concurrent consumers — several standing factories firing from
//!   their own threads over one basket a producer appends to, sharing
//!   one arrangement registry — every observed result must correspond to
//!   a prefix of the append sequence: a lost or double-counted delta row
//!   breaks the prefix checksum.

use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell::basket::Basket;
use datacell::clock::VirtualClock;
use datacell::factory::{ConsumeMode, PlanMode, QueryFactory};
use datacell::varstore::VarStore;
use dcsql::parse_statements;
use dcsql::plan::ArrangementRegistry;
use monet::catalog::Catalog;
use monet::prelude::*;

fn join_schema() -> Schema {
    Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)])
}

#[allow(clippy::type_complexity)]
fn factory_over(
    sql: &str,
    baskets: &[Arc<Basket>],
    trigger: Option<Vec<Arc<Basket>>>,
    mode: PlanMode,
    registry: Option<Arc<ArrangementRegistry>>,
) -> QueryFactory {
    let stmts = parse_statements(sql).unwrap();
    let map: Vec<Arc<Basket>> = baskets.to_vec();
    let resolve = move |n: &str| map.iter().find(|b| b.name() == n).cloned();
    QueryFactory::new(
        format!("q-{mode:?}"),
        stmts,
        &resolve,
        Arc::new(Catalog::new()),
        Arc::new(VarStore::new()),
        Arc::new(VirtualClock::starting_at(1_000)),
        ConsumeMode::Apply,
        trigger,
    )
    .unwrap()
    .with_plan_mode(mode)
    .with_arrangements(registry)
}

/// The fallback-reason vocabulary is shared between the sql planner and
/// the telemetry crate (which cannot depend on it); this is the pin.
#[test]
fn fallback_reason_vocabulary_matches_telemetry() {
    assert_eq!(dcsql::plan::FALLBACK_REASONS, dctrace::DELTA_FALLBACK_REASONS);
}

/// Deterministic append/fire/delete sequence: every firing of the delta
/// factory must emit exactly what a twin interpreter factory emits, and
/// the report must show incremental execution on append-only firings and
/// full re-execution when a delete bumps the generation.
#[test]
fn standing_join_is_incremental_and_interpreter_exact() {
    let clock = Arc::new(VirtualClock::starting_at(1_000));
    let x = Basket::new("X", &join_schema(), false);
    let y = Basket::new("Y", &join_schema(), false);
    let baskets = [Arc::clone(&x), Arc::clone(&y)];
    let registry = Arc::new(ArrangementRegistry::new());
    let sql = "select X.v as xv, Y.v as yv from X, Y where X.id = Y.id";
    let mut delta = factory_over(sql, &baskets, None, PlanMode::Compiled, Some(registry));
    let mut interp = factory_over(sql, &baskets, None, PlanMode::Interpreted, None);
    assert_eq!(delta.plan().delta_count(), 1);
    let drx = delta.result_channel();
    let irx = interp.result_channel();

    let rows = |pairs: &[(i64, i64)]| -> Vec<Vec<Value>> {
        pairs
            .iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect()
    };
    let fire_both = |delta: &mut QueryFactory, interp: &mut QueryFactory| {
        use datacell::factory::Factory;
        let dr = delta.fire().unwrap();
        let ir = interp.fire().unwrap();
        let drel = drx.try_recv().ok();
        let irel = irx.try_recv().ok();
        assert_eq!(drel, irel, "delta and interpreter emissions diverged");
        (dr, ir)
    };

    // bootstrap firing: full re-execution ("first")
    x.append_rows(&rows(&[(1, 10), (2, 20)]), clock.as_ref()).unwrap();
    y.append_rows(&rows(&[(1, 100)]), clock.as_ref()).unwrap();
    let (r1, _) = fire_both(&mut delta, &mut interp);
    assert_eq!(r1.full_reexecutes, 1);
    assert_eq!(r1.delta_rows, 0);
    assert_eq!(r1.produced, 1);

    // append-only firing: only the appended rows are processed
    y.append_rows(&rows(&[(2, 200), (9, 900)]), clock.as_ref()).unwrap();
    let (r2, i2) = fire_both(&mut delta, &mut interp);
    assert_eq!(r2.full_reexecutes, 0);
    assert_eq!(r2.delta_rows, 2, "two appended Y rows");
    assert_eq!(r2.rows_scanned, 2, "delta firing scans only the delta");
    assert_eq!(i2.rows_scanned, 5, "interpreter re-scans everything");
    assert_eq!(r2.produced, 2);
    assert!(r2.arrangement_bytes > 0);

    // nothing new: exact, zero rows touched
    let (r3, _) = fire_both(&mut delta, &mut interp);
    assert_eq!(r3.delta_rows, 0);
    assert_eq!(r3.rows_scanned, 0);

    // a delete on X breaks the append-only premise → full re-execution
    x.delete_sel(&SelVec::from_sorted(vec![0]).unwrap()).unwrap();
    let (r4, _) = fire_both(&mut delta, &mut interp);
    assert_eq!(r4.full_reexecutes, 1);
    assert_eq!(r4.produced, 1, "only id=2 survives the delete");

    // and the factory resumes incremental execution afterwards
    x.append_rows(&rows(&[(9, 90)]), clock.as_ref()).unwrap();
    let (r5, _) = fire_both(&mut delta, &mut interp);
    assert_eq!(r5.full_reexecutes, 0);
    assert_eq!(r5.delta_rows, 1);
    assert_eq!(r5.produced, 2, "id=2 and the new id=9 match");
}

/// Concurrent consumers: four standing factories (two grouped aggregates,
/// two joins sharing arrangements) fire from their own threads while a
/// producer appends a known sequence. Every emitted batch must equal the
/// query over some prefix of the sequence — the prefix checksum catches
/// any row a delta state lost or double-counted, and the shared
/// arrangement is advanced/probed concurrently by the two join threads.
#[test]
fn delta_exactly_once_under_concurrent_consumers() {
    const TOTAL: i64 = 400;
    const BATCH: usize = 8;

    let clock = Arc::new(VirtualClock::starting_at(1_000));
    let s = Basket::new("S", &Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Int)]), false);
    let t = Basket::new("T", &Schema::from_pairs(&[("k", ValueType::Int), ("m", ValueType::Int)]), false);
    t.append_rows(
        &(0..4i64).map(|k| vec![Value::Int(k), Value::Int(k * 1000)]).collect::<Vec<_>>(),
        clock.as_ref(),
    )
    .unwrap();
    // seed so the ungrouped aggregate never emits its all-NULL sum row
    s.append_rows(&[vec![Value::Int(0), Value::Int(0)]], clock.as_ref()).unwrap();

    let registry = Arc::new(ArrangementRegistry::new());
    let baskets = [Arc::clone(&s), Arc::clone(&t)];
    let group_sql = "select count(*) as n, sum(v) as total from S";
    let join_sql = "select S.v as v, T.m as m from S, T where S.k = T.k";

    // Each consumer thread owns its factory: it fires, drains its own
    // result channel, checks every batch against the prefix checksum and
    // stops once it has seen the full sequence. Firing concurrently with
    // the producer (and with each other, over one shared registry) is the
    // point of the test.
    let mut consumers = Vec::new();
    for which in 0..4usize {
        let grouped = which % 2 == 0;
        let mut f = factory_over(
            if grouped { group_sql } else { join_sql },
            &baskets,
            Some(vec![Arc::clone(&s)]),
            PlanMode::Compiled,
            Some(Arc::clone(&registry)),
        );
        assert_eq!(f.plan().delta_count(), 1);
        let rx = f.result_channel();
        consumers.push(std::thread::spawn(move || {
            use datacell::factory::Factory;
            let deadline = Instant::now() + Duration::from_secs(30);
            let (mut delta_rows, mut full_reexecutes) = (0u64, 0u64);
            let mut prev_n = 0i64;
            loop {
                let r = f.fire().expect("standing firing failed");
                delta_rows += r.delta_rows;
                full_reexecutes += r.full_reexecutes;
                while let Ok(rel) = rx.try_recv() {
                    let n = if grouped {
                        let n = rel.column("n").unwrap().ints().unwrap()[0];
                        let total = rel.column("total").unwrap().ints().unwrap()[0];
                        // the aggregate over rows 0..n of the sequence
                        assert_eq!(total, n * (n - 1) / 2, "prefix checksum broken at n={n}");
                        n
                    } else {
                        let n = rel.len() as i64;
                        let v_sum: i64 = rel.column("v").unwrap().ints().unwrap().iter().sum();
                        let m_sum: i64 = rel.column("m").unwrap().ints().unwrap().iter().sum();
                        // rows 0..n each match exactly one T row
                        assert_eq!(v_sum, n * (n - 1) / 2, "join lost or duplicated a row");
                        assert_eq!(
                            m_sum,
                            (0..n).map(|j| (j % 4) * 1000).sum::<i64>(),
                            "join matched a stale arrangement entry"
                        );
                        n
                    };
                    assert!(n >= prev_n, "result went backwards under append-only input");
                    prev_n = n;
                }
                if prev_n == TOTAL {
                    break;
                }
                assert!(Instant::now() < deadline, "consumer never caught up to the producer");
                std::thread::yield_now();
            }
            (delta_rows, full_reexecutes)
        }));
    }

    // produce rows 1..TOTAL (row i: k = i % 4, v = i) in small batches
    let producer = {
        let s = Arc::clone(&s);
        let clock = Arc::clone(&clock);
        std::thread::spawn(move || {
            let mut i = 1i64;
            while i < TOTAL {
                let hi = (i + BATCH as i64).min(TOTAL);
                let rows: Vec<Vec<Value>> =
                    (i..hi).map(|j| vec![Value::Int(j % 4), Value::Int(j)]).collect();
                s.append_rows(&rows, clock.as_ref()).unwrap();
                i = hi;
                std::thread::yield_now();
            }
        })
    };
    producer.join().unwrap();

    let mut delta_rows = 0u64;
    for c in consumers {
        let (d, _full) = c.join().unwrap();
        delta_rows += d;
    }
    // the runs must have actually exercised the incremental path
    assert!(delta_rows > 0, "no firing ran incrementally");
}
