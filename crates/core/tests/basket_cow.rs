//! Logical-delete / compaction equivalence and zero-copy snapshot
//! isolation at the basket level, plus the generation-guarded concurrent
//! firing protocol.
//!
//! * `delete_sel` marks rows in a deleted-bitmap and compacts lazily; a
//!   basket with any compaction threshold must be observationally
//!   identical to one that rewrites columns eagerly on every delete.
//! * `snapshot()` is a copy-on-write share — later appends/deletes on the
//!   basket must never show through.
//! * Two Apply-mode factories consuming one shared basket concurrently
//!   must process every tuple exactly once (the delete-generation check
//!   forces the loser of a conflicting firing to re-execute under lock).

use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell::basket::Basket;
use datacell::clock::VirtualClock;
use datacell::factory::{ConsumeMode, QueryFactory};
use datacell::scheduler::ThreadedScheduler;
use datacell::varstore::VarStore;
use dcsql::parse_statements;
use monet::catalog::Catalog;
use monet::prelude::*;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::from_pairs(&[("v", ValueType::Int)])
}

fn rows_of(vals: &[i64]) -> Vec<Vec<Value>> {
    vals.iter().map(|&v| vec![Value::Int(v)]).collect()
}

fn contents(b: &Arc<Basket>) -> Vec<i64> {
    b.snapshot().column("v").unwrap().ints().unwrap().to_vec()
}

#[derive(Debug, Clone)]
enum BasketOp {
    Append(Vec<i64>),
    /// Live-view positions, interpreted modulo the current live length.
    Delete(Vec<u32>),
    Drain,
}

fn decode_basket_op(x: u64) -> BasketOp {
    let payload = x >> 4;
    match x % 9 {
        0..=3 => BasketOp::Append(
            (0..1 + payload % 40)
                .map(|i| ((payload.wrapping_mul(i + 7)) % 199) as i64 - 99)
                .collect(),
        ),
        4..=7 => BasketOp::Delete(
            (0..1 + payload % 20)
                .map(|i| (payload.wrapping_mul(2 * i + 1) >> 2) as u32)
                .collect(),
        ),
        _ => BasketOp::Drain,
    }
}

fn basket_ops() -> impl Strategy<Value = Vec<BasketOp>> {
    prop::collection::vec(any::<u64>(), 1..20)
        .prop_map(|seeds| seeds.into_iter().map(decode_basket_op).collect())
}

fn apply(b: &Arc<Basket>, clock: &VirtualClock, op: &BasketOp) {
    match op {
        BasketOp::Append(vals) => {
            b.append_rows(&rows_of(vals), clock).unwrap();
        }
        BasketOp::Delete(raw) => {
            let len = b.len();
            if len == 0 {
                return;
            }
            let positions: Vec<u32> = raw.iter().map(|&p| p % len as u32).collect();
            b.delete_sel(&SelVec::from_unsorted(positions)).unwrap();
        }
        BasketOp::Drain => {
            let _ = b.drain();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Eager compaction (threshold 0), never-compact (huge threshold) and
    /// the default lazy threshold are observationally identical.
    #[test]
    fn logical_delete_equals_eager_delete(ops in basket_ops()) {
        let clock = VirtualClock::new();
        let eager = Basket::new("E", &schema(), false);
        let lazy = Basket::new("L", &schema(), false);
        let dflt = Basket::new("D", &schema(), false);
        eager.set_compact_threshold(0);
        lazy.set_compact_threshold(usize::MAX);

        for op in &ops {
            apply(&eager, &clock, op);
            apply(&lazy, &clock, op);
            apply(&dflt, &clock, op);
            prop_assert_eq!(eager.len(), lazy.len());
            prop_assert_eq!(contents(&eager), contents(&lazy), "op {:?}", op);
            prop_assert_eq!(contents(&eager), contents(&dflt), "op {:?}", op);
            prop_assert_eq!(eager.compaction_stats().0, 0, "eager never leaves marks");
        }

        // forcing a physical compaction must not change the visible state
        let before = contents(&lazy);
        lazy.compact_now();
        prop_assert_eq!(contents(&lazy), before);
        prop_assert_eq!(lazy.compaction_stats().0, 0, "compact clears pending marks");

        // both report identical lifetime in/out totals
        prop_assert_eq!(eager.stats().snapshot(), lazy.stats().snapshot());
    }

    /// A snapshot is frozen at snapshot time regardless of subsequent
    /// appends, deletes, drains or compactions on the basket.
    #[test]
    fn snapshot_is_isolated(setup in prop::collection::vec(-50i64..50, 1..60), ops in basket_ops()) {
        let clock = VirtualClock::new();
        let b = Basket::new("B", &schema(), false);
        b.set_compact_threshold(4); // compact often to exercise rewrites
        b.append_rows(&rows_of(&setup), &clock).unwrap();

        let snap = b.snapshot();
        let frozen: Vec<i64> = snap.column("v").unwrap().ints().unwrap().to_vec();
        for op in &ops {
            apply(&b, &clock, op);
            let now: Vec<i64> = snap.column("v").unwrap().ints().unwrap().to_vec();
            prop_assert_eq!(&now, &frozen, "op {:?} leaked into snapshot", op);
        }
    }
}

/// Two Apply-mode factories race on one shared input; the generation check
/// must make their consumption exactly-once (no lost, no duplicated rows).
#[test]
fn concurrent_consumers_are_exactly_once() {
    let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
    let catalog = Arc::new(Catalog::new());
    let vars = Arc::new(VarStore::new());
    let input = Basket::new("S", &schema(), false);
    let output = Basket::new("OUT", &schema(), false);

    let mk = |name: &str| {
        let i2 = Arc::clone(&input);
        let o2 = Arc::clone(&output);
        QueryFactory::new(
            name,
            parse_statements("insert into OUT select * from [select * from S] as Z").unwrap(),
            &move |n: &str| match n {
                "S" => Some(Arc::clone(&i2)),
                "OUT" => Some(Arc::clone(&o2)),
                _ => None,
            },
            Arc::clone(&catalog),
            Arc::clone(&vars),
            clock.clone() as Arc<dyn datacell::clock::Clock>,
            ConsumeMode::Apply,
            None,
        )
        .unwrap()
    };

    let sched = ThreadedScheduler::spawn_with_backoff(
        vec![Box::new(mk("qa")), Box::new(mk("qb"))],
        Duration::from_micros(10),
    );

    const TOTAL: i64 = 20_000;
    let mut next = 0i64;
    while next < TOTAL {
        let hi = (next + 97).min(TOTAL);
        let vals: Vec<i64> = (next..hi).collect();
        input.append_rows(&rows_of(&vals), clock.as_ref()).unwrap();
        next = hi;
    }

    let deadline = Instant::now() + Duration::from_secs(60);
    while (output.len() as i64) < TOTAL && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    sched.stop();

    assert!(input.is_empty(), "everything consumed");
    let mut got = contents(&output);
    got.sort_unstable();
    let want: Vec<i64> = (0..TOTAL).collect();
    assert_eq!(got.len() as i64, TOTAL, "no duplicated or lost tuples");
    assert_eq!(got, want);
}
