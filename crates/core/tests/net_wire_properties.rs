//! Round-trip property tests for the textual wire protocol (§3.1).
//!
//! The server's data plane (receptor ingest, emitter delivery) rides on
//! `net::format_row` / `net::parse_row`; these properties pin down
//! `parse ∘ format = identity` over randomized schemas and rows —
//! including the separator/newline/backslash escapes, NULL fields, and
//! the empty-string-vs-NULL distinction.

use datacell::net::{format_row, parse_row, read_rows, write_batch};
use monet::prelude::*;
use proptest::prelude::*;

/// Characters deliberately biased toward the protocol's escape set.
const PALETTE: &[char] = &[
    '|', '\n', '\r', '\\', 'p', 'n', 'r', 'e', 'a', 'B', '0', ' ', 'é', '☂', '\t',
];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|picks| picks.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_type() -> impl Strategy<Value = ValueType> {
    (0u8..5).prop_map(|k| match k {
        0 => ValueType::Int,
        1 => ValueType::Ts,
        2 => ValueType::Double,
        3 => ValueType::Bool,
        _ => ValueType::Str,
    })
}

/// A value of the given type, NULL with probability ~1/5.
fn value_for(t: ValueType, null_pick: bool, i: i64, s: String, b: bool) -> Value {
    if null_pick {
        return Value::Null;
    }
    match t {
        ValueType::Int => Value::Int(i),
        ValueType::Ts => Value::Ts(i.abs()),
        // f64 from a ratio of ints: representable values that exercise
        // both integral ("3") and fractional display forms
        ValueType::Double => Value::Double(i as f64 / 4.0),
        ValueType::Bool => Value::Bool(b),
        ValueType::Str => Value::Str(s),
    }
}

fn schema_of(types: &[ValueType]) -> Schema {
    Schema::new(
        types
            .iter()
            .enumerate()
            .map(|(i, t)| Field::new(format!("c{i}"), *t))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(format(row)) == row for any typed row.
    #[test]
    fn format_parse_roundtrip(
        types in prop::collection::vec(arb_type(), 1..8),
        nulls in prop::collection::vec(any::<bool>(), 8),
        ints in prop::collection::vec(-1_000_000i64..1_000_000, 8),
        strs in prop::collection::vec(arb_string(), 8),
        bools in prop::collection::vec(any::<bool>(), 8),
        null_bias in prop::collection::vec(0u8..5, 8),
    ) {
        let row: Vec<Value> = types
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let null_pick = nulls[i] && null_bias[i] == 0;
                value_for(*t, null_pick, ints[i], strs[i].clone(), bools[i])
            })
            .collect();
        let schema = schema_of(&types);
        let line = format_row(&row);
        prop_assert!(
            !line.contains('\n') && !line.contains('\r'),
            "framing must survive: {line:?}"
        );
        let back = parse_row(&line, &schema).unwrap();
        prop_assert_eq!(back, row);
    }

    /// Strings round-trip exactly — every palette combination of `|`,
    /// `\n`, `\\`, escape letters and unicode.
    #[test]
    fn string_escapes_roundtrip(s in arb_string()) {
        let schema = Schema::from_pairs(&[("s", ValueType::Str)]);
        let row = vec![Value::Str(s)];
        let line = format_row(&row);
        prop_assert!(!line.contains('\n') && !line.contains('\r'));
        prop_assert_eq!(parse_row(&line, &schema).unwrap(), row);
    }

    /// NULL and the empty string stay distinguishable in every column mix.
    #[test]
    fn null_vs_empty_string(width in 1usize..6, empty_at in 0usize..6) {
        let types = vec![ValueType::Str; width];
        let schema = schema_of(&types);
        let row: Vec<Value> = (0..width)
            .map(|i| {
                if i == empty_at % width {
                    Value::Str(String::new())
                } else {
                    Value::Null
                }
            })
            .collect();
        let line = format_row(&row);
        let back = parse_row(&line, &schema).unwrap();
        prop_assert_eq!(back, row);
    }

    /// Batch write/read round-trips row-for-row through a byte stream.
    #[test]
    fn batch_roundtrip(
        ids in prop::collection::vec(-500i64..500, 1..40),
        strs in prop::collection::vec(arb_string(), 1..40),
    ) {
        let n = ids.len().min(strs.len());
        let rel = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(ids[..n].to_vec())),
            (
                "s".into(),
                Column::from_strs(strs[..n].to_vec()),
            ),
        ])
        .unwrap();
        let mut buf = Vec::new();
        write_batch(&mut buf, &rel).unwrap();
        let schema = Schema::from_pairs(&[("id", ValueType::Int), ("s", ValueType::Str)]);
        let mut reader = std::io::BufReader::new(&buf[..]);
        let rows = read_rows(&mut reader, &schema, usize::MAX).unwrap();
        prop_assert_eq!(rows.len(), n);
        for (i, row) in rows.iter().enumerate() {
            prop_assert_eq!(&row[0], &Value::Int(ids[i]));
            prop_assert_eq!(&row[1], &Value::Str(strs[i].clone()));
        }
    }
}
