//! Round-trip property tests for the binary columnar frame codec.
//!
//! Mirrors `net_wire_properties.rs` for the batch-first data plane:
//! `decode ∘ encode = identity` over randomized schemas and relations —
//! including NULLs, empty strings, empty batches, max-width schemas, and
//! the incremental (partial-buffer) decode path the server's receptor
//! loop relies on.

use datacell::frame::{decode_frame, encode_frame, read_frame, write_frame, WireFormat};
use monet::prelude::*;
use proptest::prelude::*;

/// Characters biased toward framing hazards: separators, newlines,
/// escapes, NULs, multibyte UTF-8.
const PALETTE: &[char] = &[
    '|', '\n', '\r', '\\', '\0', 'e', 'a', 'B', '0', ' ', 'é', '☂', '\t',
];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|picks| picks.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_type() -> impl Strategy<Value = ValueType> {
    (0u8..5).prop_map(|k| match k {
        0 => ValueType::Int,
        1 => ValueType::Ts,
        2 => ValueType::Double,
        3 => ValueType::Bool,
        _ => ValueType::Str,
    })
}

fn value_for(t: ValueType, null_pick: bool, i: i64, s: String, b: bool) -> Value {
    if null_pick {
        return Value::Null;
    }
    match t {
        ValueType::Int => Value::Int(i),
        ValueType::Ts => Value::Ts(i.abs()),
        ValueType::Double => Value::Double(i as f64 / 4.0),
        ValueType::Bool => Value::Bool(b),
        ValueType::Str => Value::Str(s),
    }
}

fn schema_of(types: &[ValueType]) -> Schema {
    Schema::new(
        types
            .iter()
            .enumerate()
            .map(|(i, t)| Field::new(format!("c{i}"), *t))
            .collect(),
    )
}

/// Build a relation of `rows` rows over `types`, deterministically from
/// the provided entropy vectors.
fn build_rel(
    types: &[ValueType],
    rows: usize,
    ints: &[i64],
    strs: &[String],
    bools: &[bool],
    null_bias: &[u8],
) -> Relation {
    let schema = schema_of(types);
    let mut rel = Relation::new(&schema);
    for r in 0..rows {
        let row: Vec<Value> = types
            .iter()
            .enumerate()
            .map(|(c, t)| {
                let k = (r * types.len() + c) % ints.len();
                value_for(
                    *t,
                    null_bias[k] == 0,
                    ints[k],
                    strs[k].clone(),
                    bools[k],
                )
            })
            .collect();
        rel.append_row(&row).unwrap();
    }
    rel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// decode(encode(rel)) == rel for arbitrary typed relations,
    /// including NULLs in every column and rows == 0.
    #[test]
    fn binary_frame_roundtrip(
        types in prop::collection::vec(arb_type(), 1..8),
        rows in 0usize..33,
        ints in prop::collection::vec(-1_000_000i64..1_000_000, 64),
        strs in prop::collection::vec(arb_string(), 64),
        bools in prop::collection::vec(any::<bool>(), 64),
        null_bias in prop::collection::vec(0u8..5, 64),
    ) {
        let rel = build_rel(&types, rows, &ints, &strs, &bools, &null_bias);
        let schema = rel.schema();
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rel).unwrap();
        let (back, used) = decode_frame(&buf, &schema).unwrap().unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, rel);
    }

    /// Every strict prefix of a frame reports "incomplete", never a
    /// wrong decode and never an error — the receptor loop's contract.
    #[test]
    fn truncated_frames_are_incomplete(
        types in prop::collection::vec(arb_type(), 1..5),
        rows in 0usize..9,
        ints in prop::collection::vec(-1000i64..1000, 64),
        strs in prop::collection::vec(arb_string(), 64),
        bools in prop::collection::vec(any::<bool>(), 64),
        null_bias in prop::collection::vec(0u8..5, 64),
    ) {
        let rel = build_rel(&types, rows, &ints, &strs, &bools, &null_bias);
        let schema = rel.schema();
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rel).unwrap();
        for cut in 0..buf.len() {
            prop_assert!(decode_frame(&buf[..cut], &schema).unwrap().is_none());
        }
    }

    /// A stream of several frames decodes back frame-for-frame through
    /// the blocking reader, and incrementally from a byte buffer.
    #[test]
    fn frame_streams_roundtrip(
        types in prop::collection::vec(arb_type(), 1..5),
        sizes in prop::collection::vec(0usize..9, 1..5),
        ints in prop::collection::vec(-1000i64..1000, 64),
        strs in prop::collection::vec(arb_string(), 64),
        bools in prop::collection::vec(any::<bool>(), 64),
        null_bias in prop::collection::vec(0u8..5, 64),
    ) {
        let schema = schema_of(&types);
        let rels: Vec<Relation> = sizes
            .iter()
            .map(|&rows| build_rel(&types, rows, &ints, &strs, &bools, &null_bias))
            .collect();
        let mut wire = Vec::new();
        for rel in &rels {
            write_frame(&mut wire, rel).unwrap();
        }
        // blocking reader path
        let mut r = std::io::BufReader::new(&wire[..]);
        for rel in &rels {
            let got = read_frame(&mut r, &schema).unwrap().unwrap();
            prop_assert_eq!(&got, rel);
        }
        prop_assert!(read_frame(&mut r, &schema).unwrap().is_none());
        // incremental buffer path
        let mut at = 0usize;
        for rel in &rels {
            let (got, used) = decode_frame(&wire[at..], &schema).unwrap().unwrap();
            prop_assert_eq!(&got, rel);
            at += used;
        }
        prop_assert_eq!(at, wire.len());
    }

    /// Empty strings, NULL strings and NUL bytes stay distinguishable.
    #[test]
    fn empty_vs_null_strings(width in 1usize..6, empty_at in 0usize..6) {
        let types = vec![ValueType::Str; width];
        let schema = schema_of(&types);
        let mut rel = Relation::new(&schema);
        let row: Vec<Value> = (0..width)
            .map(|i| {
                if i == empty_at % width {
                    Value::Str(String::new())
                } else {
                    Value::Null
                }
            })
            .collect();
        rel.append_row(&row).unwrap();
        let mut buf = Vec::new();
        encode_frame(&mut buf, &rel).unwrap();
        let (back, _) = decode_frame(&buf, &schema).unwrap().unwrap();
        prop_assert_eq!(back, rel);
    }

    /// Wide schemas (up to 64 columns) survive a round-trip through both
    /// codecs with identical results.
    #[test]
    fn max_width_schema_roundtrip_both_codecs(
        width in 1usize..65,
        rows in 0usize..5,
        ints in prop::collection::vec(-1000i64..1000, 512),
        null_bias in prop::collection::vec(0u8..5, 512),
    ) {
        let types = vec![ValueType::Int; width];
        let schema = schema_of(&types);
        let mut rel = Relation::new(&schema);
        for r in 0..rows {
            let row: Vec<Value> = (0..width)
                .map(|c| {
                    let k = (r * width + c) % ints.len();
                    // column 0 stays non-NULL: a fully-NULL row in a
                    // width-1 schema is a blank text line, which the
                    // line-oriented reader cannot represent (the binary
                    // format has no such blind spot)
                    if c > 0 && null_bias[k] == 0 {
                        Value::Null
                    } else {
                        Value::Int(ints[k])
                    }
                })
                .collect();
            rel.append_row(&row).unwrap();
        }
        for format in [WireFormat::Text, WireFormat::Binary] {
            let mut codec = format.new_codec();
            let mut wire = Vec::new();
            codec.encode(&rel, &mut wire).unwrap();
            let mut r = std::io::BufReader::new(&wire[..]);
            let got = codec.read_batch(&mut r, &schema, usize::MAX).unwrap();
            if rel.is_empty() {
                // text has no frame for "zero rows"; binary preserves it
                match format {
                    WireFormat::Text => prop_assert!(got.is_none()),
                    WireFormat::Binary => prop_assert!(got.unwrap().is_empty()),
                }
            } else {
                prop_assert_eq!(got.unwrap(), rel.clone());
            }
        }
    }
}
