//! Property tests for the hash partitioner — the correctness contract
//! the `dccluster` router's ingest split rests on:
//!
//! * every row lands on exactly one shard;
//! * concatenating the per-shard splits is a permutation of the input
//!   batch (nothing lost, nothing duplicated, nothing mutated);
//! * key balance stays within 2× of ideal on uniform keys;
//! * NULL keys route deterministically (all to one shard).

use datacell::partition::{Partitioner, NULL_SHARD};
use monet::prelude::*;
use proptest::prelude::*;

/// Characters biased toward hashing hazards: shared prefixes, empties,
/// multibyte UTF-8.
const PALETTE: &[char] = &['a', 'b', 'A', '0', '|', ' ', 'é', '☂'];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..10)
        .prop_map(|picks| picks.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_key_type() -> impl Strategy<Value = ValueType> {
    (0u8..5).prop_map(|k| match k {
        0 => ValueType::Int,
        1 => ValueType::Ts,
        2 => ValueType::Double,
        3 => ValueType::Bool,
        _ => ValueType::Str,
    })
}

fn key_value(t: ValueType, null_pick: bool, i: i64, s: &str, b: bool) -> Value {
    if null_pick {
        return Value::Null;
    }
    match t {
        ValueType::Int => Value::Int(i),
        ValueType::Ts => Value::Ts(i.abs()),
        ValueType::Double => Value::Double(i as f64 / 8.0),
        ValueType::Bool => Value::Bool(b),
        ValueType::Str => Value::Str(s.to_string()),
    }
}

/// Build a (tag, key) relation: `tag` uniquely identifies each row so a
/// permutation check is exact even with duplicate keys.
fn build_rel(
    key_type: ValueType,
    rows: usize,
    ints: &[i64],
    strs: &[String],
    bools: &[bool],
    null_bias: &[u8],
) -> Relation {
    let schema = Schema::from_pairs(&[("tag", ValueType::Int), ("key", key_type)]);
    let mut rel = Relation::new(&schema);
    for r in 0..rows {
        let k = r % ints.len();
        let key = key_value(key_type, null_bias[k] == 0, ints[k], &strs[k], bools[k]);
        rel.append_row(&[Value::Int(r as i64), key]).unwrap();
    }
    rel
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Exactly-one-shard: the per-row assignment is a total function
    /// into 0..shards, and `split` places each row on its assigned
    /// shard and nowhere else.
    #[test]
    fn every_row_lands_on_exactly_one_shard(
        key_type in arb_key_type(),
        rows in 0usize..60,
        shards in 1usize..7,
        ints in prop::collection::vec(-1_000i64..1_000, 24),
        strs in prop::collection::vec(arb_string(), 24),
        bools in prop::collection::vec(any::<bool>(), 24),
        null_bias in prop::collection::vec(0u8..4, 24),
    ) {
        let rel = build_rel(key_type, rows, &ints, &strs, &bools, &null_bias);
        let p = Partitioner::new(1, shards).unwrap();
        let assignments = p.assignments(&rel).unwrap();
        prop_assert_eq!(assignments.len(), rel.len());
        for &s in &assignments {
            prop_assert!(s < shards);
        }
        let parts = p.split(&rel).unwrap();
        prop_assert_eq!(parts.len(), shards);
        // each tag appears on exactly the shard its row was assigned
        let mut seen = vec![None::<usize>; rel.len()];
        for (s, part) in parts.iter().enumerate() {
            for tag in part.column("tag").unwrap().ints().unwrap() {
                let tag = *tag as usize;
                prop_assert!(seen[tag].is_none(), "tag {} on two shards", tag);
                seen[tag] = Some(s);
            }
        }
        for (tag, s) in seen.iter().enumerate() {
            prop_assert_eq!(*s, Some(assignments[tag]), "tag {} misplaced", tag);
        }
    }

    /// Permutation: concatenating the splits yields the input rows,
    /// values intact (checked via the unique tag → full row mapping).
    #[test]
    fn concatenated_splits_are_a_permutation_of_the_input(
        key_type in arb_key_type(),
        rows in 0usize..60,
        shards in 1usize..7,
        ints in prop::collection::vec(-1_000i64..1_000, 24),
        strs in prop::collection::vec(arb_string(), 24),
        bools in prop::collection::vec(any::<bool>(), 24),
        null_bias in prop::collection::vec(0u8..4, 24),
    ) {
        let rel = build_rel(key_type, rows, &ints, &strs, &bools, &null_bias);
        let p = Partitioner::new(1, shards).unwrap();
        let parts = p.split(&rel).unwrap();
        let mut concat = Relation::new(&rel.schema());
        for part in &parts {
            prop_assert_eq!(part.schema(), rel.schema(), "schema preserved");
            concat.append_relation(part).unwrap();
        }
        prop_assert_eq!(concat.len(), rel.len(), "nothing lost or duplicated");
        let mut got: Vec<Vec<Value>> = concat.iter_rows().collect();
        let mut want: Vec<Vec<Value>> = rel.iter_rows().collect();
        let tag_of = |row: &Vec<Value>| match row[0] {
            Value::Int(t) => t,
            _ => unreachable!("tag column is int"),
        };
        got.sort_by_key(tag_of);
        want.sort_by_key(tag_of);
        prop_assert_eq!(got, want, "rows survive the split bit-for-bit");
    }

    /// Balance: over many distinct uniform keys, every shard holds at
    /// most 2× the ideal share (and at least something).
    #[test]
    fn uniform_keys_balance_within_2x_of_ideal(
        shards in 2usize..9,
        base in -1_000_000i64..1_000_000,
    ) {
        const N: i64 = 8192;
        let rel = Relation::from_columns(vec![(
            "key".into(),
            Column::from_ints((base..base + N).collect()),
        )])
        .unwrap();
        let p = Partitioner::new(0, shards).unwrap();
        let parts = p.split(&rel).unwrap();
        let ideal = N as usize / shards;
        for (s, part) in parts.iter().enumerate() {
            prop_assert!(
                part.len() <= ideal * 2,
                "shard {} overloaded: {} rows vs ideal {}", s, part.len(), ideal
            );
            prop_assert!(
                part.len() * 2 >= ideal,
                "shard {} starved: {} rows vs ideal {}", s, part.len(), ideal
            );
        }
    }

    /// NULL keys: deterministic, and co-located on a single shard no
    /// matter the key type or shard count.
    #[test]
    fn null_keys_route_deterministically(
        key_type in arb_key_type(),
        shards in 1usize..9,
        rows in 1usize..40,
    ) {
        let schema = Schema::from_pairs(&[("tag", ValueType::Int), ("key", key_type)]);
        let mut rel = Relation::new(&schema);
        for r in 0..rows {
            rel.append_row(&[Value::Int(r as i64), Value::Null]).unwrap();
        }
        let p = Partitioner::new(1, shards).unwrap();
        let a = p.assignments(&rel).unwrap();
        let b = p.assignments(&rel).unwrap();
        prop_assert_eq!(&a, &b, "same input, same routing");
        for &s in &a {
            prop_assert_eq!(s, NULL_SHARD % shards, "all NULLs on the null shard");
        }
        let parts = p.split(&rel).unwrap();
        prop_assert_eq!(parts[NULL_SHARD % shards].len(), rows);
    }
}
