//! Replication primitives: shipping a stream's durable state to a
//! follower store, and promoting a follower to a primary.
//!
//! The unit of replication is exactly the on-disk layout [`crate`]
//! already defines — sealed `seg-*.dcs` files plus the WAL tail — so a
//! follower's directory is byte-compatible with a primary's and its
//! catch-up/promotion replay is the same decode path boot recovery
//! uses. The protocol is a cursor-driven pull:
//!
//! * the follower-side cursor is `(segments, wal_epoch, wal_offset)`;
//!   segments are append-only, so a count suffices;
//! * [`Store::export_since`] (on the primary) returns every segment past
//!   the cursor plus a WAL chunk from `wal_offset`, cut at a record
//!   boundary under [`WAL_CHUNK_MAX`];
//! * [`Store::apply_segment`] / [`Store::apply_wal`] (on the follower)
//!   land that state durably. An epoch change means the primary sealed
//!   (and truncated its WAL), so the follower truncates its copy too;
//! * [`Store::promote_replicas`] replays the follower's WAL tails into
//!   live baskets and attaches persistence — after which the follower
//!   *is* a primary.
//!
//! A follower is a **cold standby**: durable state only, no live
//! baskets, until promotion. Payloads cross the control plane
//! hex-encoded ([`hex_encode`] / [`hex_decode`]) to stay line-safe.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use datacell::error::{EngineError, Result};
use datacell::frame;
use datacell::persist::StreamPersist;
use datacell::prelude::DataCell;
use monet::prelude::*;

use crate::manifest::SegmentRef;
use crate::wal::{scan_records, RECORD_HEADER};
use crate::{
    decode_record, seg_id_of, segment, validate_col, validate_name, RecoveryReport, Store,
    REC_FULL, REC_UNIFORM,
};

/// Cap on the WAL bytes one export ships (cut at a record boundary; a
/// single over-sized record still ships alone so catch-up always makes
/// progress). Bounds control-plane response line lengths.
pub const WAL_CHUNK_MAX: usize = 1 << 20;

/// A follower stream's durable position, as reported by `REPL STATUS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    pub epoch: u64,
    pub wal_bytes: u64,
    pub segments: usize,
}

/// One sealed segment shipped whole.
#[derive(Debug, Clone)]
pub struct SegmentChunk {
    pub file: String,
    pub rows: u64,
    pub data: Vec<u8>,
}

/// What one [`Store::export_since`] round returns.
#[derive(Debug, Clone)]
pub struct ExportChunk {
    /// The primary's current seal epoch.
    pub epoch: u64,
    /// The primary's total WAL length at export time.
    pub wal_bytes: u64,
    /// Rows in WAL records *beyond* the shipped chunk — the replication
    /// lag remaining after the follower applies this chunk (0 = caught
    /// up, modulo writes that land after the export).
    pub pending_rows: u64,
    /// Segments past the follower's cursor, in inventory order.
    pub segments: Vec<SegmentChunk>,
    /// Offset `wal_data` starts at (0 after an epoch change).
    pub wal_from: u64,
    /// Framed WAL records (header + CRC + payload), record-aligned.
    pub wal_data: Vec<u8>,
}

/// Lowercase hex — payloads must survive the line-oriented control
/// plane, and hex needs no dependency and no padding rules.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

pub fn hex_decode(s: &str) -> Result<Vec<u8>> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err(EngineError::Io("hex payload has odd length".into()));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16);
        let lo = (pair[1] as char).to_digit(16);
        match (hi, lo) {
            (Some(h), Some(l)) => out.push(((h << 4) | l) as u8),
            _ => return Err(EngineError::Io("hex payload has a non-hex byte".into())),
        }
    }
    Ok(out)
}

/// Declared row count of one WAL record payload (header varints only —
/// no column decode).
fn record_rows(payload: &[u8]) -> u64 {
    let frame = match payload.split_first() {
        Some((&REC_FULL, rest)) => rest,
        Some((&REC_UNIFORM, rest)) if rest.len() >= 8 => &rest[8..],
        _ => return 0,
    };
    match frame::frame_meta(frame) {
        Ok(Some((_, rows))) => rows,
        _ => 0,
    }
}

impl Store {
    /// Open (or idempotently re-open) a stream in **replica mode**: the
    /// manifest entry and stream directory exist and replication applies
    /// land durably, but no live basket is created — that happens at
    /// [`Store::promote_replicas`]. Re-opening with the same schema is a
    /// no-op; a different schema is an error.
    pub fn open_replica(&self, name: &str, user_schema: &Schema) -> Result<()> {
        validate_name(name)?;
        for f in user_schema.fields() {
            validate_col(&f.name)?;
        }
        {
            let mut m = self.manifest.lock();
            match m.get(name) {
                Some(e) if e.schema == *user_schema => {
                    drop(m);
                    if self.stream(name).is_none() {
                        let (stream, _) = self.build_stream(name, user_schema)?;
                        self.streams.lock().insert(name.to_string(), stream);
                    }
                    return Ok(());
                }
                Some(_) => {
                    return Err(EngineError::Config(format!(
                        "replica stream {name} already exists with a different schema"
                    )))
                }
                None => {
                    m.add_stream(name, user_schema);
                    m.save()?;
                }
            }
        }
        let (stream, replay) = self.build_stream(name, user_schema)?;
        if !replay.records.is_empty() || replay.torn {
            // a stale log from a dead incarnation — the primary's state
            // supersedes it entirely
            stream.state.lock().wal.truncate_all()?;
            stream.wal_bytes.store(0, Ordering::Relaxed);
        }
        self.streams.lock().insert(name.to_string(), stream);
        Ok(())
    }

    /// A stream's durable position (`REPL STATUS`): the catch-up cursor
    /// a primary needs to resume shipping to this follower.
    pub fn replica_status(&self, name: &str) -> Result<ReplicaStatus> {
        let stream = self
            .stream(name)
            .ok_or_else(|| EngineError::Unknown(format!("replica stream {name}")))?;
        let st = stream.state.lock();
        let epoch = self
            .manifest
            .lock()
            .get(name)
            .map(|e| e.wal_epoch)
            .ok_or_else(|| EngineError::Unknown(format!("manifest stream {name}")))?;
        Ok(ReplicaStatus {
            epoch,
            wal_bytes: st.wal.bytes(),
            segments: st.segments.len(),
        })
    }

    /// Primary side of one replication round: everything past the
    /// follower's `(have_segs, have_epoch, have_offset)` cursor. Taken
    /// under the stream's state lock, so the segment inventory, epoch
    /// and WAL bytes are mutually consistent (the same lock seals hold).
    pub fn export_since(
        &self,
        name: &str,
        have_segs: usize,
        have_epoch: u64,
        have_offset: u64,
    ) -> Result<ExportChunk> {
        let stream = self
            .stream(name)
            .ok_or_else(|| EngineError::Unknown(format!("durable stream {name}")))?;
        let st = stream.state.lock();
        let epoch = self
            .manifest
            .lock()
            .get(name)
            .map(|e| e.wal_epoch)
            .ok_or_else(|| EngineError::Unknown(format!("manifest stream {name}")))?;
        if have_segs > st.segments.len() {
            return Err(EngineError::Io(format!(
                "stream {name}: follower reports {have_segs} segments, primary has {}",
                st.segments.len()
            )));
        }
        let mut segments = Vec::new();
        for s in &st.segments[have_segs..] {
            let data = std::fs::read(stream.dir.join(&s.file))?;
            segments.push(SegmentChunk {
                file: s.file.clone(),
                rows: s.rows,
                data,
            });
        }
        let wal_bytes = st.wal.bytes();
        let from = if epoch == have_epoch { have_offset } else { 0 };
        if from > wal_bytes {
            return Err(EngineError::Io(format!(
                "stream {name}: follower wal cursor {from} is past the primary's {wal_bytes}"
            )));
        }
        let bytes = std::fs::read(st.wal.path())?;
        let tail = &bytes[from as usize..wal_bytes as usize];
        let replay = scan_records(tail);
        let mut take = 0usize;
        let mut pending_rows = 0u64;
        for rec in &replay.records {
            let framed = RECORD_HEADER + rec.len();
            if take + framed <= WAL_CHUNK_MAX || take == 0 {
                take += framed;
            } else {
                pending_rows += record_rows(rec);
            }
        }
        Ok(ExportChunk {
            epoch,
            wal_bytes,
            pending_rows,
            segments,
            wal_from: from,
            wal_data: tail[..take].to_vec(),
        })
    }

    /// Follower side: land one shipped segment durably (file write via
    /// tmp+fsync+rename, then manifest adoption). Re-shipping a file the
    /// inventory already holds is a no-op, so a retried export round is
    /// harmless.
    pub fn apply_segment(&self, name: &str, file: &str, rows: u64, data: &[u8]) -> Result<()> {
        let stream = self
            .stream(name)
            .ok_or_else(|| EngineError::Unknown(format!("replica stream {name}")))?;
        let Some(id) = seg_id_of(file) else {
            return Err(EngineError::Io(format!(
                "stream {name}: {file:?} is not a segment file name"
            )));
        };
        let mut st = stream.state.lock();
        if st.segments.iter().any(|s| s.file == file) {
            return Ok(());
        }
        let path = stream.dir.join(file);
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        // the shipped bytes must parse as a segment with the declared
        // row count before the manifest adopts them
        let (meta, _) = segment::read_meta(&path)?;
        if meta.rows != rows {
            let _ = std::fs::remove_file(&path);
            return Err(EngineError::Io(format!(
                "stream {name}: segment {file} declares {rows} rows but holds {}",
                meta.rows
            )));
        }
        let seg = SegmentRef {
            file: file.to_string(),
            rows,
            bytes: data.len() as u64,
        };
        st.segments.push(seg.clone());
        {
            let mut m = self.manifest.lock();
            m.add_segment(name, seg, rows)?;
            m.save()?;
        }
        stream
            .segment_count
            .store(st.segments.len() as u64, Ordering::Relaxed);
        stream.sealed_rows.fetch_add(rows, Ordering::Relaxed);
        stream.next_seg.fetch_max(id + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Follower side: append one shipped WAL chunk. An epoch ahead of
    /// ours means the primary sealed — truncate our copy and adopt the
    /// new epoch first. `from` must equal our current WAL length; a
    /// mismatch means the cursor desynced and the primary should re-read
    /// [`Store::replica_status`].
    pub fn apply_wal(&self, name: &str, epoch: u64, from: u64, data: &[u8]) -> Result<()> {
        let stream = self
            .stream(name)
            .ok_or_else(|| EngineError::Unknown(format!("replica stream {name}")))?;
        let mut st = stream.state.lock();
        let cur_epoch = self
            .manifest
            .lock()
            .get(name)
            .map(|e| e.wal_epoch)
            .ok_or_else(|| EngineError::Unknown(format!("manifest stream {name}")))?;
        if epoch != cur_epoch {
            st.wal.truncate_all()?;
            stream.wal_bytes.store(0, Ordering::Relaxed);
            let mut m = self.manifest.lock();
            m.set_wal_epoch(name, epoch)?;
            m.save()?;
        }
        if from != st.wal.bytes() {
            return Err(EngineError::Io(format!(
                "stream {name}: wal chunk starts at {from}, replica is at {}",
                st.wal.bytes()
            )));
        }
        if data.is_empty() {
            return Ok(());
        }
        let replay = scan_records(data);
        if replay.torn || replay.valid_bytes as usize != data.len() {
            return Err(EngineError::Io(format!(
                "stream {name}: shipped wal chunk is not record-aligned"
            )));
        }
        st.wal.append_framed(data)?;
        stream.wal_bytes.store(st.wal.bytes(), Ordering::Relaxed);
        Ok(())
    }

    /// Turn every replica stream into a live primary stream: create its
    /// basket, replay the replicated WAL tail into it (exactly what boot
    /// recovery does), and attach the persistence sink so new appends
    /// keep logging into the same WAL. Streams that already have a live
    /// basket are skipped, so a store mixing primary and replica streams
    /// promotes only the replicas.
    pub fn promote_replicas(&self, engine: &DataCell) -> Result<RecoveryReport> {
        let entries = self.manifest.lock().stream_list();
        let mut report = RecoveryReport::default();
        for (name, user_schema) in entries {
            if engine.basket(&name).is_ok() {
                continue;
            }
            let stream = match self.stream(&name) {
                Some(s) => s,
                None => {
                    let (s, _) = self.build_stream(&name, &user_schema)?;
                    self.streams.lock().insert(name.clone(), Arc::clone(&s));
                    s
                }
            };
            let basket = engine.create_stream(&name, &user_schema)?;
            {
                let st = stream.state.lock();
                let bytes = std::fs::read(st.wal.path())?;
                let replay = scan_records(&bytes[..st.wal.bytes() as usize]);
                if replay.torn {
                    report.torn_tails += 1;
                }
                for payload in &replay.records {
                    let rel =
                        decode_record(&name, payload, &stream.full_schema, &stream.user_schema)?;
                    report.replayed_batches += 1;
                    report.replayed_rows +=
                        basket.append_relation(rel, engine.clock().as_ref())? as u64;
                }
            }
            report.segments += stream.stats().segments;
            basket.set_persist(Arc::clone(&stream) as Arc<dyn StreamPersist>);
            report.streams += 1;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreOptions;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dcstore-replica-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn user_schema() -> Schema {
        Schema::from_pairs(&[("id", ValueType::Int), ("payload", ValueType::Int)])
    }

    fn open(root: &PathBuf) -> Arc<Store> {
        Store::open(root, StoreOptions::default(), dctrace::Telemetry::disabled()).unwrap()
    }

    fn ship_once(primary: &Store, follower: &Store, name: &str) -> ExportChunk {
        let status = follower.replica_status(name).unwrap();
        let chunk = primary
            .export_since(name, status.segments, status.epoch, status.wal_bytes)
            .unwrap();
        for seg in &chunk.segments {
            follower
                .apply_segment(name, &seg.file, seg.rows, &seg.data)
                .unwrap();
        }
        follower
            .apply_wal(name, chunk.epoch, chunk.wal_from, &chunk.wal_data)
            .unwrap();
        chunk
    }

    #[test]
    fn hex_roundtrip_and_rejects() {
        let data = [0u8, 1, 0x7f, 0xff, 0xab];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn ship_wal_and_segments_then_promote() {
        let proot = tmp("ship-p");
        let froot = tmp("ship-f");
        let engine = DataCell::new();
        let primary = open(&proot);
        engine.set_durability(primary.clone());
        engine.create_stream_persistent("S", &user_schema()).unwrap();
        engine
            .ingest(
                "S",
                &[vec![Value::Int(1), Value::Int(10)], vec![Value::Int(2), Value::Int(20)]],
            )
            .unwrap();
        engine.flush_stream("S").unwrap(); // rows 1,2 sealed into a segment
        engine
            .ingest("S", &[vec![Value::Int(3), Value::Int(30)]])
            .unwrap(); // row 3 in the WAL tail

        let follower = open(&froot);
        follower.open_replica("S", &user_schema()).unwrap();
        let chunk = ship_once(&primary, &follower, "S");
        assert_eq!(chunk.segments.len(), 1);
        assert_eq!(chunk.pending_rows, 0);
        let fs = follower.replica_status("S").unwrap();
        let ps = primary.replica_status("S").unwrap();
        assert_eq!(fs, ps, "follower caught up to the primary's cursor");

        // a second round ships nothing new and stays applied
        let chunk = ship_once(&primary, &follower, "S");
        assert!(chunk.segments.is_empty());
        assert!(chunk.wal_data.is_empty());

        // "kill" the primary; promote the follower and check both the
        // sealed rows and the acknowledged WAL tail survived
        drop((engine, primary));
        let engine2 = DataCell::new();
        let report = follower.promote_replicas(&engine2).unwrap();
        assert_eq!(report.streams, 1);
        assert_eq!(report.replayed_rows, 1);
        assert_eq!(report.segments, 1);
        let snap = engine2.basket("S").unwrap().snapshot();
        assert_eq!(snap.column("id").unwrap().ints().unwrap(), &[3]);
        let seg = follower.stream("S").unwrap();
        let rel = seg.read_segment(&seg.segments()[0].file).unwrap();
        assert_eq!(rel.column("id").unwrap().ints().unwrap(), &[1, 2]);

        // the promoted stream keeps logging durably
        engine2.set_durability(follower.clone());
        engine2
            .ingest("S", &[vec![Value::Int(4), Value::Int(40)]])
            .unwrap();
        assert!(follower.replica_status("S").unwrap().wal_bytes > 0);
    }

    #[test]
    fn epoch_change_truncates_the_replica_wal() {
        let proot = tmp("epoch-p");
        let froot = tmp("epoch-f");
        let engine = DataCell::new();
        let primary = open(&proot);
        engine.set_durability(primary.clone());
        engine.create_stream_persistent("S", &user_schema()).unwrap();
        engine
            .ingest("S", &[vec![Value::Int(1), Value::Int(1)]])
            .unwrap();

        let follower = open(&froot);
        follower.open_replica("S", &user_schema()).unwrap();
        ship_once(&primary, &follower, "S");
        assert!(follower.replica_status("S").unwrap().wal_bytes > 0);

        // the primary seals: epoch bumps, WAL truncates
        engine.flush_stream("S").unwrap();
        engine
            .ingest("S", &[vec![Value::Int(2), Value::Int(2)]])
            .unwrap();
        ship_once(&primary, &follower, "S");
        let fs = follower.replica_status("S").unwrap();
        let ps = primary.replica_status("S").unwrap();
        assert_eq!(fs, ps);
        assert_eq!(fs.segments, 1);

        // promotion sees exactly the primary's surviving state
        let engine2 = DataCell::new();
        let report = follower.promote_replicas(&engine2).unwrap();
        assert_eq!(report.replayed_rows, 1);
        let snap = engine2.basket("S").unwrap().snapshot();
        assert_eq!(snap.column("id").unwrap().ints().unwrap(), &[2]);
    }

    #[test]
    fn apply_wal_rejects_cursor_desync_and_garbage() {
        let froot = tmp("desync-f");
        let follower = open(&froot);
        follower.open_replica("S", &user_schema()).unwrap();
        // wrong offset
        assert!(follower.apply_wal("S", 0, 999, &[]).is_err());
        // non-record-aligned payload
        assert!(follower.apply_wal("S", 0, 0, b"not a wal record").is_err());
        // unknown stream
        assert!(follower.apply_wal("ghost", 0, 0, &[]).is_err());
    }

    #[test]
    fn open_replica_is_idempotent_but_schema_checked() {
        let froot = tmp("idem-f");
        let follower = open(&froot);
        follower.open_replica("S", &user_schema()).unwrap();
        follower.open_replica("S", &user_schema()).unwrap();
        let other = Schema::from_pairs(&[("x", ValueType::Str)]);
        assert!(follower.open_replica("S", &other).is_err());
    }

    #[test]
    fn export_chunk_is_bounded_and_reports_pending_rows() {
        let proot = tmp("cap-p");
        let froot = tmp("cap-f");
        let engine = DataCell::new();
        let primary = open(&proot);
        engine.set_durability(primary.clone());
        engine.create_stream_persistent("S", &user_schema()).unwrap();
        // enough batches that the framed records exceed one chunk
        let wide: Vec<Vec<Value>> = (0..2048)
            .map(|i| vec![Value::Int(i), Value::Int(i)])
            .collect();
        for _ in 0..40 {
            engine.ingest("S", &wide).unwrap();
        }
        let chunk = primary.export_since("S", 0, 0, 0).unwrap();
        if chunk.wal_data.len() < chunk.wal_bytes as usize {
            assert!(chunk.pending_rows > 0, "rows beyond the chunk are counted");
            assert!(chunk.wal_data.len() <= WAL_CHUNK_MAX);
        }
        // chained rounds drain it fully
        let follower = open(&froot);
        follower.open_replica("S", &user_schema()).unwrap();
        loop {
            let c = ship_once(&primary, &follower, "S");
            if c.pending_rows == 0 && c.wal_data.len() == c.wal_bytes as usize - c.wal_from as usize
            {
                break;
            }
        }
        assert_eq!(
            follower.replica_status("S").unwrap(),
            primary.replica_status("S").unwrap()
        );
    }

    #[test]
    fn orphan_segment_is_gced_and_its_id_never_reused() {
        let root = tmp("orphan");
        {
            let engine = DataCell::new();
            let store = open(&root);
            engine.set_durability(store);
            engine.create_stream_persistent("S", &user_schema()).unwrap();
            engine
                .ingest("S", &[vec![Value::Int(1), Value::Int(1)]])
                .unwrap();
            engine.flush_stream("S").unwrap(); // seg-000001.dcs adopted
            engine
                .ingest("S", &[vec![Value::Int(2), Value::Int(2)]])
                .unwrap();
        }
        // simulate a crash between the segment write and the manifest
        // save: a valid-looking orphan appears with the *next* id, plus
        // a leftover tmp file
        let sdir = root.join("streams/S");
        std::fs::copy(sdir.join("seg-000001.dcs"), sdir.join("seg-000002.dcs")).unwrap();
        std::fs::write(sdir.join("seg-000003.tmp"), b"partial segment write").unwrap();

        let engine = DataCell::new();
        let store = open(&root);
        let report = store.recover_into(&engine).unwrap();
        assert_eq!(report.segments, 1, "orphan not adopted");
        assert_eq!(report.replayed_rows, 1, "wal tail intact");
        assert!(!sdir.join("seg-000002.dcs").exists(), "orphan removed");
        assert!(!sdir.join("seg-000003.tmp").exists(), "tmp litter removed");
        // a fresh seal must skip the orphan's id even though it is gone
        engine.set_durability(store.clone());
        engine
            .ingest("S", &[vec![Value::Int(3), Value::Int(3)]])
            .unwrap();
        engine.flush_stream("S").unwrap();
        let segs = store.stream("S").unwrap().segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].file, "seg-000003.dcs", "orphan ids 2 skipped");
    }
}
