//! The versioned store manifest.
//!
//! `MANIFEST` is a small line-oriented text file at the data-dir root
//! recording, for every persistent stream: the user-facing schema, the
//! live segment inventory, and the WAL watermark (seal epoch + rows
//! sealed so far). It is rewritten wholesale on every mutation through
//! a temp file + atomic rename, so a reader (or a crashed writer's
//! successor) always sees either the old or the new complete manifest,
//! never a torn one.
//!
//! ```text
//! dcstore 1 seq=<n>
//! stream name=<s> cols=<c1:int,c2:str,...> wal_epoch=<n> sealed_rows=<n>
//! segment stream=<s> file=<f> rows=<n> bytes=<n>
//! ```

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use datacell::error::{EngineError, Result};
use monet::prelude::*;

/// Manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u64 = 1;

/// One live segment file, as recorded in the manifest. Zone maps live
/// in the segment footer and are loaded lazily via
/// [`crate::segment::read_meta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRef {
    pub file: String,
    pub rows: u64,
    pub bytes: u64,
}

/// One persistent stream's durable state.
#[derive(Debug, Clone)]
pub struct StreamEntry {
    /// User-facing schema (without the automatic timestamp column).
    pub schema: Schema,
    pub segments: Vec<SegmentRef>,
    /// Number of seals performed — each one truncated the WAL, so this
    /// is the watermark separating sealed history from the WAL tail.
    pub wal_epoch: u64,
    /// Total rows moved into segments over the stream's lifetime.
    pub sealed_rows: u64,
}

/// The in-memory manifest plus its on-disk location.
pub struct Manifest {
    root: PathBuf,
    /// Monotone write sequence (bumped on every [`Manifest::save`]).
    seq: u64,
    streams: BTreeMap<String, StreamEntry>,
}

fn type_name(t: ValueType) -> &'static str {
    match t {
        ValueType::Bool => "bool",
        ValueType::Int => "int",
        ValueType::Double => "double",
        ValueType::Str => "str",
        ValueType::Ts => "ts",
    }
}

fn name_type(s: &str) -> Result<ValueType> {
    Ok(match s {
        "bool" => ValueType::Bool,
        "int" => ValueType::Int,
        "double" => ValueType::Double,
        "str" => ValueType::Str,
        "ts" => ValueType::Ts,
        other => {
            return Err(EngineError::Io(format!("manifest: unknown column type {other:?}")))
        }
    })
}

/// `k=v` token lookup over one manifest line.
fn field<'a>(tokens: &'a [&str], key: &str) -> Result<&'a str> {
    tokens
        .iter()
        .find_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| EngineError::Io(format!("manifest: missing field {key}")))
}

fn num(tokens: &[&str], key: &str) -> Result<u64> {
    field(tokens, key)?
        .parse()
        .map_err(|_| EngineError::Io(format!("manifest: bad number in {key}")))
}

impl Manifest {
    /// Path of the live manifest under `root`.
    pub fn path_of(root: &Path) -> PathBuf {
        root.join("MANIFEST")
    }

    /// Load the manifest at `root`, or start an empty one when the file
    /// does not exist yet.
    pub fn load_or_new(root: &Path) -> Result<Manifest> {
        let path = Self::path_of(root);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Manifest {
                    root: root.to_path_buf(),
                    seq: 0,
                    streams: BTreeMap::new(),
                })
            }
            Err(e) => return Err(e.into()),
        };
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| EngineError::Io("manifest: empty file".into()))?;
        let tokens: Vec<&str> = header.split_whitespace().collect();
        if tokens.first() != Some(&"dcstore") {
            return Err(EngineError::Io("manifest: bad header".into()));
        }
        let version: u64 = tokens
            .get(1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| EngineError::Io("manifest: bad version".into()))?;
        if version != MANIFEST_VERSION {
            return Err(EngineError::Io(format!(
                "manifest: version {version} not supported (this build reads {MANIFEST_VERSION})"
            )));
        }
        let seq = num(&tokens, "seq")?;
        let mut streams: BTreeMap<String, StreamEntry> = BTreeMap::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.first().copied() {
                Some("stream") => {
                    let name = field(&tokens, "name")?.to_string();
                    let cols = field(&tokens, "cols")?;
                    let mut fields = Vec::new();
                    if !cols.is_empty() {
                        for col in cols.split(',') {
                            let (n, t) = col.split_once(':').ok_or_else(|| {
                                EngineError::Io(format!("manifest: bad column spec {col:?}"))
                            })?;
                            fields.push(Field::new(n, name_type(t)?));
                        }
                    }
                    let entry = StreamEntry {
                        schema: Schema::new(fields),
                        segments: Vec::new(),
                        wal_epoch: num(&tokens, "wal_epoch")?,
                        sealed_rows: num(&tokens, "sealed_rows")?,
                    };
                    streams.insert(name, entry);
                }
                Some("segment") => {
                    let stream = field(&tokens, "stream")?;
                    let seg = SegmentRef {
                        file: field(&tokens, "file")?.to_string(),
                        rows: num(&tokens, "rows")?,
                        bytes: num(&tokens, "bytes")?,
                    };
                    streams
                        .get_mut(stream)
                        .ok_or_else(|| {
                            EngineError::Io(format!(
                                "manifest: segment for unknown stream {stream}"
                            ))
                        })?
                        .segments
                        .push(seg);
                }
                Some(other) => {
                    return Err(EngineError::Io(format!(
                        "manifest: unknown line kind {other:?}"
                    )))
                }
                None => {}
            }
        }
        Ok(Manifest {
            root: root.to_path_buf(),
            seq,
            streams,
        })
    }

    /// Serialize + atomically replace the on-disk manifest (temp file,
    /// fsync, rename, directory fsync). Bumps the write sequence.
    pub fn save(&mut self) -> Result<()> {
        self.seq += 1;
        let mut out = String::new();
        out.push_str(&format!("dcstore {MANIFEST_VERSION} seq={}\n", self.seq));
        for (name, e) in &self.streams {
            let cols = e
                .schema
                .fields()
                .iter()
                .map(|f| format!("{}:{}", f.name, type_name(f.vtype)))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "stream name={name} cols={cols} wal_epoch={} sealed_rows={}\n",
                e.wal_epoch, e.sealed_rows
            ));
            for s in &e.segments {
                out.push_str(&format!(
                    "segment stream={name} file={} rows={} bytes={}\n",
                    s.file, s.rows, s.bytes
                ));
            }
        }
        let path = Self::path_of(&self.root);
        let tmp = self.root.join("MANIFEST.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        // make the rename itself durable: without the directory fsync a
        // power failure can roll the rename back even though the caller
        // acknowledged state that only the new manifest records
        let dir = std::fs::File::open(&self.root)?;
        dir.sync_all()?;
        Ok(())
    }

    pub fn seq(&self) -> u64 {
        self.seq
    }

    pub fn contains(&self, name: &str) -> bool {
        self.streams.contains_key(name)
    }

    pub fn get(&self, name: &str) -> Option<&StreamEntry> {
        self.streams.get(name)
    }

    /// `(name, user schema)` for every stream, sorted by name.
    pub fn stream_list(&self) -> Vec<(String, Schema)> {
        self.streams
            .iter()
            .map(|(n, e)| (n.clone(), e.schema.clone()))
            .collect()
    }

    /// Register a new stream (no save — callers batch mutations).
    pub fn add_stream(&mut self, name: &str, schema: &Schema) {
        self.streams.insert(
            name.to_string(),
            StreamEntry {
                schema: schema.clone(),
                segments: Vec::new(),
                wal_epoch: 0,
                sealed_rows: 0,
            },
        );
    }

    /// Adopt a segment shipped by replication: inventory + sealed-rows
    /// bookkeeping only. Unlike [`Manifest::note_seal`] this does NOT
    /// bump `wal_epoch` — the follower's epoch tracks the *primary's*
    /// seal history, and moves only via [`Manifest::set_wal_epoch`].
    pub fn add_segment(&mut self, name: &str, segment: SegmentRef, rows: u64) -> Result<()> {
        let e = self
            .streams
            .get_mut(name)
            .ok_or_else(|| EngineError::Unknown(format!("manifest stream {name}")))?;
        e.segments.push(segment);
        e.sealed_rows += rows;
        Ok(())
    }

    /// Set a stream's WAL epoch outright (replica catch-up: the primary
    /// sealed, so the follower truncates its WAL copy and adopts the
    /// primary's epoch instead of deriving its own).
    pub fn set_wal_epoch(&mut self, name: &str, epoch: u64) -> Result<()> {
        let e = self
            .streams
            .get_mut(name)
            .ok_or_else(|| EngineError::Unknown(format!("manifest stream {name}")))?;
        e.wal_epoch = epoch;
        Ok(())
    }

    /// Record a seal: optional new segment, WAL watermark bump.
    pub fn note_seal(&mut self, name: &str, segment: Option<SegmentRef>, rows: u64) -> Result<()> {
        let e = self
            .streams
            .get_mut(name)
            .ok_or_else(|| EngineError::Unknown(format!("manifest stream {name}")))?;
        if let Some(s) = segment {
            e.segments.push(s);
        }
        e.wal_epoch += 1;
        e.sealed_rows += rows;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dcstore-manifest-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrips_streams_and_segments() {
        let root = tmp("roundtrip");
        let mut m = Manifest::load_or_new(&root).unwrap();
        assert_eq!(m.seq(), 0);
        let schema = Schema::from_pairs(&[
            ("id", ValueType::Int),
            ("name", ValueType::Str),
            ("score", ValueType::Double),
            ("ok", ValueType::Bool),
            ("at", ValueType::Ts),
        ]);
        m.add_stream("trades", &schema);
        m.save().unwrap();
        m.note_seal(
            "trades",
            Some(SegmentRef {
                file: "seg-000001.dcs".into(),
                rows: 128,
                bytes: 4096,
            }),
            128,
        )
        .unwrap();
        m.save().unwrap();

        let back = Manifest::load_or_new(&root).unwrap();
        assert_eq!(back.seq(), 2);
        let e = back.get("trades").unwrap();
        assert_eq!(e.schema, schema);
        assert_eq!(e.wal_epoch, 1);
        assert_eq!(e.sealed_rows, 128);
        assert_eq!(
            e.segments,
            vec![SegmentRef {
                file: "seg-000001.dcs".into(),
                rows: 128,
                bytes: 4096
            }]
        );
    }

    #[test]
    fn empty_seal_only_moves_the_watermark() {
        let root = tmp("watermark");
        let mut m = Manifest::load_or_new(&root).unwrap();
        m.add_stream("s", &Schema::from_pairs(&[("a", ValueType::Int)]));
        m.note_seal("s", None, 0).unwrap();
        m.save().unwrap();
        let back = Manifest::load_or_new(&root).unwrap();
        let e = back.get("s").unwrap();
        assert_eq!(e.wal_epoch, 1);
        assert!(e.segments.is_empty());
    }

    #[test]
    fn unsupported_version_and_garbage_rejected() {
        let root = tmp("bad");
        std::fs::write(Manifest::path_of(&root), "dcstore 99 seq=1\n").unwrap();
        assert!(Manifest::load_or_new(&root).is_err());
        std::fs::write(Manifest::path_of(&root), "what 1 seq=1\n").unwrap();
        assert!(Manifest::load_or_new(&root).is_err());
        std::fs::write(
            Manifest::path_of(&root),
            "dcstore 1 seq=1\nsegment stream=ghost file=x rows=1 bytes=1\n",
        )
        .unwrap();
        assert!(Manifest::load_or_new(&root).is_err());
    }

    #[test]
    fn missing_file_is_a_fresh_manifest() {
        let root = tmp("fresh");
        let m = Manifest::load_or_new(&root).unwrap();
        assert!(m.stream_list().is_empty());
    }
}
