//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
//! guarding WAL record payloads and segment footers. Hand-rolled,
//! table-driven: the build environment has no crates registry.
//!
//! Uses the slicing-by-8 variant: eight derived tables let the inner
//! loop fold 8 bytes per step instead of 1, which matters because the
//! checksum sits on the ingest hot path (every accepted batch is
//! CRC'd before it is acknowledged).

/// Eight 256-entry lookup tables (slicing-by-8), built once.
/// `TABLES[0]` is the classic single-byte table; `TABLES[k][b]` is the
/// CRC of byte `b` followed by `k` zero bytes.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xff) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = tables();
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..].try_into().unwrap());
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = (c >> 8) ^ t[0][((c ^ u32::from(b)) & 0xff) as usize];
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // long enough to run several 8-byte slices plus a remainder
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"datacell");
        let mut bytes = b"datacell".to_vec();
        for i in 0..bytes.len() {
            bytes[i] ^= 1;
            assert_ne!(crc32(&bytes), base, "flip at byte {i} must change the crc");
            bytes[i] ^= 1;
        }
    }
}
