//! # dcstore — durable streams for the DataCell
//!
//! Everything in the engine is transient by design (paper §3.2: basket
//! ACID has *no* crash survival). This crate adds the table half of the
//! stream/table duality: a per-stream [`wal::Wal`] for the mutable
//! tail, immutable columnar [`segment`] files for sealed history, and a
//! versioned [`manifest::Manifest`] tying them together, all under one
//! data directory:
//!
//! ```text
//! <data-dir>/
//!   MANIFEST                  stream schemas, segment inventory, WAL watermarks
//!   streams/<name>/wal.log    length+CRC framed batches (the unsealed tail)
//!   streams/<name>/seg-N.dcs  immutable columnar segments + zone-map footers
//! ```
//!
//! [`Store`] implements `datacell`'s `DurabilityProvider`, so the engine
//! calls into it without depending on this crate. The write path:
//! every accepted batch is WAL-appended **before** the in-memory append
//! is acknowledged; sealing (threshold or `FLUSH STREAM`) moves the live
//! rows into a segment and truncates the WAL. [`Store::recover_into`]
//! is the boot path: rebuild streams from the manifest, truncate torn
//! WAL tails, replay intact records into baskets — after which every
//! batch acknowledged before a `kill -9` is present again.

pub mod crc;
pub mod manifest;
pub mod replica;
pub mod segment;
pub mod wal;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use datacell::error::{EngineError, Result};
use datacell::frame::{decode_frame, encode_frame};
use datacell::persist::{DurabilityProvider, PersistStats, StreamPersist};
use datacell::prelude::{DataCell, TS_COLUMN};
use monet::prelude::*;
use parking_lot::Mutex;

use manifest::{Manifest, SegmentRef};
pub use replica::{hex_decode, hex_encode, ExportChunk, ReplicaStatus, SegmentChunk};
pub use segment::{SegmentMeta, Zone};
pub use wal::FsyncPolicy;
use wal::{Wal, WalReplay};

/// WAL record payload kinds (the first byte of every record payload).
/// `REC_FULL` carries a full-schema frame with per-row timestamps;
/// `REC_UNIFORM` carries one i64 LE arrival timestamp followed by a
/// user-columns frame — the compact form for engine-stamped batches,
/// where every row shares the same arrival time.
const REC_FULL: u8 = 0;
const REC_UNIFORM: u8 = 1;

/// Store-wide knobs, set once at open.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions {
    /// WAL fsync cadence (defaults to [`FsyncPolicy::EveryN`] 64).
    pub fsync: FsyncPolicy,
    /// Resident rows above which a persistent basket auto-seals
    /// (0 = seal only on explicit `FLUSH STREAM`).
    pub seal_rows: usize,
}

/// What replay-on-boot did (logged by the daemons before accepting
/// connections).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    pub streams: usize,
    pub replayed_batches: u64,
    pub replayed_rows: u64,
    /// Streams whose WAL had a torn tail (truncated, not fatal).
    pub torn_tails: usize,
    pub segments: u64,
}

/// The durable store rooted at one data directory.
pub struct Store {
    root: PathBuf,
    opts: StoreOptions,
    telemetry: dctrace::Telemetry,
    manifest: Arc<Mutex<Manifest>>,
    streams: Mutex<BTreeMap<String, Arc<StreamStore>>>,
}

impl Store {
    /// Open (creating) the store at `root` and load its manifest.
    pub fn open(
        root: impl Into<PathBuf>,
        opts: StoreOptions,
        telemetry: dctrace::Telemetry,
    ) -> Result<Arc<Store>> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let manifest = Manifest::load_or_new(&root)?;
        Ok(Arc::new(Store {
            root,
            opts,
            telemetry,
            manifest: Arc::new(Mutex::new(manifest)),
            streams: Mutex::new(BTreeMap::new()),
        }))
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn options(&self) -> StoreOptions {
        self.opts
    }

    /// Names of streams with durable state (manifest order).
    pub fn stream_names(&self) -> Vec<String> {
        self.manifest
            .lock()
            .stream_list()
            .into_iter()
            .map(|(n, _)| n)
            .collect()
    }

    /// The per-stream handle, if opened in this process.
    pub fn stream(&self, name: &str) -> Option<Arc<StreamStore>> {
        self.streams.lock().get(name).cloned()
    }

    /// Fsync every open WAL (graceful-shutdown path for `every_n`/`off`
    /// policies).
    pub fn sync_all(&self) -> Result<()> {
        let streams: Vec<Arc<StreamStore>> = self.streams.lock().values().cloned().collect();
        for s in streams {
            s.state.lock().wal.sync()?;
        }
        Ok(())
    }

    /// Rebuild every manifest stream inside `engine`: create the basket,
    /// replay the WAL tail into it (torn tails truncated), then attach
    /// the durability sink so new appends are logged. Call before the
    /// daemon accepts connections.
    pub fn recover_into(&self, engine: &DataCell) -> Result<RecoveryReport> {
        let entries = self.manifest.lock().stream_list();
        let mut report = RecoveryReport::default();
        for (name, user_schema) in entries {
            let basket = engine.create_stream(&name, &user_schema)?;
            let (stream, replay) = self.build_stream(&name, &user_schema)?;
            if replay.torn {
                report.torn_tails += 1;
            }
            for payload in &replay.records {
                let rel = decode_record(&name, payload, &stream.full_schema, &stream.user_schema)?;
                report.replayed_batches += 1;
                report.replayed_rows += basket.append_relation(rel, engine.clock().as_ref())? as u64;
            }
            report.segments += stream.stats().segments;
            basket.set_persist(Arc::clone(&stream) as Arc<dyn StreamPersist>);
            self.streams.lock().insert(name, stream);
            report.streams += 1;
        }
        Ok(report)
    }

    fn stream_dir(&self, name: &str) -> PathBuf {
        self.root.join("streams").join(name)
    }

    /// Open WAL + segment inventory for one stream (no manifest write,
    /// no replay application — callers decide what to do with the
    /// returned records).
    fn build_stream(&self, name: &str, user_schema: &Schema) -> Result<(Arc<StreamStore>, WalReplay)> {
        validate_name(name)?;
        for f in user_schema.fields() {
            validate_col(&f.name)?;
        }
        let dir = self.stream_dir(name);
        std::fs::create_dir_all(&dir)?;
        let mut fields = user_schema.fields().to_vec();
        fields.push(Field::new(TS_COLUMN, ValueType::Ts));
        let full_schema = Schema::new(fields);
        let hist = self
            .telemetry
            .histogram("dc_wal_fsync_micros", &[("stream", name)]);
        let (wal, replay) = Wal::open(&dir.join("wal.log"), self.opts.fsync, hist)?;
        let segments: Vec<SegmentRef> = self
            .manifest
            .lock()
            .get(name)
            .map(|e| e.segments.clone())
            .unwrap_or_default();
        let mut next_seg = segments
            .iter()
            .filter_map(|s| seg_id_of(&s.file))
            .max()
            .unwrap_or(0)
            + 1;
        // orphan GC: a crash between a segment file landing and the
        // manifest adopting it (seal writes the segment first) leaves a
        // seg-*.dcs (or its .tmp) the manifest never saw. Its rows are
        // still in the WAL — truncation follows the manifest save — so
        // removal loses nothing; what must never happen is reusing its
        // id for a fresh seal, so the id is skipped even if the unlink
        // fails.
        let known: std::collections::BTreeSet<&str> =
            segments.iter().map(|s| s.file.as_str()).collect();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let fname = entry.file_name();
                let Some(fname) = fname.to_str() else { continue };
                if known.contains(fname) {
                    continue;
                }
                let orphan_id = seg_id_of(fname);
                let seg_tmp = fname.starts_with("seg-") && fname.ends_with(".tmp");
                if orphan_id.is_none() && !seg_tmp {
                    continue; // wal.log and anything else stays
                }
                if let Some(id) = orphan_id {
                    next_seg = next_seg.max(id + 1);
                }
                let _ = std::fs::remove_file(entry.path());
            }
        }
        let stream = Arc::new(StreamStore {
            name: name.to_string(),
            dir,
            full_schema,
            user_schema: user_schema.clone(),
            seal_rows: self.opts.seal_rows,
            manifest: Arc::clone(&self.manifest),
            wal_bytes: AtomicU64::new(wal.bytes()),
            segment_count: AtomicU64::new(segments.len() as u64),
            sealed_rows: AtomicU64::new(
                self.manifest
                    .lock()
                    .get(name)
                    .map(|e| e.sealed_rows)
                    .unwrap_or(0),
            ),
            next_seg: AtomicU64::new(next_seg),
            recorder: self.telemetry.recorder(),
            state: Mutex::new(StreamState { wal, segments }),
        });
        Ok((stream, replay))
    }
}

impl DurabilityProvider for Store {
    fn open_stream(&self, name: &str, user_schema: &Schema) -> Result<Arc<dyn StreamPersist>> {
        // validate before the manifest write: a rejected name must leave
        // no manifest entry behind
        validate_name(name)?;
        for f in user_schema.fields() {
            validate_col(&f.name)?;
        }
        {
            let mut m = self.manifest.lock();
            if m.contains(name) {
                return Err(EngineError::Duplicate(format!("durable stream {name}")));
            }
            m.add_stream(name, user_schema);
            m.save()?;
        }
        let (stream, replay) = self.build_stream(name, user_schema)?;
        if !replay.records.is_empty() || replay.torn {
            // stale log from state the manifest no longer knows about —
            // a *new* stream starts empty
            stream.state.lock().wal.truncate_all()?;
            stream.wal_bytes.store(0, Ordering::Relaxed);
        }
        self.streams.lock().insert(name.to_string(), Arc::clone(&stream));
        Ok(stream)
    }
}

/// Stream names become directory names; column names are embedded in
/// manifest lines. Keep both to identifier-ish characters.
fn validate_name(name: &str) -> Result<()> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(EngineError::Config(format!(
            "stream name {name:?} cannot be persisted (use [A-Za-z0-9_-])"
        )));
    }
    Ok(())
}

fn validate_col(name: &str) -> Result<()> {
    if name.is_empty() || name.contains([',', ':']) || name.chars().any(char::is_whitespace) {
        return Err(EngineError::Config(format!(
            "column name {name:?} cannot be persisted"
        )));
    }
    Ok(())
}

/// Decode one WAL record payload back into a full-schema relation.
/// The replayed batch is width-complete, so the basket appends it
/// without restamping — recovered rows keep their original arrival
/// timestamps.
fn decode_record(name: &str, payload: &[u8], full: &Schema, user: &Schema) -> Result<Relation> {
    let bad = |what: &str| EngineError::Io(format!("stream {name}: {what}"));
    let frame_of = |bytes: &[u8], schema: &Schema| -> Result<Relation> {
        let (rel, used) =
            decode_frame(bytes, schema)?.ok_or_else(|| bad("wal record is a truncated frame"))?;
        if used != bytes.len() {
            return Err(bad("wal record has trailing bytes"));
        }
        Ok(rel)
    };
    match payload.split_first() {
        Some((&REC_FULL, rest)) => frame_of(rest, full),
        Some((&REC_UNIFORM, rest)) => {
            let Some((ts_bytes, frame)) = rest.split_first_chunk::<8>() else {
                return Err(bad("wal record is missing its arrival timestamp"));
            };
            let ts = i64::from_le_bytes(*ts_bytes);
            let mut rel = frame_of(frame, user)?;
            rel.add_column(TS_COLUMN, Column::from_ts(vec![ts; rel.len()]))?;
            Ok(rel)
        }
        _ => Err(bad("wal record has an unknown kind byte")),
    }
}

fn seg_file_name(id: u64) -> String {
    format!("seg-{id:06}.dcs")
}

fn seg_id_of(file: &str) -> Option<u64> {
    file.strip_prefix("seg-")?.strip_suffix(".dcs")?.parse().ok()
}

struct StreamState {
    wal: Wal,
    segments: Vec<SegmentRef>,
}

/// Durable state of one stream: the WAL tail plus the segment
/// inventory. Implements the engine-facing [`StreamPersist`] sink.
pub struct StreamStore {
    name: String,
    dir: PathBuf,
    full_schema: Schema,
    user_schema: Schema,
    seal_rows: usize,
    manifest: Arc<Mutex<Manifest>>,
    // mirrored counters so `stats()` never takes the state lock (it is
    // called from STATS while ingest holds basket + state locks)
    wal_bytes: AtomicU64,
    segment_count: AtomicU64,
    sealed_rows: AtomicU64,
    next_seg: AtomicU64,
    /// Span sink for traced batches (`None` when telemetry is off).
    recorder: Option<Arc<dctrace::FlightRecorder>>,
    state: Mutex<StreamState>,
}

impl StreamStore {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Full on-disk schema (user columns + arrival timestamp).
    pub fn full_schema(&self) -> &Schema {
        &self.full_schema
    }

    /// Live segment inventory (file names under the stream directory).
    pub fn segments(&self) -> Vec<SegmentRef> {
        self.state.lock().segments.clone()
    }

    /// Lazily load one segment's footer metadata (rows + zone maps).
    pub fn segment_meta(&self, file: &str) -> Result<SegmentMeta> {
        segment::read_meta(&self.dir.join(file)).map(|(m, _)| m)
    }

    /// Read one segment back in full (tests, future followers).
    pub fn read_segment(&self, file: &str) -> Result<Relation> {
        segment::read_segment(&self.dir.join(file), &self.full_schema).map(|(r, _)| r)
    }
}

impl StreamPersist for StreamStore {
    fn log_append(&self, batch: &Relation, uniform_ts: Option<i64>) -> Result<()> {
        // when the receptor thread is appending a traced batch (the
        // thread-local is set around the basket append), time the whole
        // durable path — encode, checksum, write, fsync — as one span
        let trace_batch = if self.recorder.is_some() {
            dctrace::span::current_batch()
        } else {
            0
        };
        let span_started = (trace_batch != 0).then(std::time::Instant::now);
        let mut buf = Vec::new();
        match uniform_ts {
            // the engine stamped every row with the same arrival time:
            // log the user columns plus that one value — a full column
            // less to encode, checksum and write on the hot path
            Some(ts) if batch.width() == self.full_schema.width() => {
                buf.push(REC_UNIFORM);
                buf.extend_from_slice(&ts.to_le_bytes());
                let user: Vec<&str> = batch.names()[..batch.width() - 1]
                    .iter()
                    .map(String::as_str)
                    .collect();
                // Arc column shares — O(width), no row copies
                let rel = batch.project(&user)?;
                encode_frame(&mut buf, &rel)?;
            }
            _ => {
                buf.push(REC_FULL);
                encode_frame(&mut buf, batch)?;
            }
        }
        let mut st = self.state.lock();
        st.wal.append(&buf)?;
        self.wal_bytes.store(st.wal.bytes(), Ordering::Relaxed);
        if let (Some(r), Some(started)) = (&self.recorder, span_started) {
            r.record(
                "span",
                None,
                format!(
                    "batch={trace_batch} hop=wal_append dur_micros={} stream={}",
                    started.elapsed().as_micros(),
                    self.name
                ),
            );
        }
        Ok(())
    }

    fn seal(&self, snapshot: &Relation) -> Result<()> {
        let mut st = self.state.lock();
        let seg = if snapshot.is_empty() {
            None
        } else {
            let id = self.next_seg.fetch_add(1, Ordering::Relaxed);
            let file = seg_file_name(id);
            let (_, bytes) = segment::write_segment(&self.dir.join(&file), snapshot)?;
            let seg = SegmentRef {
                file,
                rows: snapshot.len() as u64,
                bytes,
            };
            st.segments.push(seg.clone());
            Some(seg)
        };
        {
            let mut m = self.manifest.lock();
            m.note_seal(&self.name, seg, snapshot.len() as u64)?;
            m.save()?;
        }
        st.wal.truncate_all()?;
        self.wal_bytes.store(0, Ordering::Relaxed);
        self.segment_count
            .store(st.segments.len() as u64, Ordering::Relaxed);
        self.sealed_rows
            .fetch_add(snapshot.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn seal_threshold(&self) -> usize {
        self.seal_rows
    }

    fn stats(&self) -> PersistStats {
        PersistStats {
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            segments: self.segment_count.load(Ordering::Relaxed),
            sealed_rows: self.sealed_rows.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dcstore-store-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn user_schema() -> Schema {
        Schema::from_pairs(&[("id", ValueType::Int), ("payload", ValueType::Int)])
    }

    #[test]
    fn create_log_kill_recover() {
        let root = tmp("recover");
        let engine = DataCell::new();
        let store = Store::open(&root, StoreOptions::default(), dctrace::Telemetry::disabled())
            .unwrap();
        engine.set_durability(store.clone());
        let basket = engine.create_stream_persistent("S", &user_schema()).unwrap();
        engine
            .ingest(
                "S",
                &[
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(20)],
                ],
            )
            .unwrap();
        engine
            .ingest("S", &[vec![Value::Int(3), Value::Int(30)]])
            .unwrap();
        assert!(basket.persist_stats().unwrap().wal_bytes > 0);
        drop((engine, store)); // "kill": no sync beyond policy, no seal

        let engine2 = DataCell::new();
        let store2 = Store::open(&root, StoreOptions::default(), dctrace::Telemetry::disabled())
            .unwrap();
        let report = store2.recover_into(&engine2).unwrap();
        assert_eq!(report.streams, 1);
        assert_eq!(report.replayed_batches, 2);
        assert_eq!(report.replayed_rows, 3);
        assert_eq!(report.torn_tails, 0);
        let snap = engine2.basket("S").unwrap().snapshot();
        assert_eq!(snap.column("id").unwrap().ints().unwrap(), &[1, 2, 3]);
        engine2.set_durability(store2);
        // recovered stream keeps logging
        engine2
            .ingest("S", &[vec![Value::Int(4), Value::Int(40)]])
            .unwrap();
        assert!(engine2.basket("S").unwrap().persist_stats().unwrap().wal_bytes > 0);
    }

    #[test]
    fn seal_moves_rows_to_segment_and_truncates_wal() {
        let root = tmp("seal");
        let engine = DataCell::new();
        let store = Store::open(&root, StoreOptions::default(), dctrace::Telemetry::disabled())
            .unwrap();
        engine.set_durability(store.clone());
        engine.create_stream_persistent("S", &user_schema()).unwrap();
        engine
            .ingest(
                "S",
                &[
                    vec![Value::Int(7), Value::Int(70)],
                    vec![Value::Int(8), Value::Int(80)],
                ],
            )
            .unwrap();
        let sealed = engine.flush_stream("S").unwrap();
        assert_eq!(sealed, 2);
        let basket = engine.basket("S").unwrap();
        assert!(basket.is_empty(), "sealed rows left the hot basket");
        let stats = basket.persist_stats().unwrap();
        assert_eq!(stats.wal_bytes, 0, "wal truncated up to the sealed offset");
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.sealed_rows, 2);

        let ss = store.stream("S").unwrap();
        let segs = ss.segments();
        assert_eq!(segs.len(), 1);
        let rel = ss.read_segment(&segs[0].file).unwrap();
        assert_eq!(rel.column("id").unwrap().ints().unwrap(), &[7, 8]);
        let meta = ss.segment_meta(&segs[0].file).unwrap();
        assert_eq!(meta.rows, 2);
        assert_eq!(meta.cols[0].1, Some(Zone::Int { min: 7, max: 8 }));

        // restart: segments survive in the manifest, basket starts empty
        let engine2 = DataCell::new();
        let store2 = Store::open(&root, StoreOptions::default(), dctrace::Telemetry::disabled())
            .unwrap();
        let report = store2.recover_into(&engine2).unwrap();
        assert_eq!(report.replayed_rows, 0);
        assert_eq!(report.segments, 1);
        assert!(engine2.basket("S").unwrap().is_empty());
    }

    #[test]
    fn threshold_auto_seals() {
        let root = tmp("threshold");
        let engine = DataCell::new();
        let store = Store::open(
            &root,
            StoreOptions {
                seal_rows: 4,
                ..StoreOptions::default()
            },
            dctrace::Telemetry::disabled(),
        )
        .unwrap();
        engine.set_durability(store);
        engine.create_stream_persistent("S", &user_schema()).unwrap();
        for i in 0..6 {
            engine
                .ingest("S", &[vec![Value::Int(i), Value::Int(i)]])
                .unwrap();
        }
        let basket = engine.basket("S").unwrap();
        let stats = basket.persist_stats().unwrap();
        assert_eq!(stats.segments, 1, "crossed the 4-row threshold once");
        assert_eq!(stats.sealed_rows, 4);
        assert_eq!(basket.len(), 2, "tail stays hot");
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_recovery() {
        let root = tmp("torn");
        {
            let engine = DataCell::new();
            let store =
                Store::open(&root, StoreOptions::default(), dctrace::Telemetry::disabled())
                    .unwrap();
            engine.set_durability(store);
            engine.create_stream_persistent("S", &user_schema()).unwrap();
            engine
                .ingest("S", &[vec![Value::Int(1), Value::Int(1)]])
                .unwrap();
        }
        // torn tail: half a record header
        let wal = root.join("streams/S/wal.log");
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[0x55, 0x66, 0x77]);
        std::fs::write(&wal, &bytes).unwrap();

        let engine = DataCell::new();
        let store =
            Store::open(&root, StoreOptions::default(), dctrace::Telemetry::disabled()).unwrap();
        let report = store.recover_into(&engine).unwrap();
        assert_eq!(report.torn_tails, 1);
        assert_eq!(report.replayed_rows, 1);
        assert_eq!(engine.basket("S").unwrap().len(), 1);
    }

    #[test]
    fn persist_requires_a_provider_and_valid_names() {
        let engine = DataCell::new();
        assert!(matches!(
            engine.create_stream_persistent("S", &user_schema()),
            Err(EngineError::Config(_))
        ));
        let root = tmp("names");
        let store =
            Store::open(&root, StoreOptions::default(), dctrace::Telemetry::disabled()).unwrap();
        engine.set_durability(store);
        assert!(engine.create_stream_persistent("../evil", &user_schema()).is_err());
        assert!(
            engine.basket("../evil").is_err(),
            "failed persistent create leaves no basket behind"
        );
    }

    #[test]
    fn fsync_histogram_is_recorded_when_telemetry_is_live() {
        let root = tmp("telemetry");
        let t = dctrace::Telemetry::enabled();
        let engine = DataCell::new();
        let store = Store::open(
            &root,
            StoreOptions {
                fsync: FsyncPolicy::Always,
                seal_rows: 0,
            },
            t.clone(),
        )
        .unwrap();
        engine.set_durability(store);
        engine.create_stream_persistent("S", &user_schema()).unwrap();
        engine
            .ingest("S", &[vec![Value::Int(1), Value::Int(1)]])
            .unwrap();
        let snap = t
            .hist_snapshot("dc_wal_fsync_micros", &[("stream", "S")])
            .unwrap();
        assert!(snap.count >= 1, "fsync latency sampled");
    }
}
