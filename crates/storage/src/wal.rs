//! Per-stream write-ahead log.
//!
//! An append-only file of length+CRC framed records; each record payload
//! is one `datacell::frame` binary frame carrying an accepted ingest
//! batch (full basket schema, arrival timestamps included).
//!
//! ## Record layout
//!
//! ```text
//! u32 LE   payload length
//! u32 LE   CRC-32 of the payload
//! payload  (a binary frame)
//! ```
//!
//! ## Recovery semantics
//!
//! A crash (`kill -9` included) can leave a *torn tail*: a partially
//! written record at the end of the file. [`Wal::open`] scans the file
//! record-by-record, keeps every record whose length fits and whose CRC
//! matches, and **truncates** the file at the first bad/short record —
//! a torn tail is data that was never acknowledged, so dropping it is
//! correct, and leaving it would corrupt later appends.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] decides when an append reaches the platter:
//! `always` (fsync every record — strongest, slowest), `every_n:<N>`
//! (fsync once per N records — bounded loss window of N-1 batches on
//! power failure, but `kill -9` loses nothing since the kernel still
//! has the writes), and `off` (leave it to the OS). Sync latency is
//! recorded into the `dc_wal_fsync_micros{stream}` histogram when
//! telemetry is live.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use datacell::error::{EngineError, Result};

use crate::crc::crc32;

/// Bytes of record header (length + CRC words).
pub const RECORD_HEADER: usize = 8;

/// Upper bound on one record payload — a frame plus slack. Anything
/// larger in a length word is definitionally corrupt.
pub const MAX_RECORD_LEN: usize = datacell::frame::MAX_FRAME_LEN + 64;

/// When to fsync WAL appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `sync_data` after every appended record.
    Always,
    /// `sync_data` once every N appended records.
    EveryN(u64),
    /// Never fsync explicitly; the OS flushes on its own schedule.
    Off,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(64)
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::EveryN(n) => write!(f, "every_n:{n}"),
            FsyncPolicy::Off => f.write_str("off"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("always") {
            return Ok(FsyncPolicy::Always);
        }
        if s.eq_ignore_ascii_case("off") {
            return Ok(FsyncPolicy::Off);
        }
        let rest = s
            .strip_prefix("every_n")
            .or_else(|| s.strip_prefix("EVERY_N"))
            .ok_or_else(|| format!("unknown fsync policy {s:?} (always | every_n[:N] | off)"))?;
        if rest.is_empty() {
            return Ok(FsyncPolicy::default());
        }
        let n: u64 = rest
            .strip_prefix(':')
            .and_then(|n| n.parse().ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("bad fsync interval in {s:?} (want every_n:<N>, N >= 1)"))?;
        Ok(FsyncPolicy::EveryN(n))
    }
}

/// What a boot-time WAL scan found.
#[derive(Debug)]
pub struct WalReplay {
    /// Intact record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// File offset up to which records were intact.
    pub valid_bytes: u64,
    /// Whether a torn/corrupt tail was found (and truncated) after
    /// `valid_bytes`.
    pub torn: bool,
}

/// Scan `bytes` as a record stream; stops at the first short or
/// corrupt record. Public so replication can validate shipped WAL
/// chunks (and cut them at record boundaries) with the exact decoder
/// recovery uses.
pub fn scan_records(bytes: &[u8]) -> WalReplay {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(header) = bytes.get(at..at + RECORD_HEADER) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break;
        }
        let Some(payload) = bytes.get(at + RECORD_HEADER..at + RECORD_HEADER + len) else {
            break;
        };
        if crc32(payload) != want {
            break;
        }
        records.push(payload.to_vec());
        at += RECORD_HEADER + len;
    }
    WalReplay {
        records,
        valid_bytes: at as u64,
        torn: at < bytes.len(),
    }
}

/// The log for one stream.
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    bytes: u64,
    appends_since_sync: u64,
    fsync_hist: Option<Arc<dctrace::Histogram>>,
}

impl Wal {
    /// Open (creating if absent) the WAL at `path`, returning the log
    /// positioned for appends plus the intact records found in it. A
    /// torn tail is truncated away before the handle is returned.
    pub fn open(
        path: &Path,
        policy: FsyncPolicy,
        fsync_hist: Option<Arc<dctrace::Histogram>>,
    ) -> Result<(Wal, WalReplay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = scan_records(&bytes);
        if replay.torn {
            file.set_len(replay.valid_bytes)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(replay.valid_bytes))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                policy,
                bytes: replay.valid_bytes,
                appends_since_sync: 0,
                fsync_hist,
            },
            replay,
        ))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log size in bytes (the STATS `wal_bytes` field).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one record; syncs according to the policy. On success the
    /// record will survive a process kill (and, policy permitting, a
    /// power failure).
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(EngineError::Io(format!(
                "wal record of {} bytes exceeds the {MAX_RECORD_LEN}-byte limit",
                payload.len()
            )));
        }
        let mut header = [0u8; RECORD_HEADER];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        // two writes instead of copying the payload into a framed
        // buffer: appends are batch-sized, so the extra syscall is
        // cheaper than the extra memcpy + allocation
        self.file.write_all(&header)?;
        self.file.write_all(payload)?;
        self.bytes += (RECORD_HEADER + payload.len()) as u64;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Append pre-framed record bytes verbatim (header + CRC + payload,
    /// as produced by another WAL) and sync. The replication apply path:
    /// the caller has already validated the chunk with [`scan_records`],
    /// so re-framing would only recompute checksums that shipped intact.
    pub fn append_framed(&mut self, framed: &[u8]) -> Result<()> {
        self.file.write_all(framed)?;
        self.bytes += framed.len() as u64;
        // replicated bytes are acknowledged upstream — always make them
        // durable before the apply is acknowledged back
        self.sync()
    }

    /// Force a data sync now (shutdown, seal, policy trigger).
    pub fn sync(&mut self) -> Result<()> {
        let started = std::time::Instant::now();
        self.file.sync_data()?;
        if let Some(h) = &self.fsync_hist {
            h.record(started.elapsed().as_micros() as u64);
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Drop every record: the covered rows were sealed into a segment
    /// (or consumed), so the log restarts empty.
    pub fn truncate_all(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.bytes = 0;
        self.appends_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dcstore-wal-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, replay) = Wal::open(&path, FsyncPolicy::Always, None).unwrap();
        assert!(replay.records.is_empty());
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        drop(wal);
        let (wal, replay) = Wal::open(&path, FsyncPolicy::Off, None).unwrap();
        assert_eq!(replay.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!replay.torn);
        assert_eq!(wal.bytes(), replay.valid_bytes);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Always, None).unwrap();
        wal.append(b"good").unwrap();
        let good_len = wal.bytes();
        drop(wal);
        // simulate a crash mid-record: header promising more bytes than exist
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&100u32.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"partial").unwrap();
        drop(f);
        let (wal, replay) = Wal::open(&path, FsyncPolicy::Off, None).unwrap();
        assert_eq!(replay.records, vec![b"good".to_vec()]);
        assert!(replay.torn);
        assert_eq!(replay.valid_bytes, good_len);
        assert_eq!(
            std::fs::metadata(wal.path()).unwrap().len(),
            good_len,
            "tail physically truncated"
        );
    }

    #[test]
    fn corrupt_crc_stops_replay_at_the_flip() {
        let path = tmp("crc");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Always, None).unwrap();
        wal.append(b"aaaa").unwrap();
        wal.append(b"bbbb").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload = RECORD_HEADER + 4 + RECORD_HEADER;
        bytes[second_payload] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path, FsyncPolicy::Off, None).unwrap();
        assert_eq!(replay.records, vec![b"aaaa".to_vec()]);
        assert!(replay.torn);
    }

    #[test]
    fn truncate_all_resets() {
        let path = tmp("trunc");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::EveryN(2), None).unwrap();
        wal.append(b"x").unwrap();
        assert!(wal.bytes() > 0);
        wal.truncate_all().unwrap();
        assert_eq!(wal.bytes(), 0);
        wal.append(b"y").unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, FsyncPolicy::Off, None).unwrap();
        assert_eq!(replay.records, vec![b"y".to_vec()]);
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!("always".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Always);
        assert_eq!("OFF".parse::<FsyncPolicy>().unwrap(), FsyncPolicy::Off);
        assert_eq!(
            "every_n".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::default()
        );
        assert_eq!(
            "every_n:7".parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::EveryN(7)
        );
        assert!("every_n:0".parse::<FsyncPolicy>().is_err());
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
        assert_eq!(FsyncPolicy::EveryN(7).to_string(), "every_n:7");
        assert_eq!(
            FsyncPolicy::EveryN(7).to_string().parse::<FsyncPolicy>().unwrap(),
            FsyncPolicy::EveryN(7)
        );
    }
}
