//! Immutable columnar segment files.
//!
//! A segment is a sealed basket snapshot: the body is exactly one
//! `datacell::frame` binary frame (per-column type tag + validity +
//! contiguous values — the same codec the wire uses, so sealing is a
//! columnar serialization, never a row-wise re-encode), followed by a
//! footer carrying the row count and per-column min/max **zone maps**,
//! and a fixed 12-byte trailer that locates the footer from the end of
//! the file:
//!
//! ```text
//! [frame bytes]                       the sealed relation, full schema
//! [footer]                            varint rows, varint ncols,
//!                                     per column: u8 type tag,
//!                                     u8 zone kind (0 none/1 int/2 double),
//!                                     [min 8B LE][max 8B LE] when present
//! u32 LE  footer length
//! u32 LE  CRC-32 of the footer
//! b"DSEG"                             magic
//! ```
//!
//! Readers that only need metadata ([`read_meta`]) read the trailer +
//! footer — O(columns), never the body — which is what lets boot-time
//! recovery load segment inventories lazily.

use std::io::Write;
use std::path::Path;

use datacell::error::{EngineError, Result};
use datacell::frame::decode_frame;
use monet::prelude::*;

use crate::crc::crc32;

/// Trailing magic identifying a complete segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"DSEG";

/// Bytes of trailer after the footer (len + crc + magic).
const TRAILER_LEN: usize = 12;

/// Per-column min/max statistics over the non-NULL values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Zone {
    /// Int and Ts columns.
    Int { min: i64, max: i64 },
    /// Double columns (NaNs are excluded from the range).
    Double { min: f64, max: f64 },
}

/// The footer contents: everything a planner needs without the body.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    pub rows: u64,
    /// Per column: the frame type tag (0 bool, 1 int, 2 double, 3 str,
    /// 4 ts) and the zone map, when the type has one and the column has
    /// at least one non-NULL value.
    pub cols: Vec<(u8, Option<Zone>)>,
}

fn type_tag(t: ValueType) -> u8 {
    match t {
        ValueType::Bool => 0,
        ValueType::Int => 1,
        ValueType::Double => 2,
        ValueType::Str => 3,
        ValueType::Ts => 4,
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or_else(|| EngineError::Io("segment footer truncated".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(EngineError::Io("segment footer varint overflow".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Min/max over the valid (non-NULL) values of one column.
fn zone_of(col: &Column, rows: usize) -> Option<Zone> {
    let valid = |i: usize| col.validity().map(|m| m.get(i)).unwrap_or(true);
    match col.data() {
        ColumnData::Int(v) | ColumnData::Ts(v) => {
            let mut range: Option<(i64, i64)> = None;
            for (i, &x) in v.iter().take(rows).enumerate() {
                if !valid(i) {
                    continue;
                }
                range = Some(match range {
                    None => (x, x),
                    Some((lo, hi)) => (lo.min(x), hi.max(x)),
                });
            }
            range.map(|(min, max)| Zone::Int { min, max })
        }
        ColumnData::Double(v) => {
            let mut range: Option<(f64, f64)> = None;
            for (i, &x) in v.iter().take(rows).enumerate() {
                if !valid(i) || x.is_nan() {
                    continue;
                }
                range = Some(match range {
                    None => (x, x),
                    Some((lo, hi)) => (lo.min(x), hi.max(x)),
                });
            }
            range.map(|(min, max)| Zone::Double { min, max })
        }
        ColumnData::Bool(_) | ColumnData::Str(_) => None,
    }
}

fn encode_footer(meta: &SegmentMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + meta.cols.len() * 18);
    put_varint(&mut out, meta.rows);
    put_varint(&mut out, meta.cols.len() as u64);
    for (tag, zone) in &meta.cols {
        out.push(*tag);
        match zone {
            None => out.push(0),
            Some(Zone::Int { min, max }) => {
                out.push(1);
                out.extend_from_slice(&min.to_le_bytes());
                out.extend_from_slice(&max.to_le_bytes());
            }
            Some(Zone::Double { min, max }) => {
                out.push(2);
                out.extend_from_slice(&min.to_le_bytes());
                out.extend_from_slice(&max.to_le_bytes());
            }
        }
    }
    out
}

fn decode_footer(footer: &[u8]) -> Result<SegmentMeta> {
    let truncated = || EngineError::Io("segment footer truncated".into());
    let mut at = 0usize;
    let rows = get_varint(footer, &mut at)?;
    let ncols = get_varint(footer, &mut at)?;
    if ncols > footer.len() as u64 {
        return Err(EngineError::Io("segment footer column count corrupt".into()));
    }
    let mut cols = Vec::with_capacity(ncols as usize);
    for _ in 0..ncols {
        let &tag = footer.get(at).ok_or_else(truncated)?;
        let &kind = footer.get(at + 1).ok_or_else(truncated)?;
        at += 2;
        let zone = match kind {
            0 => None,
            1 | 2 => {
                let raw = footer.get(at..at + 16).ok_or_else(truncated)?;
                at += 16;
                let lo = <[u8; 8]>::try_from(&raw[..8]).unwrap();
                let hi = <[u8; 8]>::try_from(&raw[8..]).unwrap();
                if kind == 1 {
                    Some(Zone::Int {
                        min: i64::from_le_bytes(lo),
                        max: i64::from_le_bytes(hi),
                    })
                } else {
                    Some(Zone::Double {
                        min: f64::from_le_bytes(lo),
                        max: f64::from_le_bytes(hi),
                    })
                }
            }
            other => {
                return Err(EngineError::Io(format!("unknown zone kind {other}")))
            }
        };
        cols.push((tag, zone));
    }
    if at != footer.len() {
        return Err(EngineError::Io("segment footer has trailing bytes".into()));
    }
    Ok(SegmentMeta { rows, cols })
}

/// Compute the footer metadata for `rel` without writing anything.
pub fn meta_of(rel: &Relation) -> SegmentMeta {
    let rows = rel.len();
    SegmentMeta {
        rows: rows as u64,
        cols: (0..rel.width())
            .map(|c| {
                let col = rel.col_at(c);
                (type_tag(col.vtype()), zone_of(col, rows))
            })
            .collect(),
    }
}

/// Write `rel` as an immutable segment at `path` (via a temp file +
/// rename, so a crash never leaves a half-written segment under the
/// final name). Returns the footer metadata and the file size.
pub fn write_segment(path: &Path, rel: &Relation) -> Result<(SegmentMeta, u64)> {
    let meta = meta_of(rel);
    let mut buf = Vec::new();
    datacell::frame::encode_frame(&mut buf, rel)?;
    let footer = encode_footer(&meta);
    let footer_len = footer.len();
    buf.extend_from_slice(&footer);
    buf.extend_from_slice(&(footer_len as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&footer).to_le_bytes());
    buf.extend_from_slice(&SEGMENT_MAGIC);

    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok((meta, buf.len() as u64))
}

/// Locate and parse the footer in a fully read segment image.
fn footer_slice(bytes: &[u8]) -> Result<(&[u8], usize)> {
    if bytes.len() < TRAILER_LEN {
        return Err(EngineError::Io("segment file too short".into()));
    }
    let trailer = &bytes[bytes.len() - TRAILER_LEN..];
    if trailer[8..] != SEGMENT_MAGIC {
        return Err(EngineError::Io("segment magic missing".into()));
    }
    let footer_len = u32::from_le_bytes(trailer[..4].try_into().unwrap()) as usize;
    let want = u32::from_le_bytes(trailer[4..8].try_into().unwrap());
    let body_end = bytes
        .len()
        .checked_sub(TRAILER_LEN + footer_len)
        .ok_or_else(|| EngineError::Io("segment footer length corrupt".into()))?;
    let footer = &bytes[body_end..bytes.len() - TRAILER_LEN];
    if crc32(footer) != want {
        return Err(EngineError::Io("segment footer checksum mismatch".into()));
    }
    Ok((footer, body_end))
}

/// Read only the footer metadata (O(columns), seeks to the tail).
pub fn read_meta(path: &Path) -> Result<(SegmentMeta, u64)> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path)?;
    let len = f.metadata()?.len();
    if len < TRAILER_LEN as u64 {
        return Err(EngineError::Io("segment file too short".into()));
    }
    // read the trailer, then exactly the footer
    let mut trailer = [0u8; TRAILER_LEN];
    f.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
    f.read_exact(&mut trailer)?;
    if trailer[8..] != SEGMENT_MAGIC {
        return Err(EngineError::Io("segment magic missing".into()));
    }
    let footer_len = u32::from_le_bytes(trailer[..4].try_into().unwrap()) as u64;
    let want = u32::from_le_bytes(trailer[4..8].try_into().unwrap());
    if footer_len + TRAILER_LEN as u64 > len {
        return Err(EngineError::Io("segment footer length corrupt".into()));
    }
    let mut footer = vec![0u8; footer_len as usize];
    f.seek(SeekFrom::End(-((TRAILER_LEN as u64 + footer_len) as i64)))?;
    f.read_exact(&mut footer)?;
    if crc32(&footer) != want {
        return Err(EngineError::Io("segment footer checksum mismatch".into()));
    }
    Ok((decode_footer(&footer)?, len))
}

/// Read the whole segment back as a relation (plus its footer).
/// `schema` is the sealed basket's full schema.
pub fn read_segment(path: &Path, schema: &Schema) -> Result<(Relation, SegmentMeta)> {
    let bytes = std::fs::read(path)?;
    let (footer, body_end) = footer_slice(&bytes)?;
    let meta = decode_footer(footer)?;
    let (rel, used) = decode_frame(&bytes[..body_end], schema)?
        .ok_or_else(|| EngineError::Io("segment body is a truncated frame".into()))?;
    if used != body_end {
        return Err(EngineError::Io("segment body has trailing bytes".into()));
    }
    if rel.len() as u64 != meta.rows {
        return Err(EngineError::Io(format!(
            "segment body has {} rows, footer says {}",
            rel.len(),
            meta.rows
        )));
    }
    Ok((rel, meta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dcstore-seg-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("seg-000001.dcs")
    }

    fn sample() -> Relation {
        let mut rel = Relation::from_columns(vec![
            ("id".into(), Column::from_ints(vec![5, -2, 9])),
            ("score".into(), Column::from_doubles(vec![1.5, -0.25, 2.0])),
            ("tag".into(), Column::from_strs(vec!["a".into(), "b".into(), "".into()])),
            ("at".into(), Column::from_ts(vec![100, 50, 300])),
        ])
        .unwrap();
        rel.append_row(&[Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
        rel
    }

    #[test]
    fn write_read_roundtrip_with_zone_maps() {
        let path = tmp("roundtrip");
        let rel = sample();
        let (meta, bytes) = write_segment(&path, &rel).unwrap();
        assert_eq!(meta.rows, 4);
        assert_eq!(meta.cols[0], (1, Some(Zone::Int { min: -2, max: 9 })));
        assert_eq!(
            meta.cols[1],
            (2, Some(Zone::Double { min: -0.25, max: 2.0 }))
        );
        assert_eq!(meta.cols[2], (3, None), "strings carry no zone map");
        assert_eq!(meta.cols[3], (4, Some(Zone::Int { min: 50, max: 300 })));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes);

        let (lazy, lazy_bytes) = read_meta(&path).unwrap();
        assert_eq!(lazy, meta, "footer-only read sees the same metadata");
        assert_eq!(lazy_bytes, bytes);

        let (back, full_meta) = read_segment(&path, &rel.schema()).unwrap();
        assert_eq!(back, rel);
        assert_eq!(full_meta, meta);
    }

    #[test]
    fn empty_relation_seals_and_reads() {
        let path = tmp("empty");
        let schema = Schema::from_pairs(&[("a", ValueType::Int)]);
        let rel = Relation::new(&schema);
        let (meta, _) = write_segment(&path, &rel).unwrap();
        assert_eq!(meta.rows, 0);
        assert_eq!(meta.cols, vec![(1, None)]);
        let (back, _) = read_segment(&path, &schema).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn corrupt_footer_is_detected() {
        let path = tmp("corrupt");
        let rel = sample();
        write_segment(&path, &rel).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - TRAILER_LEN - 3] ^= 0xff; // flip a footer byte
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_meta(&path).is_err());
        assert!(read_segment(&path, &rel.schema()).is_err());
        // and a missing magic
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_meta(&path), Err(EngineError::Io(m)) if m.contains("magic")));
    }

    #[test]
    fn all_null_numeric_column_has_no_zone() {
        let path = tmp("nulls");
        let schema = Schema::from_pairs(&[("a", ValueType::Int)]);
        let mut rel = Relation::new(&schema);
        rel.append_row(&[Value::Null]).unwrap();
        rel.append_row(&[Value::Null]).unwrap();
        let (meta, _) = write_segment(&path, &rel).unwrap();
        assert_eq!(meta.cols, vec![(1, None)]);
        let (back, _) = read_segment(&path, &schema).unwrap();
        assert_eq!(back, rel);
    }
}
