//! Property tests for the durable-storage codecs.
//!
//! * WAL: `replay ∘ append* = identity` over arbitrary payload
//!   sequences, and — the crash-safety property — cutting the file at
//!   *any* byte offset replays an exact prefix of the appended records
//!   and flags (then truncates) the torn tail instead of failing.
//! * Segments: footer/zone-map roundtrip over randomized relations —
//!   `read_meta` and `read_segment` agree with what was written, and
//!   the zone maps bound every non-NULL value.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dcstore::segment::{read_meta, read_segment, write_segment, Zone};
use dcstore::wal::{FsyncPolicy, Wal};
use monet::prelude::*;
use proptest::prelude::*;

static NEXT: AtomicUsize = AtomicUsize::new(0);

fn scratch(kind: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcstore-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{kind}-{}", NEXT.fetch_add(1, Ordering::Relaxed)))
}

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wal_records_roundtrip(payloads in arb_payloads()) {
        let path = scratch("wal");
        let (mut wal, replay) = Wal::open(&path, FsyncPolicy::Off, None).unwrap();
        prop_assert!(replay.records.is_empty());
        for p in &payloads {
            wal.append(p).unwrap();
        }
        let total = wal.bytes();
        drop(wal);
        prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), total);
        let (_, replay) = Wal::open(&path, FsyncPolicy::Off, None).unwrap();
        prop_assert_eq!(&replay.records, &payloads);
        prop_assert!(!replay.torn);
        prop_assert_eq!(replay.valid_bytes, total);
    }

    #[test]
    fn wal_cut_anywhere_replays_a_prefix(
        payloads in arb_payloads(),
        cut_pm in 0u32..1000,
        garbage in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let path = scratch("walcut");
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Off, None).unwrap();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        drop(wal);
        // tear the file at an arbitrary byte, optionally smearing
        // garbage after the cut (a crashed writer's half-flushed block)
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes.len() * cut_pm as usize / 1000;
        let mut torn_img = bytes[..cut].to_vec();
        torn_img.extend_from_slice(&garbage);
        std::fs::write(&path, &torn_img).unwrap();

        let (_, replay) = Wal::open(&path, FsyncPolicy::Off, None).unwrap();
        prop_assert!(replay.records.len() <= payloads.len());
        prop_assert_eq!(
            &replay.records[..],
            &payloads[..replay.records.len()],
            "replay is an exact prefix of what was appended"
        );
        prop_assert_eq!(replay.torn, replay.valid_bytes < torn_img.len() as u64);
        // the torn tail is physically gone: reopening is clean
        prop_assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            replay.valid_bytes
        );
        let (_, again) = Wal::open(&path, FsyncPolicy::Off, None).unwrap();
        prop_assert!(!again.torn);
        prop_assert_eq!(again.records.len(), replay.records.len());
    }
}

fn arb_rel() -> impl Strategy<Value = Relation> {
    // the shim has no tuple strategies: derive every per-row field from
    // one seed (splitmix-style) instead
    prop::collection::vec(any::<u64>(), 0..40).prop_map(|seeds| {
        let schema = Schema::from_pairs(&[
            ("a", ValueType::Int),
            ("b", ValueType::Double),
            ("c", ValueType::Str),
        ]);
        let mut rel = Relation::new(&schema);
        for seed in seeds {
            let mix = |k: u64| {
                let mut z = seed.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^ (z >> 27)
            };
            let a = if mix(1) % 3 == 0 {
                Value::Null
            } else {
                Value::Int(mix(2) as i64)
            };
            // bias in some NULLs and NaNs among ordinary doubles
            let b = match mix(3) % 10 {
                0 => Value::Null,
                1 => Value::Double(f64::NAN),
                d => Value::Double(d as f64 - (mix(4) % 2000) as f64 / 8.0),
            };
            rel.append_row(&[a, b, Value::Str(format!("s{}", mix(5) % 1000))])
                .unwrap();
        }
        rel
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn segment_footer_and_zone_maps_roundtrip(rel in arb_rel()) {
        let path = scratch("seg");
        let (meta, bytes) = write_segment(&path, &rel).unwrap();
        prop_assert_eq!(meta.rows, rel.len() as u64);
        prop_assert_eq!(meta.cols.len(), rel.width());

        // lazy footer read sees exactly the written metadata
        let (lazy, lazy_bytes) = read_meta(&path).unwrap();
        prop_assert_eq!(&lazy, &meta);
        prop_assert_eq!(lazy_bytes, bytes);

        // full read returns the sealed relation bit-for-bit — compare
        // re-encoded frames, since NaN != NaN under relation equality
        let (back, full_meta) = read_segment(&path, &rel.schema()).unwrap();
        let (mut orig_frame, mut back_frame) = (Vec::new(), Vec::new());
        datacell::frame::encode_frame(&mut orig_frame, &rel).unwrap();
        datacell::frame::encode_frame(&mut back_frame, &back).unwrap();
        prop_assert_eq!(orig_frame, back_frame);
        prop_assert_eq!(&full_meta, &meta);

        // zone maps bound every non-NULL value (NaNs excluded)
        let ints = rel.col_at(0);
        match meta.cols[0].1 {
            Some(Zone::Int { min, max }) => {
                let valid = |i: usize| ints.validity().map(|m| m.get(i)).unwrap_or(true);
                let vals: Vec<i64> = match ints.data() {
                    ColumnData::Int(v) => v
                        .iter()
                        .take(rel.len())
                        .enumerate()
                        .filter(|(i, _)| valid(*i))
                        .map(|(_, &x)| x)
                        .collect(),
                    _ => unreachable!(),
                };
                prop_assert!(!vals.is_empty());
                prop_assert_eq!(min, *vals.iter().min().unwrap());
                prop_assert_eq!(max, *vals.iter().max().unwrap());
            }
            None => {
                // only legal when the column holds no non-NULL value
                let all_null = rel
                    .col_at(0)
                    .validity()
                    .map(|m| (0..rel.len()).all(|i| !m.get(i)))
                    .unwrap_or(rel.is_empty());
                prop_assert!(all_null);
            }
            Some(Zone::Double { .. }) => prop_assert!(false, "int column, double zone"),
        }
        if let Some(Zone::Double { min, max }) = meta.cols[1].1 {
            prop_assert!(min <= max);
            prop_assert!(!min.is_nan() && !max.is_nan(), "NaNs never enter a zone");
        }
        prop_assert_eq!(meta.cols[2].1, None, "strings carry no zone map");
    }
}
