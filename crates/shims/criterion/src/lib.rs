//! Offline shim for the `criterion` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the subset of the criterion API its benches use.
//! Statistical machinery (outlier detection, regression, HTML reports) is
//! replaced by a plain timed loop: a short warm-up to calibrate the
//! per-iteration cost, then a measured run printing mean time per
//! iteration plus derived throughput. Benches keep `harness = false` and
//! `criterion_group!`/`criterion_main!` exactly as with real criterion.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the measured run is scaled relative to the input size.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched` (advisory in this shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measurement: Duration,
    warm_up: Duration,
    /// (total elapsed, iterations) of the measured run.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // warm-up + calibration
        let warm_deadline = Instant::now() + self.warm_up;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), target));
    }

    /// Measure `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // calibrate on a few iterations
        let mut warm_iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < self.warm_up && warm_iters < 1000 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            spent += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = spent.as_secs_f64() / warm_iters.max(1) as f64;
        let target = ((self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.result = Some((total, target));
    }
}

fn fmt_time(t: f64) -> String {
    if t < 1e-6 {
        format!("{:.2} ns", t * 1e9)
    } else if t < 1e-3 {
        format!("{:.2} µs", t * 1e6)
    } else if t < 1.0 {
        format!("{:.2} ms", t * 1e3)
    } else {
        format!("{t:.2} s")
    }
}

fn run_one(
    label: &str,
    throughput: Option<Throughput>,
    measurement: Duration,
    warm_up: Duration,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        measurement,
        warm_up,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let per = elapsed.as_secs_f64() / iters as f64;
            let mut line = format!("{label:<40} {:>12}/iter  ({iters} iters)", fmt_time(per));
            match throughput {
                Some(Throughput::Elements(n)) => {
                    line.push_str(&format!("  {:.3} Melem/s", n as f64 / per / 1e6));
                }
                Some(Throughput::Bytes(n)) => {
                    line.push_str(&format!("  {:.3} MiB/s", n as f64 / per / (1 << 20) as f64));
                }
                None => {}
            }
            println!("{line}");
        }
        None => println!("{label:<40} (no measurement recorded)"),
    }
}

/// Entry point: owns global settings and spawns groups.
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
            warm_up: Duration::from_millis(60),
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Criterion API compat: sample counts are folded into one timed loop.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, None, self.measurement, self.warm_up, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            measurement: self.measurement,
            warm_up: self.warm_up,
        }
    }
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement: Duration,
    warm_up: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, self.measurement, self.warm_up, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, self.measurement, self.warm_up, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Declare a group function running each target benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &vec![1, 2, 3, 4], |b, v| {
            b.iter(|| v.iter().sum::<i32>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }
}
