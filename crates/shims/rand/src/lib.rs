//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the subset of the `rand` API the code base uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer/float ranges,
//! `gen_bool`, and `gen` for a few primitives. The generator is
//! xoshiro256** seeded via splitmix64 — high-quality and deterministic,
//! though the streams differ from upstream `rand` (seeds here are only
//! promised to be self-consistent).

/// Low-level uniform u64 source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling within a range, for `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// User-facing random-value methods (blanket-implemented for any core rng).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53-bit uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** (Blackman/Vigna),
    /// seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A non-deterministically seeded rng (entropy from the clock + ASLR).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    let stack_probe = &nanos as *const _ as u64;
    rngs::StdRng::seed_from_u64(nanos ^ stack_probe.rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<i64> = (0..16).map(|_| c.gen_range(0..100)).collect();
        let mut a = StdRng::seed_from_u64(7);
        let other: Vec<i64> = (0..16).map(|_| a.gen_range(0..100)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-8..=8i64);
            assert!((-8..=8).contains(&v));
            let u = rng.gen_range(5..6usize);
            assert_eq!(u, 5);
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
