//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the subset of `crossbeam::channel` the code base
//! uses: an unbounded MPMC channel with `Clone`-able senders *and*
//! receivers, disconnect detection on both sides, and blocking /
//! non-blocking / timed receives. Built on `Mutex<VecDeque>` + `Condvar`
//! — slower than the real lock-free implementation, but semantically
//! equivalent for the workloads here.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half of a channel. Clone-able: clones share one queue
    /// (each message is delivered to exactly one receiver).
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    /// Bounded constructor for API compatibility. The shim does not apply
    /// backpressure; the capacity is advisory only.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("channel is empty and disconnected")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> Sender<T> {
        /// Queue a message; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }

        pub fn is_empty(&self) -> bool {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }

        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(|p| p.into_inner()).len()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // last sender gone: wake all blocked receivers
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .0
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }

        pub fn is_empty(&self) -> bool {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }

        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(|p| p.into_inner()).len()
        }

        /// Blocking iterator over messages until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detection() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocking_recv_wakes() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), Ok(42));
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<i32>();
            let t0 = Instant::now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(30)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= Duration::from_millis(25));
        }

        #[test]
        fn mpmc_each_message_once() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h1 = std::thread::spawn(move || rx.iter().count());
            let h2 = std::thread::spawn(move || rx2.iter().count());
            assert_eq!(h1.join().unwrap() + h2.join().unwrap(), 100);
        }
    }
}
