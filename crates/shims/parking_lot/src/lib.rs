//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the *subset* of the `parking_lot` API the code base
//! uses, implemented on `std::sync` primitives. Semantics differ from the
//! real crate in one deliberate way: lock poisoning is ignored (a
//! poisoned lock is re-entered), which matches parking_lot's own
//! no-poisoning behaviour closely enough for this workspace.

use std::sync::{PoisonError, TryLockError};

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// `parking_lot::Mutex`: like `std::sync::Mutex` but `lock()` returns the
/// guard directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// `parking_lot::RwLock`: like `std::sync::RwLock` but guards are returned
/// directly (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
