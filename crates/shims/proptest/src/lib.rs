//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the subset of the proptest API its test suites use:
//! the `proptest!` macro, `prop_assert*`, integer-range strategies,
//! `prop::collection::{vec, btree_set}`, `prop::option::weighted`,
//! `any::<T>()` and `Strategy::prop_map`.
//!
//! Unlike real proptest this shim does **not shrink** failing inputs — a
//! failure panics with the generated values left to the assertion message
//! — and cases are generated from a seed derived from the test's module
//! path, so runs are deterministic per test.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
pub use rand::{Rng, SeedableRng};

/// Per-proptest-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic seed for a named test (FNV-1a over the name).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Constant "strategy" — generates the same value every time (proptest's
/// `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! arb_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

arb_ints!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// Whole-domain strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Inclusive size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, StdRng, Strategy};
        use std::collections::BTreeSet;

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` of values from `element`, with a random length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `BTreeSet` of values from `element`. The target size is capped
        /// by the number of distinct values the element strategy yields in
        /// a bounded number of attempts.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
                let target = self.size.pick(rng);
                let mut out = BTreeSet::new();
                let mut attempts = 0usize;
                while out.len() < target && attempts < target * 8 + 32 {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }

    pub mod option {
        use super::super::{Rng, StdRng, Strategy};

        pub struct Weighted<S> {
            some_probability: f64,
            inner: S,
        }

        /// `Some(inner)` with probability `some_probability`, else `None`.
        pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> Weighted<S> {
            Weighted {
                some_probability,
                inner,
            }
        }

        impl<S: Strategy> Strategy for Weighted<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                rng.gen_bool(self.some_probability)
                    .then(|| self.inner.generate(rng))
            }
        }
    }
}

// keep the BTreeSet import used (the re-exported module path above is the
// public surface; this silences an unused-import lint on some toolchains)
#[allow(unused)]
fn _btree_marker(_: BTreeSet<u8>) {}

/// `prop_assert!` — in this shim, a plain `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — in this shim, a plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!` — in this shim, a plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// The `proptest!` block: each contained `#[test] fn name(arg in strategy,
/// ...) { .. }` becomes a test running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_sizes_in_bounds(v in prop::collection::vec(0i64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn mapped_strategy(x in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert!(x % 2 == 0 && x < 100);
        }

        #[test]
        fn sets_are_sets(s in prop::collection::btree_set(0u32..8, 0..=8)) {
            prop_assert!(s.len() <= 8);
        }

        #[test]
        fn weighted_options(o in prop::option::weighted(0.5, 0i64..5), b in any::<bool>()) {
            if let Some(v) = o {
                prop_assert!((0..5).contains(&v));
            }
            let _ = b;
        }
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(super::seed_for("a::b"), super::seed_for("a::b"));
        assert_ne!(super::seed_for("a::b"), super::seed_for("a::c"));
    }
}
