//! Scalar values and their types.
//!
//! The kernel stores data in typed columns ([`crate::column::Column`]); the
//! [`Value`] enum is the boxed scalar used at the boundaries (row ingestion,
//! constants in predicates, result inspection). Hot paths never touch
//! `Value` — they run over the typed vectors directly.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column or scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Bool,
    Int,
    Double,
    Str,
    /// Timestamps are microseconds on a (possibly virtual) clock.
    Ts,
}

impl ValueType {
    /// Short lowercase name, used in error messages and schema dumps.
    pub fn name(&self) -> &'static str {
        match self {
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Double => "double",
            ValueType::Str => "str",
            ValueType::Ts => "timestamp",
        }
    }

    /// Whether values of this type support arithmetic.
    pub fn is_numeric(&self) -> bool {
        matches!(self, ValueType::Int | ValueType::Double | ValueType::Ts)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value, possibly NULL.
///
/// NULL is typeless: it can be appended to a column of any type and is
/// tracked by the column's validity bitmap.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(String),
    Ts(i64),
}

impl Value {
    /// The type of this value; `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Int(_) => Some(ValueType::Int),
            Value::Double(_) => Some(ValueType::Double),
            Value::Str(_) => Some(ValueType::Str),
            Value::Ts(_) => Some(ValueType::Ts),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view, coercing Ts; `None` for anything else.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::Ts(v) => Some(*v),
            _ => None,
        }
    }

    /// Floating view, coercing Int and Ts.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Int(v) | Value::Ts(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: NULL compares as `None`.
    ///
    /// Numeric types compare across Int/Double/Ts; other cross-type
    /// comparisons yield `None` (the planner rejects them earlier).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Ts(a), Ts(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Double(a), Double(b)) => a.partial_cmp(b),
            // numeric cross-type
            (Int(a), Double(b)) | (Ts(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Int(b)) | (Double(a), Ts(b)) => a.partial_cmp(&(*b as f64)),
            (Int(a), Ts(b)) | (Ts(a), Int(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Ts(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(ValueType::Bool.to_string(), "bool");
        assert_eq!(ValueType::Int.to_string(), "int");
        assert_eq!(ValueType::Double.to_string(), "double");
        assert_eq!(ValueType::Str.to_string(), "str");
        assert_eq!(ValueType::Ts.to_string(), "timestamp");
    }

    #[test]
    fn numeric_types() {
        assert!(ValueType::Int.is_numeric());
        assert!(ValueType::Double.is_numeric());
        assert!(ValueType::Ts.is_numeric());
        assert!(!ValueType::Str.is_numeric());
        assert!(!ValueType::Bool.is_numeric());
    }

    #[test]
    fn value_type_of() {
        assert_eq!(Value::Null.value_type(), None);
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
        assert_eq!(Value::Ts(1).value_type(), Some(ValueType::Ts));
    }

    #[test]
    fn coercing_views() {
        assert_eq!(Value::Int(3).as_double(), Some(3.0));
        assert_eq!(Value::Ts(5).as_int(), Some(5));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("ab".into()).as_str(), Some("ab"));
    }

    #[test]
    fn sql_cmp_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Double(2.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Str("a".into()).sql_cmp(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        // cross-type non-numeric comparisons are undefined
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(1.5f64), Value::Double(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(String::from("t")), Value::Str("t".into()));
    }

    #[test]
    fn display_values() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Double(0.5).to_string(), "0.5");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
