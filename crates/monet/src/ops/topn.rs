//! TOP-N selection without a full sort.
//!
//! DataCell's `top n` clause (the paper's fixed-size window idiom:
//! `[select top 20 from X order by tag]`) needs the first `n` rows under an
//! ordering. A bounded binary heap does this in O(len · log n) instead of a
//! full O(len · log len) sort.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::Result;
use crate::ops::sort::{cmp_positions, SortKey};
use crate::selvec::SelVec;

/// Heap entry ordered by the sort keys; the heap keeps the *worst* entry at
/// the top so it can be evicted when something better arrives.
struct Entry<'k, 'c> {
    pos: u32,
    seq: u32, // tie-break on input order for stability
    keys: &'k [SortKey<'c>],
}

impl Entry<'_, '_> {
    fn order(&self, other: &Self) -> Ordering {
        cmp_positions(self.keys, self.pos as usize, other.pos as usize)
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialEq for Entry<'_, '_> {
    fn eq(&self, other: &Self) -> bool {
        self.order(other) == Ordering::Equal
    }
}
impl Eq for Entry<'_, '_> {}
impl PartialOrd for Entry<'_, '_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry<'_, '_> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order(other)
    }
}

/// Positions of the first `n` rows under `keys`, in sorted order.
pub fn topn_perm(keys: &[SortKey<'_>], n: usize, cand: Option<&SelVec>) -> Result<Vec<u32>> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let len = keys.first().map_or(0, |k| k.col.len());
    if let Some(c) = cand {
        c.check_bounds(len)?;
    }
    let mut heap: BinaryHeap<Entry<'_, '_>> = BinaryHeap::with_capacity(n + 1);
    let mut visit = |seq_pos: (u32, u32)| {
        let (seq, pos) = seq_pos;
        heap.push(Entry { pos, seq, keys });
        if heap.len() > n {
            heap.pop(); // evict current worst
        }
    };
    match cand {
        Some(c) => c
            .iter()
            .enumerate()
            .for_each(|(s, p)| visit((s as u32, p))),
        None => (0..len as u32).for_each(|p| visit((p, p))),
    }
    let mut out: Vec<Entry<'_, '_>> = heap.into_vec();
    out.sort_by(|a, b| a.order(b));
    Ok(out.into_iter().map(|e| e.pos).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn ints(v: &[i64]) -> Column {
        Column::from_ints(v.to_vec())
    }

    #[test]
    fn top3_ascending() {
        let c = ints(&[5, 1, 4, 2, 3]);
        let keys = [SortKey { col: &c, ascending: true }];
        assert_eq!(topn_perm(&keys, 3, None).unwrap(), vec![1, 3, 4]);
    }

    #[test]
    fn top2_descending() {
        let c = ints(&[5, 1, 4, 2, 3]);
        let keys = [SortKey { col: &c, ascending: false }];
        assert_eq!(topn_perm(&keys, 2, None).unwrap(), vec![0, 2]);
    }

    #[test]
    fn n_larger_than_input_returns_full_sort() {
        let c = ints(&[2, 1]);
        let keys = [SortKey { col: &c, ascending: true }];
        assert_eq!(topn_perm(&keys, 10, None).unwrap(), vec![1, 0]);
    }

    #[test]
    fn n_zero() {
        let c = ints(&[1]);
        let keys = [SortKey { col: &c, ascending: true }];
        assert!(topn_perm(&keys, 0, None).unwrap().is_empty());
    }

    #[test]
    fn stability_matches_full_sort() {
        let c = ints(&[1, 1, 1, 0]);
        let keys = [SortKey { col: &c, ascending: true }];
        let full = crate::ops::sort::sort_perm(&keys, None).unwrap();
        let top = topn_perm(&keys, 3, None).unwrap();
        assert_eq!(top, full[..3].to_vec());
    }

    #[test]
    fn with_candidates() {
        let c = ints(&[9, 1, 8, 2]);
        let cand = SelVec::from_sorted(vec![0, 2, 3]).unwrap();
        let keys = [SortKey { col: &c, ascending: true }];
        assert_eq!(topn_perm(&keys, 2, Some(&cand)).unwrap(), vec![3, 2]);
    }

    #[test]
    fn agrees_with_sort_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let data: Vec<i64> = (0..500).map(|_| rng.gen_range(0..100)).collect();
        let c = ints(&data);
        let keys = [SortKey { col: &c, ascending: true }];
        let full = crate::ops::sort::sort_perm(&keys, None).unwrap();
        for n in [1usize, 7, 100, 499] {
            assert_eq!(
                topn_perm(&keys, n, None).unwrap(),
                full[..n].to_vec(),
                "n={n}"
            );
        }
    }
}
