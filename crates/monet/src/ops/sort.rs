//! Ordering: stable multi-key argsort producing position permutations.

use crate::column::{Column, ColumnData};
use crate::error::{MonetError, Result};
use crate::selvec::SelVec;

/// One sort key: column + direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey<'a> {
    pub col: &'a Column,
    pub ascending: bool,
}

/// Compare two positions under a full key list (first non-equal key wins).
pub fn cmp_positions(keys: &[SortKey<'_>], a: usize, b: usize) -> std::cmp::Ordering {
    for key in keys {
        let ord = cmp_at(key, a, b);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Compare two positions under a single key. NULLs sort first (ascending),
/// matching the usual NULLS FIRST default.
fn cmp_at(key: &SortKey<'_>, a: usize, b: usize) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let (va, vb) = (key.col.is_valid(a), key.col.is_valid(b));
    let ord = match (va, vb) {
        (false, false) => Ordering::Equal,
        (false, true) => Ordering::Less,
        (true, false) => Ordering::Greater,
        (true, true) => match key.col.data() {
            ColumnData::Bool(v) => v[a].cmp(&v[b]),
            ColumnData::Int(v) | ColumnData::Ts(v) => v[a].cmp(&v[b]),
            ColumnData::Double(v) => v[a].partial_cmp(&v[b]).unwrap_or(Ordering::Equal),
            ColumnData::Str(v) => v[a].cmp(&v[b]),
        },
    };
    if key.ascending {
        ord
    } else {
        ord.reverse()
    }
}

/// Stable argsort: returns row positions in sorted order. With a candidate
/// list, only those rows participate (and the permutation contains exactly
/// those positions).
pub fn sort_perm(keys: &[SortKey<'_>], cand: Option<&SelVec>) -> Result<Vec<u32>> {
    if keys.is_empty() {
        return Err(MonetError::Invalid("sort needs at least one key".into()));
    }
    let len = keys[0].col.len();
    for k in keys {
        if k.col.len() != len {
            return Err(MonetError::LengthMismatch {
                op: "sort_perm",
                left: len,
                right: k.col.len(),
            });
        }
    }
    if let Some(c) = cand {
        c.check_bounds(len)?;
    }
    let mut perm: Vec<u32> = match cand {
        Some(c) => c.iter().collect(),
        None => (0..len as u32).collect(),
    };
    perm.sort_by(|&a, &b| cmp_positions(keys, a as usize, b as usize));
    Ok(perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Value, ValueType};

    fn ints(v: &[i64]) -> Column {
        Column::from_ints(v.to_vec())
    }

    #[test]
    fn single_key_ascending_descending() {
        let c = ints(&[3, 1, 2]);
        let p = sort_perm(&[SortKey { col: &c, ascending: true }], None).unwrap();
        assert_eq!(p, vec![1, 2, 0]);
        let p = sort_perm(&[SortKey { col: &c, ascending: false }], None).unwrap();
        assert_eq!(p, vec![0, 2, 1]);
    }

    #[test]
    fn stability_on_ties() {
        let c = ints(&[1, 1, 0, 1]);
        let p = sort_perm(&[SortKey { col: &c, ascending: true }], None).unwrap();
        assert_eq!(p, vec![2, 0, 1, 3], "equal keys keep input order");
    }

    #[test]
    fn multi_key() {
        let a = ints(&[1, 1, 0]);
        let b = Column::from_strs(vec!["z".into(), "a".into(), "m".into()]);
        let p = sort_perm(
            &[
                SortKey { col: &a, ascending: true },
                SortKey { col: &b, ascending: true },
            ],
            None,
        )
        .unwrap();
        assert_eq!(p, vec![2, 1, 0]);
    }

    #[test]
    fn nulls_first_ascending_last_descending() {
        let mut c = Column::new(ValueType::Int);
        for v in [Value::Int(2), Value::Null, Value::Int(1)] {
            c.push(v).unwrap();
        }
        let p = sort_perm(&[SortKey { col: &c, ascending: true }], None).unwrap();
        assert_eq!(p, vec![1, 2, 0]);
        let p = sort_perm(&[SortKey { col: &c, ascending: false }], None).unwrap();
        assert_eq!(p, vec![0, 2, 1]);
    }

    #[test]
    fn candidates_restrict_domain() {
        let c = ints(&[9, 3, 7, 1]);
        let cand = SelVec::from_sorted(vec![0, 2, 3]).unwrap();
        let p = sort_perm(&[SortKey { col: &c, ascending: true }], Some(&cand)).unwrap();
        assert_eq!(p, vec![3, 2, 0]);
    }

    #[test]
    fn doubles_sort() {
        let c = Column::from_doubles(vec![0.5, -1.0, 2.0]);
        let p = sort_perm(&[SortKey { col: &c, ascending: true }], None).unwrap();
        assert_eq!(p, vec![1, 0, 2]);
    }

    #[test]
    fn misaligned_keys_error() {
        let a = ints(&[1, 2]);
        let b = ints(&[1]);
        assert!(sort_perm(
            &[
                SortKey { col: &a, ascending: true },
                SortKey { col: &b, ascending: true }
            ],
            None
        )
        .is_err());
        assert!(sort_perm(&[], None).is_err());
    }
}
