//! Selection scans: predicate evaluation producing selection vectors.
//!
//! These are the workhorses of DataCell query plans — `monetdb.select` in
//! the paper's Algorithm 1. All scans accept an optional candidate list and
//! only inspect those positions; NULLs never match any predicate.

use crate::bitset::Bitset;
use crate::column::{Column, ColumnData};
use crate::error::{MonetError, Result};
use crate::ops::CmpOp;
use crate::selvec::SelVec;
use crate::value::{Value, ValueType};

/// Positions where `col <op> constant` holds.
pub fn select_cmp(
    col: &Column,
    op: CmpOp,
    constant: &Value,
    cand: Option<&SelVec>,
) -> Result<SelVec> {
    if let Some(c) = cand {
        c.check_bounds(col.len())?;
    }
    if constant.is_null() {
        // SQL three-valued logic: nothing compares equal (or anything else)
        // to NULL.
        return Ok(SelVec::empty());
    }
    let validity = col.validity();
    match col.data() {
        ColumnData::Int(v) | ColumnData::Ts(v) => {
            let k = constant.as_int().ok_or(MonetError::TypeMismatch {
                op: "select_cmp",
                expected: col.vtype(),
                found: constant.value_type().unwrap_or(ValueType::Bool),
            });
            match k {
                Ok(k) => Ok(scan(v, validity, cand, |x| op.eval(x.cmp(&k)))),
                Err(_) => {
                    // allow double constants against int columns
                    let kd = constant.as_double().ok_or(MonetError::TypeMismatch {
                        op: "select_cmp",
                        expected: col.vtype(),
                        found: constant.value_type().unwrap_or(ValueType::Bool),
                    })?;
                    Ok(scan(v, validity, cand, |x| {
                        (*x as f64).partial_cmp(&kd).map(|o| op.eval(o)).unwrap_or(false)
                    }))
                }
            }
        }
        ColumnData::Double(v) => {
            let k = constant.as_double().ok_or(MonetError::TypeMismatch {
                op: "select_cmp",
                expected: ValueType::Double,
                found: constant.value_type().unwrap_or(ValueType::Bool),
            })?;
            Ok(scan(v, validity, cand, |x| {
                x.partial_cmp(&k).map(|o| op.eval(o)).unwrap_or(false)
            }))
        }
        ColumnData::Str(v) => {
            let k = constant.as_str().ok_or(MonetError::TypeMismatch {
                op: "select_cmp",
                expected: ValueType::Str,
                found: constant.value_type().unwrap_or(ValueType::Bool),
            })?;
            Ok(scan(v, validity, cand, |x| op.eval(x.as_str().cmp(k))))
        }
        ColumnData::Bool(v) => {
            let k = constant.as_bool().ok_or(MonetError::TypeMismatch {
                op: "select_cmp",
                expected: ValueType::Bool,
                found: constant.value_type().unwrap_or(ValueType::Int),
            })?;
            Ok(scan(v, validity, cand, |x| op.eval(x.cmp(&k))))
        }
    }
}

/// Range select `lo < col < hi` with configurable bound inclusivity — the
/// predicate-window primitive (`v1 < S.A < v2` in the micro-benchmarks).
pub fn select_range(
    col: &Column,
    lo: &Value,
    hi: &Value,
    lo_incl: bool,
    hi_incl: bool,
    cand: Option<&SelVec>,
) -> Result<SelVec> {
    if let Some(c) = cand {
        c.check_bounds(col.len())?;
    }
    if lo.is_null() || hi.is_null() {
        return Ok(SelVec::empty());
    }
    let validity = col.validity();
    match col.data() {
        ColumnData::Int(v) | ColumnData::Ts(v) => {
            let (a, b) = (
                lo.as_int().ok_or(type_err(col, lo))?,
                hi.as_int().ok_or(type_err(col, hi))?,
            );
            Ok(scan(v, validity, cand, |&x| {
                (if lo_incl { x >= a } else { x > a }) && (if hi_incl { x <= b } else { x < b })
            }))
        }
        ColumnData::Double(v) => {
            let (a, b) = (
                lo.as_double().ok_or(type_err(col, lo))?,
                hi.as_double().ok_or(type_err(col, hi))?,
            );
            Ok(scan(v, validity, cand, |&x| {
                (if lo_incl { x >= a } else { x > a }) && (if hi_incl { x <= b } else { x < b })
            }))
        }
        ColumnData::Str(v) => {
            let (a, b) = (
                lo.as_str().ok_or(type_err(col, lo))?,
                hi.as_str().ok_or(type_err(col, hi))?,
            );
            Ok(scan(v, validity, cand, |x| {
                let s = x.as_str();
                (if lo_incl { s >= a } else { s > a }) && (if hi_incl { s <= b } else { s < b })
            }))
        }
        ColumnData::Bool(_) => Err(MonetError::TypeMismatch {
            op: "select_range",
            expected: ValueType::Int,
            found: ValueType::Bool,
        }),
    }
}

fn type_err(col: &Column, v: &Value) -> MonetError {
    MonetError::TypeMismatch {
        op: "select_range",
        expected: col.vtype(),
        found: v.value_type().unwrap_or(ValueType::Bool),
    }
}

/// Positions where a boolean column is TRUE (NULL is not TRUE).
pub fn select_true(col: &Column, cand: Option<&SelVec>) -> Result<SelVec> {
    if let Some(c) = cand {
        c.check_bounds(col.len())?;
    }
    let v = col.bools()?;
    Ok(scan(v, col.validity(), cand, |&b| b))
}

/// Positions holding NULL.
pub fn select_null(col: &Column, cand: Option<&SelVec>) -> Result<SelVec> {
    if let Some(c) = cand {
        c.check_bounds(col.len())?;
    }
    let out: Vec<u32> = match cand {
        Some(c) => c
            .iter()
            .filter(|&p| !col.is_valid(p as usize))
            .collect(),
        None => (0..col.len() as u32)
            .filter(|&p| !col.is_valid(p as usize))
            .collect(),
    };
    Ok(SelVec::from_sorted_unchecked(out))
}

/// Positions holding non-NULL values.
pub fn select_not_null(col: &Column, cand: Option<&SelVec>) -> Result<SelVec> {
    if let Some(c) = cand {
        c.check_bounds(col.len())?;
    }
    let out: Vec<u32> = match cand {
        Some(c) => c.iter().filter(|&p| col.is_valid(p as usize)).collect(),
        None => (0..col.len() as u32)
            .filter(|&p| col.is_valid(p as usize))
            .collect(),
    };
    Ok(SelVec::from_sorted_unchecked(out))
}

/// Positions where `left <op> right` holds between two aligned columns —
/// the column-vs-column selection scan compiled plans use for
/// `col <cmp> col` conjuncts (no boolean mask materialized). NULL on
/// either side never matches; typed fast paths cover the homogeneous
/// and numeric cross-type cases, everything else goes through
/// [`crate::value::Value::sql_cmp`] with the same per-row type errors as
/// [`crate::ops::arith::compare`].
pub fn select_cmp_cols(
    left: &Column,
    right: &Column,
    op: CmpOp,
    cand: Option<&SelVec>,
) -> Result<SelVec> {
    if left.len() != right.len() {
        return Err(MonetError::LengthMismatch {
            op: "select_cmp_cols",
            left: left.len(),
            right: right.len(),
        });
    }
    if let Some(c) = cand {
        c.check_bounds(left.len())?;
    }
    let mut out: Vec<u32> = Vec::new();
    let valid =
        |i: usize| -> bool { left.is_valid(i) && right.is_valid(i) };
    macro_rules! typed_scan {
        ($a:expr, $b:expr, $cmp:expr) => {{
            match cand {
                None => {
                    for i in 0..left.len() {
                        if valid(i) && op.eval($cmp(&$a[i], &$b[i])) {
                            out.push(i as u32);
                        }
                    }
                }
                Some(c) => {
                    for p in c.iter() {
                        let i = p as usize;
                        if valid(i) && op.eval($cmp(&$a[i], &$b[i])) {
                            out.push(p);
                        }
                    }
                }
            }
            return Ok(SelVec::from_sorted_unchecked(out));
        }};
    }
    use crate::column::ColumnData as CD;
    match (left.data(), right.data()) {
        (CD::Int(a) | CD::Ts(a), CD::Int(b) | CD::Ts(b)) => {
            typed_scan!(a, b, |x: &i64, y: &i64| x.cmp(y))
        }
        (CD::Double(a), CD::Double(b)) => {
            // NaN pairs are a type error, matching `compare`'s kernels
            match cand {
                None => {
                    for i in 0..left.len() {
                        if !valid(i) {
                            continue;
                        }
                        let ord = a[i].partial_cmp(&b[i]).ok_or(MonetError::TypeMismatch {
                            op: "select_cmp_cols",
                            expected: ValueType::Double,
                            found: ValueType::Double,
                        })?;
                        if op.eval(ord) {
                            out.push(i as u32);
                        }
                    }
                }
                Some(c) => {
                    for p in c.iter() {
                        let i = p as usize;
                        if !valid(i) {
                            continue;
                        }
                        let ord = a[i].partial_cmp(&b[i]).ok_or(MonetError::TypeMismatch {
                            op: "select_cmp_cols",
                            expected: ValueType::Double,
                            found: ValueType::Double,
                        })?;
                        if op.eval(ord) {
                            out.push(p);
                        }
                    }
                }
            }
            Ok(SelVec::from_sorted_unchecked(out))
        }
        (CD::Str(a), CD::Str(b)) => {
            typed_scan!(a, b, |x: &String, y: &String| x.cmp(y))
        }
        (CD::Bool(a), CD::Bool(b)) => {
            typed_scan!(a, b, |x: &bool, y: &bool| x.cmp(y))
        }
        _ => {
            // mixed types: per-row SQL comparison; a non-NULL pair that
            // cannot compare is a type error, exactly like `compare`
            let positions: Box<dyn Iterator<Item = u32>> = match cand {
                None => Box::new(0..left.len() as u32),
                Some(c) => Box::new(c.iter()),
            };
            for p in positions {
                let i = p as usize;
                if !valid(i) {
                    continue;
                }
                match left.get(i).sql_cmp(&right.get(i)) {
                    Some(ord) => {
                        if op.eval(ord) {
                            out.push(p);
                        }
                    }
                    None => {
                        return Err(MonetError::TypeMismatch {
                            op: "select_cmp_cols",
                            expected: left.vtype(),
                            found: right.vtype(),
                        })
                    }
                }
            }
            Ok(SelVec::from_sorted_unchecked(out))
        }
    }
}

/// Positions where `col IN (set)`.
pub fn select_in(col: &Column, set: &[Value], cand: Option<&SelVec>) -> Result<SelVec> {
    let mut acc = SelVec::empty();
    for v in set {
        acc = acc.union(&select_cmp(col, CmpOp::Eq, v, cand)?);
    }
    Ok(acc)
}

/// Shared typed scan loop: visit candidates (or everything), skip NULLs,
/// emit qualifying positions in ascending order.
#[inline]
fn scan<T>(
    data: &[T],
    validity: Option<&Bitset>,
    cand: Option<&SelVec>,
    pred: impl Fn(&T) -> bool,
) -> SelVec {
    let mut out = Vec::new();
    match (cand, validity) {
        (None, None) => {
            for (i, x) in data.iter().enumerate() {
                if pred(x) {
                    out.push(i as u32);
                }
            }
        }
        (None, Some(mask)) => {
            for (i, x) in data.iter().enumerate() {
                if mask.get(i) && pred(x) {
                    out.push(i as u32);
                }
            }
        }
        (Some(c), None) => {
            for p in c.iter() {
                if pred(&data[p as usize]) {
                    out.push(p);
                }
            }
        }
        (Some(c), Some(mask)) => {
            for p in c.iter() {
                if mask.get(p as usize) && pred(&data[p as usize]) {
                    out.push(p);
                }
            }
        }
    }
    SelVec::from_sorted_unchecked(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Column {
        Column::from_ints(v.to_vec())
    }

    #[test]
    fn cmp_all_operators() {
        let c = ints(&[1, 2, 3, 4, 5]);
        let k = Value::Int(3);
        assert_eq!(
            select_cmp(&c, CmpOp::Eq, &k, None).unwrap().as_slice(),
            &[2]
        );
        assert_eq!(
            select_cmp(&c, CmpOp::Ne, &k, None).unwrap().as_slice(),
            &[0, 1, 3, 4]
        );
        assert_eq!(
            select_cmp(&c, CmpOp::Lt, &k, None).unwrap().as_slice(),
            &[0, 1]
        );
        assert_eq!(
            select_cmp(&c, CmpOp::Le, &k, None).unwrap().as_slice(),
            &[0, 1, 2]
        );
        assert_eq!(
            select_cmp(&c, CmpOp::Gt, &k, None).unwrap().as_slice(),
            &[3, 4]
        );
        assert_eq!(
            select_cmp(&c, CmpOp::Ge, &k, None).unwrap().as_slice(),
            &[2, 3, 4]
        );
    }

    #[test]
    fn cmp_with_candidates() {
        let c = ints(&[1, 2, 3, 4, 5]);
        let cand = SelVec::from_sorted(vec![0, 2, 4]).unwrap();
        let r = select_cmp(&c, CmpOp::Gt, &Value::Int(1), Some(&cand)).unwrap();
        assert_eq!(r.as_slice(), &[2, 4]);
    }

    #[test]
    fn nulls_never_match() {
        let mut c = Column::new(ValueType::Int);
        for v in [Value::Int(1), Value::Null, Value::Int(3)] {
            c.push(v).unwrap();
        }
        let r = select_cmp(&c, CmpOp::Ne, &Value::Int(99), None).unwrap();
        assert_eq!(r.as_slice(), &[0, 2], "NULL <> 99 is not TRUE");
        let r = select_cmp(&c, CmpOp::Eq, &Value::Null, None).unwrap();
        assert!(r.is_empty(), "nothing equals NULL");
    }

    #[test]
    fn range_inclusivity() {
        let c = ints(&[10, 20, 30, 40]);
        let r = select_range(&c, &Value::Int(20), &Value::Int(40), false, false, None).unwrap();
        assert_eq!(r.as_slice(), &[2]);
        let r = select_range(&c, &Value::Int(20), &Value::Int(40), true, true, None).unwrap();
        assert_eq!(r.as_slice(), &[1, 2, 3]);
        let r = select_range(&c, &Value::Null, &Value::Int(40), true, true, None).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn range_on_doubles_and_strings() {
        let d = Column::from_doubles(vec![0.5, 1.5, 2.5]);
        let r = select_range(&d, &Value::Double(1.0), &Value::Double(3.0), true, false, None)
            .unwrap();
        assert_eq!(r.as_slice(), &[1, 2]);

        let s = Column::from_strs(vec!["apple".into(), "cherry".into(), "fig".into()]);
        let r = select_range(
            &s,
            &Value::Str("b".into()),
            &Value::Str("e".into()),
            true,
            true,
            None,
        )
        .unwrap();
        assert_eq!(r.as_slice(), &[1]);

        let b = Column::from_bools(vec![true]);
        assert!(select_range(&b, &Value::Int(0), &Value::Int(1), true, true, None).is_err());
    }

    #[test]
    fn double_constant_against_int_column() {
        let c = ints(&[1, 2, 3]);
        let r = select_cmp(&c, CmpOp::Gt, &Value::Double(1.5), None).unwrap();
        assert_eq!(r.as_slice(), &[1, 2]);
    }

    #[test]
    fn bool_and_string_selects() {
        let b = Column::from_bools(vec![true, false, true]);
        assert_eq!(select_true(&b, None).unwrap().as_slice(), &[0, 2]);
        assert_eq!(
            select_cmp(&b, CmpOp::Eq, &Value::Bool(false), None)
                .unwrap()
                .as_slice(),
            &[1]
        );

        let s = Column::from_strs(vec!["x".into(), "y".into(), "x".into()]);
        assert_eq!(
            select_cmp(&s, CmpOp::Eq, &Value::Str("x".into()), None)
                .unwrap()
                .as_slice(),
            &[0, 2]
        );
    }

    #[test]
    fn null_selects() {
        let mut c = Column::new(ValueType::Int);
        for v in [Value::Null, Value::Int(2), Value::Null] {
            c.push(v).unwrap();
        }
        assert_eq!(select_null(&c, None).unwrap().as_slice(), &[0, 2]);
        assert_eq!(select_not_null(&c, None).unwrap().as_slice(), &[1]);
        let cand = SelVec::from_sorted(vec![1, 2]).unwrap();
        assert_eq!(select_null(&c, Some(&cand)).unwrap().as_slice(), &[2]);
    }

    #[test]
    fn in_list() {
        let c = ints(&[1, 2, 3, 4]);
        let r = select_in(&c, &[Value::Int(2), Value::Int(4), Value::Int(9)], None).unwrap();
        assert_eq!(r.as_slice(), &[1, 3]);
    }

    #[test]
    fn type_errors_surface() {
        let c = ints(&[1]);
        assert!(select_cmp(&c, CmpOp::Eq, &Value::Str("x".into()), None).is_err());
        let s = Column::from_strs(vec!["x".into()]);
        assert!(select_cmp(&s, CmpOp::Eq, &Value::Int(1), None).is_err());
    }

    #[test]
    fn candidate_bounds_checked() {
        let c = ints(&[1]);
        let cand = SelVec::from_sorted(vec![5]).unwrap();
        assert!(select_cmp(&c, CmpOp::Eq, &Value::Int(1), Some(&cand)).is_err());
    }

    #[test]
    fn cmp_cols_matches_compare_semantics() {
        let a = ints(&[1, 5, 3, 9]);
        let b = ints(&[2, 5, 1, 9]);
        assert_eq!(
            select_cmp_cols(&a, &b, CmpOp::Lt, None).unwrap().as_slice(),
            &[0]
        );
        assert_eq!(
            select_cmp_cols(&a, &b, CmpOp::Eq, None).unwrap().as_slice(),
            &[1, 3]
        );
        let cand = SelVec::from_sorted(vec![1, 2]).unwrap();
        assert_eq!(
            select_cmp_cols(&a, &b, CmpOp::Ge, Some(&cand))
                .unwrap()
                .as_slice(),
            &[1, 2]
        );
        // NULLs never match
        let mut n = Column::new(ValueType::Int);
        for v in [Value::Int(1), Value::Null, Value::Int(3), Value::Int(9)] {
            n.push(v).unwrap();
        }
        assert_eq!(
            select_cmp_cols(&n, &b, CmpOp::Ge, None).unwrap().as_slice(),
            &[2, 3]
        );
        // numeric cross-type goes through the generic arm
        let d = Column::from_doubles(vec![1.5, 4.0, 3.0, 8.0]);
        assert_eq!(
            select_cmp_cols(&a, &d, CmpOp::Gt, None).unwrap().as_slice(),
            &[1, 3]
        );
        // incomparable pairs error
        let s = Column::from_strs(vec!["x".into(); 4]);
        assert!(select_cmp_cols(&a, &s, CmpOp::Eq, None).is_err());
        // length mismatch errors
        assert!(select_cmp_cols(&a, &ints(&[1]), CmpOp::Eq, None).is_err());
    }

    #[test]
    fn ts_columns_scan_as_ints() {
        let t = Column::from_ts(vec![100, 200, 300]);
        let r = select_cmp(&t, CmpOp::Ge, &Value::Int(200), None).unwrap();
        assert_eq!(r.as_slice(), &[1, 2]);
        let r = select_cmp(&t, CmpOp::Lt, &Value::Ts(300), None).unwrap();
        assert_eq!(r.as_slice(), &[0, 1]);
    }
}
