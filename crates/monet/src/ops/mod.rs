//! Vectorized relational primitives.
//!
//! Each submodule wraps one family of MAL-style operators: whole-column
//! loops that take columns + candidate lists and produce columns or
//! selection vectors, never touching boxed values in the inner loop.

pub mod arith;
pub mod delete;
pub mod group;
pub mod join;
pub mod select;
pub mod sort;
pub mod topn;

/// Comparison operators shared by selects, theta-joins and expression
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply to an [`std::cmp::Ordering`].
    #[inline]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with operand sides swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation (`NOT (a op b)` ⇔ `a op.negate() b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn eval_covers_all_ops() {
        assert!(CmpOp::Eq.eval(Ordering::Equal));
        assert!(!CmpOp::Eq.eval(Ordering::Less));
        assert!(CmpOp::Ne.eval(Ordering::Greater));
        assert!(CmpOp::Lt.eval(Ordering::Less));
        assert!(CmpOp::Le.eval(Ordering::Equal));
        assert!(CmpOp::Gt.eval(Ordering::Greater));
        assert!(CmpOp::Ge.eval(Ordering::Equal));
        assert!(!CmpOp::Ge.eval(Ordering::Less));
    }

    #[test]
    fn flip_is_an_involution_on_semantics() {
        let pairs = [(1, 2), (2, 2), (3, 2)];
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for (a, b) in pairs {
                let direct = op.eval(a.cmp(&b));
                let flipped = op.flip().eval(b.cmp(&a));
                assert_eq!(direct, flipped, "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn negate_is_complement() {
        let pairs = [(1, 2), (2, 2), (3, 2)];
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for (a, b) in pairs {
                assert_ne!(op.eval(a.cmp(&b)), op.negate().eval(a.cmp(&b)));
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(CmpOp::Le.to_string(), "<=");
        assert_eq!(CmpOp::Ne.to_string(), "<>");
    }
}
