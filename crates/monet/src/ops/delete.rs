//! Tuple deletion strategies.
//!
//! The paper reports (§6.2) that adding bespoke kernel operators for basket
//! maintenance — "in one go removes a set of tuples by shifting the
//! remaining tuples in the positions of the deleted ones" — bought 20–30%
//! over composing stock operators. Both paths live here so the ablation
//! bench (`ablation_delete`) can measure exactly that difference:
//!
//! * [`delete_shift`]: the bespoke single-pass in-place compaction
//!   (delegates to [`crate::relation::Relation::delete_sel`]).
//! * [`delete_compose`]: the stock-operator route — complement the
//!   selection, gather survivors into fresh columns, replace the relation.

use crate::error::Result;
use crate::relation::Relation;
use crate::selvec::SelVec;

/// In-place single-pass delete (the paper's bespoke operator).
pub fn delete_shift(rel: &mut Relation, sel: &SelVec) -> Result<()> {
    rel.delete_sel(sel)
}

/// Composed delete: `complement` + `gather` + replace. Processes every
/// column twice and allocates fresh storage — the baseline the bespoke
/// operator beats.
pub fn delete_compose(rel: &mut Relation, sel: &SelVec) -> Result<()> {
    sel.check_bounds(rel.len())?;
    let keep = sel.complement(rel.len());
    let survivors = rel.gather(&keep)?;
    *rel = survivors;
    Ok(())
}

/// Delete everything *except* the selection (retain).
pub fn retain_only(rel: &mut Relation, keep: &SelVec) -> Result<()> {
    keep.check_bounds(rel.len())?;
    let dead = keep.complement(rel.len());
    rel.delete_sel(&dead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{Relation, Schema};
    use crate::value::{Value, ValueType};

    fn rel(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Str)]);
        let mut r = Relation::new(&schema);
        for i in 0..n {
            r.append_row(&[Value::Int(i), Value::Str(format!("s{i}"))]).unwrap();
        }
        r
    }

    #[test]
    fn shift_and_compose_agree() {
        for dead in [
            vec![],
            vec![0u32],
            vec![9],
            vec![0, 1, 2],
            vec![3, 5, 7],
            (0..10).collect::<Vec<u32>>(),
        ] {
            let sel = SelVec::from_sorted(dead.clone()).unwrap();
            let mut a = rel(10);
            let mut b = rel(10);
            delete_shift(&mut a, &sel).unwrap();
            delete_compose(&mut b, &sel).unwrap();
            assert_eq!(a.len(), b.len(), "dead={dead:?}");
            for i in 0..a.len() {
                assert_eq!(a.row(i), b.row(i), "dead={dead:?} row {i}");
            }
        }
    }

    #[test]
    fn retain_keeps_only_selection() {
        let mut r = rel(5);
        retain_only(&mut r, &SelVec::from_sorted(vec![1, 4]).unwrap()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0)[0], Value::Int(1));
        assert_eq!(r.row(1)[0], Value::Int(4));
    }

    #[test]
    fn bounds_errors() {
        let mut r = rel(3);
        let sel = SelVec::from_sorted(vec![5]).unwrap();
        assert!(delete_shift(&mut r, &sel).is_err());
        assert!(delete_compose(&mut r, &sel).is_err());
        assert!(retain_only(&mut r, &sel).is_err());
        assert_eq!(r.len(), 3, "failed ops must not mutate");
    }
}
