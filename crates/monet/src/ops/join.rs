//! Join operators: hash equi-join and nested-loop theta-join.
//!
//! Joins return *position pair lists* `(left_positions, right_positions)` —
//! the caller gathers whatever columns it needs from either side, which is
//! how a column-store keeps joins narrow.

use std::collections::HashMap;

use crate::column::{Column, ColumnData};
use crate::error::{MonetError, Result};
use crate::hashtab::I64HashTable;
use crate::ops::CmpOp;
use crate::selvec::SelVec;

/// Matching position pairs, parallel vectors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinPairs {
    pub left: Vec<u32>,
    pub right: Vec<u32>,
}

impl JoinPairs {
    pub fn len(&self) -> usize {
        self.left.len()
    }

    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }
}

/// Hash equi-join between two key columns (Int/Ts or Str). Builds on the
/// right, probes with the left, emits pairs in left-scan order with right
/// matches ascending within each left row — i.e. `(left, right)`
/// lexicographic. NULL keys never match. Optional candidate lists restrict
/// either side.
pub fn hash_join(
    left: &Column,
    right: &Column,
    lcand: Option<&SelVec>,
    rcand: Option<&SelVec>,
) -> Result<JoinPairs> {
    if let Some(c) = lcand {
        c.check_bounds(left.len())?;
    }
    if let Some(c) = rcand {
        c.check_bounds(right.len())?;
    }
    match (left.data(), right.data()) {
        (ColumnData::Int(lk) | ColumnData::Ts(lk), ColumnData::Int(rk) | ColumnData::Ts(rk)) => {
            Ok(hash_join_i64(lk, rk, left, right, lcand, rcand))
        }
        (ColumnData::Str(lk), ColumnData::Str(rk)) => {
            Ok(hash_join_str(lk, rk, left, right, lcand, rcand))
        }
        _ => Err(MonetError::TypeMismatch {
            op: "hash_join",
            expected: left.vtype(),
            found: right.vtype(),
        }),
    }
}

fn hash_join_i64(
    lk: &[i64],
    rk: &[i64],
    left: &Column,
    right: &Column,
    lcand: Option<&SelVec>,
    rcand: Option<&SelVec>,
) -> JoinPairs {
    // Build side: restrict to candidates and non-NULL keys.
    let table = I64HashTable::build(rk, |i| {
        !right.is_valid(i) || rcand.is_some_and(|c| !c.contains(i as u32))
    });
    let mut pairs = JoinPairs::default();
    let mut probe_one = |p: u32| {
        if !left.is_valid(p as usize) {
            return;
        }
        for rpos in table.probe(lk[p as usize]) {
            pairs.left.push(p);
            pairs.right.push(rpos);
        }
    };
    match lcand {
        Some(c) => c.iter().for_each(&mut probe_one),
        None => (0..lk.len() as u32).for_each(&mut probe_one),
    }
    pairs
}

fn hash_join_str(
    lk: &[String],
    rk: &[String],
    left: &Column,
    right: &Column,
    lcand: Option<&SelVec>,
    rcand: Option<&SelVec>,
) -> JoinPairs {
    let mut table: HashMap<&str, Vec<u32>> = HashMap::with_capacity(rk.len());
    let mut build_one = |i: u32| {
        if right.is_valid(i as usize) {
            table.entry(rk[i as usize].as_str()).or_default().push(i);
        }
    };
    match rcand {
        Some(c) => c.iter().for_each(&mut build_one),
        None => (0..rk.len() as u32).for_each(&mut build_one),
    }
    let mut pairs = JoinPairs::default();
    let mut probe_one = |p: u32| {
        if !left.is_valid(p as usize) {
            return;
        }
        if let Some(matches) = table.get(lk[p as usize].as_str()) {
            for &rpos in matches {
                pairs.left.push(p);
                pairs.right.push(rpos);
            }
        }
    };
    match lcand {
        Some(c) => c.iter().for_each(&mut probe_one),
        None => (0..lk.len() as u32).for_each(&mut probe_one),
    }
    pairs
}

/// Nested-loop theta-join: all pairs where `left[i] <op> right[j]`.
/// Quadratic — used for the small windowed theta-joins in Linear Road,
/// not for bulk equi-joins.
pub fn theta_join(
    left: &Column,
    right: &Column,
    op: CmpOp,
    lcand: Option<&SelVec>,
    rcand: Option<&SelVec>,
) -> Result<JoinPairs> {
    if let Some(c) = lcand {
        c.check_bounds(left.len())?;
    }
    if let Some(c) = rcand {
        c.check_bounds(right.len())?;
    }
    if !(left.vtype().is_numeric() && right.vtype().is_numeric())
        && left.vtype() != right.vtype()
    {
        return Err(MonetError::TypeMismatch {
            op: "theta_join",
            expected: left.vtype(),
            found: right.vtype(),
        });
    }
    let lpos: Vec<u32> = match lcand {
        Some(c) => c.iter().collect(),
        None => (0..left.len() as u32).collect(),
    };
    let rpos: Vec<u32> = match rcand {
        Some(c) => c.iter().collect(),
        None => (0..right.len() as u32).collect(),
    };
    let mut pairs = JoinPairs::default();
    for &i in &lpos {
        if !left.is_valid(i as usize) {
            continue;
        }
        let lv = left.get(i as usize);
        for &j in &rpos {
            if !right.is_valid(j as usize) {
                continue;
            }
            let rv = right.get(j as usize);
            if let Some(ord) = lv.sql_cmp(&rv) {
                if op.eval(ord) {
                    pairs.left.push(i);
                    pairs.right.push(j);
                }
            }
        }
    }
    Ok(pairs)
}

/// Left semi-join: left positions having at least one match on the right.
pub fn semi_join(
    left: &Column,
    right: &Column,
    lcand: Option<&SelVec>,
    rcand: Option<&SelVec>,
) -> Result<SelVec> {
    let pairs = hash_join(left, right, lcand, rcand)?;
    let mut seen = pairs.left;
    seen.dedup(); // probe order is ascending per left position
    Ok(SelVec::from_unsorted(seen))
}

/// Left anti-join: left positions with no match on the right (NULL keys on
/// the left are excluded, as in SQL `NOT IN` with non-null semantics).
pub fn anti_join(
    left: &Column,
    right: &Column,
    lcand: Option<&SelVec>,
    rcand: Option<&SelVec>,
) -> Result<SelVec> {
    let matched = semi_join(left, right, lcand, rcand)?;
    let universe = match lcand {
        Some(c) => c.clone(),
        None => SelVec::all(left.len()),
    };
    let mut no_null: Vec<u32> = Vec::with_capacity(universe.len());
    for p in universe.iter() {
        if left.is_valid(p as usize) {
            no_null.push(p);
        }
    }
    Ok(SelVec::from_sorted_unchecked(no_null).difference(&matched))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Value, ValueType};

    fn ints(v: &[i64]) -> Column {
        Column::from_ints(v.to_vec())
    }

    #[test]
    fn equi_join_basic() {
        let l = ints(&[1, 2, 3, 2]);
        let r = ints(&[2, 4, 2]);
        let p = hash_join(&l, &r, None, None).unwrap();
        // left positions 1 and 3 (value 2) match right 0 and 2
        let mut got: Vec<(u32, u32)> = p.left.iter().copied().zip(p.right.iter().copied()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 0), (1, 2), (3, 0), (3, 2)]);
    }

    #[test]
    fn equi_join_with_candidates() {
        let l = ints(&[1, 2, 2]);
        let r = ints(&[2, 2]);
        let lc = SelVec::from_sorted(vec![1]).unwrap();
        let rc = SelVec::from_sorted(vec![0]).unwrap();
        let p = hash_join(&l, &r, Some(&lc), Some(&rc)).unwrap();
        assert_eq!(p.left, vec![1]);
        assert_eq!(p.right, vec![0]);
    }

    #[test]
    fn null_keys_never_match() {
        let mut l = Column::new(ValueType::Int);
        l.push(Value::Null).unwrap();
        l.push(Value::Int(0)).unwrap();
        let mut r = Column::new(ValueType::Int);
        r.push(Value::Int(0)).unwrap();
        r.push(Value::Null).unwrap();
        let p = hash_join(&l, &r, None, None).unwrap();
        // NULL payload is stored as 0 — it must still not match key 0
        assert_eq!(p.left, vec![1]);
        assert_eq!(p.right, vec![0]);
    }

    #[test]
    fn string_join() {
        let l = Column::from_strs(vec!["a".into(), "b".into()]);
        let r = Column::from_strs(vec!["b".into(), "b".into(), "c".into()]);
        let p = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.left.iter().all(|&x| x == 1));

        let bad = hash_join(&l, &ints(&[1]), None, None);
        assert!(bad.is_err());
    }

    #[test]
    fn ts_joins_with_int() {
        let l = Column::from_ts(vec![10, 20]);
        let r = ints(&[20]);
        let p = hash_join(&l, &r, None, None).unwrap();
        assert_eq!(p.left, vec![1]);
    }

    #[test]
    fn theta_join_less_than() {
        let l = ints(&[1, 5]);
        let r = ints(&[3, 6]);
        let p = theta_join(&l, &r, CmpOp::Lt, None, None).unwrap();
        let got: Vec<(u32, u32)> = p.left.into_iter().zip(p.right).collect();
        assert_eq!(got, vec![(0, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn theta_join_skips_nulls() {
        let mut l = Column::new(ValueType::Int);
        l.push(Value::Null).unwrap();
        l.push(Value::Int(1)).unwrap();
        let r = ints(&[2]);
        let p = theta_join(&l, &r, CmpOp::Lt, None, None).unwrap();
        assert_eq!(p.left, vec![1]);
    }

    #[test]
    fn semi_and_anti_partition() {
        let l = ints(&[1, 2, 3, 4]);
        let r = ints(&[2, 4, 4]);
        let semi = semi_join(&l, &r, None, None).unwrap();
        assert_eq!(semi.as_slice(), &[1, 3]);
        let anti = anti_join(&l, &r, None, None).unwrap();
        assert_eq!(anti.as_slice(), &[0, 2]);
        // semi ∪ anti = all (when no NULLs)
        assert_eq!(semi.union(&anti), SelVec::all(4));
    }

    #[test]
    fn anti_join_excludes_null_probes() {
        let mut l = Column::new(ValueType::Int);
        l.push(Value::Int(9)).unwrap();
        l.push(Value::Null).unwrap();
        let r = ints(&[1]);
        let anti = anti_join(&l, &r, None, None).unwrap();
        assert_eq!(anti.as_slice(), &[0], "NULL is neither matched nor anti-matched");
    }

    #[test]
    fn empty_sides() {
        let l = ints(&[]);
        let r = ints(&[1]);
        assert!(hash_join(&l, &r, None, None).unwrap().is_empty());
        assert!(hash_join(&r, &l, None, None).unwrap().is_empty());
    }
}
