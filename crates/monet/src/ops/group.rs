//! Grouping and aggregation.
//!
//! [`group_by`] assigns dense group ids over one or more key columns;
//! the `agg_*` functions then fold a value column per group. Ungrouped
//! (whole-column) aggregates are the `total_*` family.

use std::collections::HashMap;

use crate::column::{Column, ColumnData};
use crate::error::{MonetError, Result};
use crate::hashtab::I64GroupTable;
use crate::selvec::SelVec;
use crate::value::{Value, ValueType};

/// Result of a grouping pass.
#[derive(Debug, Clone)]
pub struct Grouping {
    /// Global row position of each grouped row (ascending).
    pub rows: Vec<u32>,
    /// Group id per entry of `rows` (dense, 0-based, first-seen order).
    pub gids: Vec<u32>,
    /// Number of groups.
    pub ngroups: u32,
    /// First row position of each group (index = group id).
    pub representatives: Vec<u32>,
}

impl Grouping {
    /// A single group covering all given rows (used for ungrouped
    /// aggregation through the same code path).
    pub fn single(rows: Vec<u32>) -> Self {
        let n = rows.len();
        Grouping {
            representatives: rows.first().copied().into_iter().collect(),
            gids: vec![0; n],
            ngroups: if n == 0 { 0 } else { 1 },
            rows,
        }
    }
}

/// Hashable group key for the generic multi-column path. Doubles key by
/// bit pattern (exact-value grouping, NaN groups with NaN).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyPart {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Bits(u64),
}

fn key_part(col: &Column, pos: usize) -> KeyPart {
    if !col.is_valid(pos) {
        return KeyPart::Null;
    }
    match col.data() {
        ColumnData::Bool(v) => KeyPart::Bool(v[pos]),
        ColumnData::Int(v) | ColumnData::Ts(v) => KeyPart::Int(v[pos]),
        ColumnData::Double(v) => KeyPart::Bits(v[pos].to_bits()),
        ColumnData::Str(v) => KeyPart::Str(v[pos].clone()),
    }
}

/// Group rows by the given key columns (all must be aligned). NULL is a
/// regular group key, as in SQL `GROUP BY`.
pub fn group_by(keys: &[&Column], cand: Option<&SelVec>) -> Result<Grouping> {
    if keys.is_empty() {
        return Err(MonetError::Invalid("group_by needs at least one key".into()));
    }
    let len = keys[0].len();
    for k in keys {
        if k.len() != len {
            return Err(MonetError::LengthMismatch {
                op: "group_by",
                left: len,
                right: k.len(),
            });
        }
    }
    if let Some(c) = cand {
        c.check_bounds(len)?;
    }
    let rows: Vec<u32> = match cand {
        Some(c) => c.iter().collect(),
        None => (0..len as u32).collect(),
    };

    // Fast path: single non-null int key.
    if keys.len() == 1 {
        if let (ColumnData::Int(v) | ColumnData::Ts(v), None) =
            (keys[0].data(), keys[0].validity())
        {
            let mut table = I64GroupTable::with_capacity(rows.len());
            let mut gids = Vec::with_capacity(rows.len());
            let mut representatives = Vec::new();
            for &p in &rows {
                let before = table.ngroups();
                let gid = table.insert(v[p as usize]);
                if table.ngroups() > before {
                    representatives.push(p);
                }
                gids.push(gid);
            }
            return Ok(Grouping {
                rows,
                gids,
                ngroups: table.ngroups(),
                representatives,
            });
        }
    }

    let mut map: HashMap<Vec<KeyPart>, u32> = HashMap::with_capacity(rows.len());
    let mut gids = Vec::with_capacity(rows.len());
    let mut representatives = Vec::new();
    for &p in &rows {
        let key: Vec<KeyPart> = keys.iter().map(|k| key_part(k, p as usize)).collect();
        let next = map.len() as u32;
        let gid = *map.entry(key).or_insert_with(|| {
            representatives.push(p);
            next
        });
        gids.push(gid);
    }
    Ok(Grouping {
        rows,
        gids,
        ngroups: map.len() as u32,
        representatives,
    })
}

/// COUNT(*) per group.
pub fn agg_count_star(g: &Grouping) -> Vec<i64> {
    let mut out = vec![0i64; g.ngroups as usize];
    for &gid in &g.gids {
        out[gid as usize] += 1;
    }
    out
}

/// COUNT(col) per group — non-NULL values only.
pub fn agg_count(col: &Column, g: &Grouping) -> Result<Vec<i64>> {
    check_agg_bounds(col, g)?;
    let mut out = vec![0i64; g.ngroups as usize];
    for (&p, &gid) in g.rows.iter().zip(&g.gids) {
        if col.is_valid(p as usize) {
            out[gid as usize] += 1;
        }
    }
    Ok(out)
}

fn check_agg_bounds(col: &Column, g: &Grouping) -> Result<()> {
    if let Some(&m) = g.rows.iter().max() {
        if m as usize >= col.len() {
            return Err(MonetError::SelectionOutOfBounds {
                pos: m,
                len: col.len(),
            });
        }
    }
    Ok(())
}

/// SUM per group: Int/Ts sum to Int, Double sums to Double; all-NULL
/// groups yield NULL (SQL semantics).
pub fn agg_sum(col: &Column, g: &Grouping) -> Result<Column> {
    check_agg_bounds(col, g)?;
    match col.data() {
        ColumnData::Int(v) | ColumnData::Ts(v) => {
            let mut sums = vec![0i64; g.ngroups as usize];
            let mut seen = vec![false; g.ngroups as usize];
            for (&p, &gid) in g.rows.iter().zip(&g.gids) {
                if col.is_valid(p as usize) {
                    sums[gid as usize] = sums[gid as usize].wrapping_add(v[p as usize]);
                    seen[gid as usize] = true;
                }
            }
            nullable_from(sums.into_iter().map(Value::Int), &seen, ValueType::Int)
        }
        ColumnData::Double(v) => {
            let mut sums = vec![0f64; g.ngroups as usize];
            let mut seen = vec![false; g.ngroups as usize];
            for (&p, &gid) in g.rows.iter().zip(&g.gids) {
                if col.is_valid(p as usize) {
                    sums[gid as usize] += v[p as usize];
                    seen[gid as usize] = true;
                }
            }
            nullable_from(sums.into_iter().map(Value::Double), &seen, ValueType::Double)
        }
        _ => Err(MonetError::TypeMismatch {
            op: "agg_sum",
            expected: ValueType::Int,
            found: col.vtype(),
        }),
    }
}

/// AVG per group (always Double; all-NULL groups yield NULL).
pub fn agg_avg(col: &Column, g: &Grouping) -> Result<Column> {
    let sums = agg_sum(col, g)?;
    let counts = agg_count(col, g)?;
    let mut out = Column::with_capacity(ValueType::Double, g.ngroups as usize);
    for (i, &count) in counts.iter().enumerate() {
        let s = sums.get(i);
        if count == 0 || s.is_null() {
            out.push(Value::Null)?;
        } else {
            out.push(Value::Double(s.as_double().expect("numeric") / count as f64))?;
        }
    }
    Ok(out)
}

/// MIN per group (input type preserved; all-NULL groups yield NULL).
pub fn agg_min(col: &Column, g: &Grouping) -> Result<Column> {
    agg_extreme(col, g, true)
}

/// MAX per group.
pub fn agg_max(col: &Column, g: &Grouping) -> Result<Column> {
    agg_extreme(col, g, false)
}

fn agg_extreme(col: &Column, g: &Grouping, min: bool) -> Result<Column> {
    check_agg_bounds(col, g)?;
    let mut best: Vec<Option<Value>> = vec![None; g.ngroups as usize];
    for (&p, &gid) in g.rows.iter().zip(&g.gids) {
        if !col.is_valid(p as usize) {
            continue;
        }
        let v = col.get(p as usize);
        let slot = &mut best[gid as usize];
        let replace = match slot {
            None => true,
            Some(cur) => match v.sql_cmp(cur) {
                Some(std::cmp::Ordering::Less) => min,
                Some(std::cmp::Ordering::Greater) => !min,
                _ => false,
            },
        };
        if replace {
            *slot = Some(v);
        }
    }
    let mut out = Column::with_capacity(col.vtype(), g.ngroups as usize);
    for b in best {
        out.push(b.unwrap_or(Value::Null))?;
    }
    Ok(out)
}

/// COUNT(DISTINCT col) per group.
pub fn agg_count_distinct(col: &Column, g: &Grouping) -> Result<Vec<i64>> {
    check_agg_bounds(col, g)?;
    let mut sets: Vec<std::collections::HashSet<KeyPart>> =
        vec![std::collections::HashSet::new(); g.ngroups as usize];
    for (&p, &gid) in g.rows.iter().zip(&g.gids) {
        if col.is_valid(p as usize) {
            sets[gid as usize].insert(key_part(col, p as usize));
        }
    }
    Ok(sets.into_iter().map(|s| s.len() as i64).collect())
}

fn nullable_from(
    values: impl Iterator<Item = Value>,
    seen: &[bool],
    vtype: ValueType,
) -> Result<Column> {
    let mut out = Column::with_capacity(vtype, seen.len());
    for (v, &ok) in values.zip(seen.iter()) {
        out.push(if ok { v } else { Value::Null })?;
    }
    Ok(out)
}

/// Whole-column COUNT of non-NULL values.
pub fn total_count(col: &Column, cand: Option<&SelVec>) -> Result<i64> {
    if let Some(c) = cand {
        c.check_bounds(col.len())?;
        Ok(c.iter().filter(|&p| col.is_valid(p as usize)).count() as i64)
    } else {
        Ok((col.len() - col.null_count()) as i64)
    }
}

/// Whole-column SUM (`Value::Null` when no non-NULL input).
pub fn total_sum(col: &Column, cand: Option<&SelVec>) -> Result<Value> {
    let g = grouping_for(col, cand)?;
    if g.ngroups == 0 {
        return Ok(Value::Null);
    }
    Ok(agg_sum(col, &g)?.get(0))
}

/// Whole-column MIN.
pub fn total_min(col: &Column, cand: Option<&SelVec>) -> Result<Value> {
    let g = grouping_for(col, cand)?;
    if g.ngroups == 0 {
        return Ok(Value::Null);
    }
    Ok(agg_min(col, &g)?.get(0))
}

/// Whole-column MAX.
pub fn total_max(col: &Column, cand: Option<&SelVec>) -> Result<Value> {
    let g = grouping_for(col, cand)?;
    if g.ngroups == 0 {
        return Ok(Value::Null);
    }
    Ok(agg_max(col, &g)?.get(0))
}

/// Whole-column AVG.
pub fn total_avg(col: &Column, cand: Option<&SelVec>) -> Result<Value> {
    let g = grouping_for(col, cand)?;
    if g.ngroups == 0 {
        return Ok(Value::Null);
    }
    Ok(agg_avg(col, &g)?.get(0))
}

fn grouping_for(col: &Column, cand: Option<&SelVec>) -> Result<Grouping> {
    if let Some(c) = cand {
        c.check_bounds(col.len())?;
        Ok(Grouping::single(c.iter().collect()))
    } else {
        Ok(Grouping::single((0..col.len() as u32).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Column {
        Column::from_ints(v.to_vec())
    }

    #[test]
    fn single_int_key_fast_path() {
        let k = ints(&[7, 8, 7, 9, 8]);
        let g = group_by(&[&k], None).unwrap();
        assert_eq!(g.ngroups, 3);
        assert_eq!(g.gids, vec![0, 1, 0, 2, 1]);
        assert_eq!(g.representatives, vec![0, 1, 3]);
    }

    #[test]
    fn multi_key_grouping() {
        let a = ints(&[1, 1, 2, 2]);
        let b = Column::from_strs(vec!["x".into(), "y".into(), "x".into(), "x".into()]);
        let g = group_by(&[&a, &b], None).unwrap();
        assert_eq!(g.ngroups, 3);
        assert_eq!(g.gids, vec![0, 1, 2, 2]);
    }

    #[test]
    fn null_is_a_group_key() {
        let mut k = Column::new(ValueType::Int);
        for v in [Value::Int(1), Value::Null, Value::Null, Value::Int(1)] {
            k.push(v).unwrap();
        }
        // force the generic path (nullable column)
        let g = group_by(&[&k], None).unwrap();
        assert_eq!(g.ngroups, 2);
        assert_eq!(g.gids, vec![0, 1, 1, 0]);
    }

    #[test]
    fn grouping_with_candidates() {
        let k = ints(&[5, 6, 5, 6]);
        let cand = SelVec::from_sorted(vec![1, 2, 3]).unwrap();
        let g = group_by(&[&k], Some(&cand)).unwrap();
        assert_eq!(g.rows, vec![1, 2, 3]);
        assert_eq!(g.gids, vec![0, 1, 0]);
        assert_eq!(g.ngroups, 2);
    }

    #[test]
    fn count_and_sum() {
        let k = ints(&[1, 1, 2]);
        let mut v = Column::new(ValueType::Int);
        for x in [Value::Int(10), Value::Null, Value::Int(30)] {
            v.push(x).unwrap();
        }
        let g = group_by(&[&k], None).unwrap();
        assert_eq!(agg_count_star(&g), vec![2, 1]);
        assert_eq!(agg_count(&v, &g).unwrap(), vec![1, 1]);
        let s = agg_sum(&v, &g).unwrap();
        assert_eq!(s.get(0), Value::Int(10));
        assert_eq!(s.get(1), Value::Int(30));
    }

    #[test]
    fn sum_all_null_group_is_null() {
        let k = ints(&[1, 2]);
        let mut v = Column::new(ValueType::Int);
        v.push(Value::Null).unwrap();
        v.push(Value::Int(5)).unwrap();
        let g = group_by(&[&k], None).unwrap();
        let s = agg_sum(&v, &g).unwrap();
        assert_eq!(s.get(0), Value::Null);
        assert_eq!(s.get(1), Value::Int(5));
    }

    #[test]
    fn min_max_avg() {
        let k = ints(&[1, 1, 1, 2]);
        let v = Column::from_doubles(vec![3.0, 1.0, 2.0, 9.0]);
        let g = group_by(&[&k], None).unwrap();
        assert_eq!(agg_min(&v, &g).unwrap().get(0), Value::Double(1.0));
        assert_eq!(agg_max(&v, &g).unwrap().get(0), Value::Double(3.0));
        assert_eq!(agg_avg(&v, &g).unwrap().get(0), Value::Double(2.0));
        assert_eq!(agg_avg(&v, &g).unwrap().get(1), Value::Double(9.0));
    }

    #[test]
    fn min_on_strings() {
        let k = ints(&[1, 1]);
        let v = Column::from_strs(vec!["pear".into(), "fig".into()]);
        let g = group_by(&[&k], None).unwrap();
        assert_eq!(agg_min(&v, &g).unwrap().get(0), Value::Str("fig".into()));
    }

    #[test]
    fn count_distinct() {
        let k = ints(&[1, 1, 1, 2]);
        let v = ints(&[5, 5, 6, 7]);
        let g = group_by(&[&k], None).unwrap();
        assert_eq!(agg_count_distinct(&v, &g).unwrap(), vec![2, 1]);
    }

    #[test]
    fn totals() {
        let v = ints(&[4, 2, 9]);
        assert_eq!(total_count(&v, None).unwrap(), 3);
        assert_eq!(total_sum(&v, None).unwrap(), Value::Int(15));
        assert_eq!(total_min(&v, None).unwrap(), Value::Int(2));
        assert_eq!(total_max(&v, None).unwrap(), Value::Int(9));
        assert_eq!(total_avg(&v, None).unwrap(), Value::Double(5.0));

        let cand = SelVec::from_sorted(vec![0, 2]).unwrap();
        assert_eq!(total_sum(&v, Some(&cand)).unwrap(), Value::Int(13));

        let empty = ints(&[]);
        assert_eq!(total_sum(&empty, None).unwrap(), Value::Null);
        assert_eq!(total_count(&empty, None).unwrap(), 0);
    }

    #[test]
    fn double_keys_group_by_bit_pattern() {
        let k = Column::from_doubles(vec![1.5, 1.5, 2.5]);
        let g = group_by(&[&k], None).unwrap();
        assert_eq!(g.ngroups, 2);
    }

    #[test]
    fn errors() {
        assert!(group_by(&[], None).is_err());
        let a = ints(&[1]);
        let b = ints(&[1, 2]);
        assert!(group_by(&[&a, &b], None).is_err());
        let g = group_by(&[&b], None).unwrap();
        let short = ints(&[1]);
        assert!(agg_sum(&short, &g).is_err());
        let s = Column::from_strs(vec!["x".into(), "y".into()]);
        assert!(agg_sum(&s, &g).is_err());
    }
}
