//! Vectorized scalar computation: arithmetic, comparisons and three-valued
//! boolean logic over whole columns. These back the map/projection
//! expressions of the SQL layer.

use crate::bitset::Bitset;
use crate::column::{Column, ColumnData};
use crate::error::{MonetError, Result};
use crate::ops::CmpOp;
use crate::value::{Value, ValueType};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl std::fmt::Display for ArithOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        })
    }
}

#[inline]
fn apply_i64(op: ArithOp, a: i64, b: i64) -> Option<i64> {
    match op {
        ArithOp::Add => Some(a.wrapping_add(b)),
        ArithOp::Sub => Some(a.wrapping_sub(b)),
        ArithOp::Mul => Some(a.wrapping_mul(b)),
        // Division by zero yields NULL: a continuous query must keep
        // flowing, and SQL NULL is the honest result for an undefined value.
        ArithOp::Div => {
            if b == 0 {
                None
            } else {
                Some(a.wrapping_div(b))
            }
        }
        ArithOp::Mod => {
            if b == 0 {
                None
            } else {
                Some(a.wrapping_rem(b))
            }
        }
    }
}

#[inline]
fn apply_f64(op: ArithOp, a: f64, b: f64) -> f64 {
    match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => a / b,
        ArithOp::Mod => a % b,
    }
}

enum NumSide<'a> {
    Ints(&'a [i64]),
    Doubles(&'a [f64]),
}

fn numeric_side<'a>(col: &'a Column, op: &'static str) -> Result<NumSide<'a>> {
    match col.data() {
        ColumnData::Int(v) | ColumnData::Ts(v) => Ok(NumSide::Ints(v)),
        ColumnData::Double(v) => Ok(NumSide::Doubles(v)),
        _ => Err(MonetError::TypeMismatch {
            op,
            expected: ValueType::Int,
            found: col.vtype(),
        }),
    }
}

fn merged_validity(l: &Column, r: &Column) -> Option<Bitset> {
    match (l.validity(), r.validity()) {
        (None, None) => None,
        _ => {
            let mut m = Bitset::new();
            for i in 0..l.len() {
                m.push(l.is_valid(i) && r.is_valid(i));
            }
            Some(m)
        }
    }
}

/// Element-wise arithmetic between two aligned columns. Int⊕Int → Int,
/// anything involving a Double → Double. NULL propagates; integer division
/// by zero yields NULL.
pub fn arith(op: ArithOp, l: &Column, r: &Column) -> Result<Column> {
    if l.len() != r.len() {
        return Err(MonetError::LengthMismatch {
            op: "arith",
            left: l.len(),
            right: r.len(),
        });
    }
    let n = l.len();
    let (ls, rs) = (numeric_side(l, "arith")?, numeric_side(r, "arith")?);
    let base_validity = merged_validity(l, r);
    match (ls, rs) {
        (NumSide::Ints(a), NumSide::Ints(b)) => {
            let mut out = Vec::with_capacity(n);
            let mut mask = base_validity.unwrap_or_else(|| Bitset::filled(n, true));
            for i in 0..n {
                if mask.get(i) {
                    match apply_i64(op, a[i], b[i]) {
                        Some(v) => out.push(v),
                        None => {
                            out.push(0);
                            mask.set(i, false);
                        }
                    }
                } else {
                    out.push(0);
                }
            }
            Column::from_parts(ColumnData::Int(out), Some(mask))
        }
        (ls, rs) => {
            let mut out = Vec::with_capacity(n);
            let get = |s: &NumSide<'_>, i: usize| -> f64 {
                match s {
                    NumSide::Ints(v) => v[i] as f64,
                    NumSide::Doubles(v) => v[i],
                }
            };
            for i in 0..n {
                out.push(apply_f64(op, get(&ls, i), get(&rs, i)));
            }
            Column::from_parts(ColumnData::Double(out), base_validity)
        }
    }
}

/// Arithmetic against a constant (`col ⊕ k` or `k ⊕ col`).
pub fn arith_const(op: ArithOp, col: &Column, k: &Value, col_on_left: bool) -> Result<Column> {
    if k.is_null() {
        // NULL constant poisons every row.
        let data = match col.vtype() {
            ValueType::Double => ColumnData::Double(vec![0.0; col.len()]),
            _ => ColumnData::Int(vec![0; col.len()]),
        };
        return Column::from_parts(data, Some(Bitset::filled(col.len(), false)));
    }
    let kcol = broadcast(k, col.len())?;
    if col_on_left {
        arith(op, col, &kcol)
    } else {
        arith(op, &kcol, col)
    }
}

fn broadcast(k: &Value, n: usize) -> Result<Column> {
    match k {
        Value::Int(v) | Value::Ts(v) => Ok(Column::from_ints(vec![*v; n])),
        Value::Double(v) => Ok(Column::from_doubles(vec![*v; n])),
        _ => Err(MonetError::TypeMismatch {
            op: "arith_const",
            expected: ValueType::Int,
            found: k.value_type().unwrap_or(ValueType::Bool),
        }),
    }
}

/// Typed slice comparison (no NULLs on either side). `Err(())` means the
/// type pairing has no vectorized kernel; NaN comparisons surface as the
/// same `TypeMismatch` the boxed path raises.
fn compare_slices(op: CmpOp, l: &Column, r: &Column) -> Option<Result<Vec<bool>>> {
    use crate::column::ColumnData as CD;
    let mismatch = || MonetError::TypeMismatch {
        op: "compare",
        expected: l.vtype(),
        found: r.vtype(),
    };
    let out: Result<Vec<bool>> = match (l.data(), r.data()) {
        (CD::Int(a) | CD::Ts(a), CD::Int(b) | CD::Ts(b)) => {
            Ok(a.iter().zip(b).map(|(x, y)| op.eval(x.cmp(y))).collect())
        }
        (CD::Double(a), CD::Double(b)) => a
            .iter()
            .zip(b)
            .map(|(x, y)| x.partial_cmp(y).map(|o| op.eval(o)).ok_or_else(mismatch))
            .collect(),
        (CD::Int(a) | CD::Ts(a), CD::Double(b)) => a
            .iter()
            .zip(b)
            .map(|(x, y)| {
                (*x as f64)
                    .partial_cmp(y)
                    .map(|o| op.eval(o))
                    .ok_or_else(mismatch)
            })
            .collect(),
        (CD::Double(a), CD::Int(b) | CD::Ts(b)) => a
            .iter()
            .zip(b)
            .map(|(x, y)| {
                x.partial_cmp(&(*y as f64))
                    .map(|o| op.eval(o))
                    .ok_or_else(mismatch)
            })
            .collect(),
        (CD::Str(a), CD::Str(b)) => {
            Ok(a.iter().zip(b).map(|(x, y)| op.eval(x.cmp(y))).collect())
        }
        (CD::Bool(a), CD::Bool(b)) => {
            Ok(a.iter().zip(b).map(|(x, y)| op.eval(x.cmp(y))).collect())
        }
        _ => return None,
    };
    Some(out)
}

/// Element-wise comparison producing a nullable Bool column (three-valued:
/// NULL operand → NULL result).
pub fn compare(op: CmpOp, l: &Column, r: &Column) -> Result<Column> {
    if l.len() != r.len() {
        return Err(MonetError::LengthMismatch {
            op: "compare",
            left: l.len(),
            right: r.len(),
        });
    }
    // Vectorized kernels for the all-valid case — the WHERE-clause hot
    // path; the boxed loop below is the NULL/mixed-type fallback.
    if l.validity().is_none() && r.validity().is_none() {
        if let Some(out) = compare_slices(op, l, r) {
            return Column::from_parts(ColumnData::Bool(out?), None);
        }
    }
    let n = l.len();
    let mut out = Vec::with_capacity(n);
    let mut any_null = false;
    let mut mask = Bitset::filled(n, true);
    for i in 0..n {
        let (lv, rv) = (l.get(i), r.get(i));
        match lv.sql_cmp(&rv) {
            Some(ord) => out.push(op.eval(ord)),
            None => {
                if lv.is_null() || rv.is_null() {
                    out.push(false);
                    mask.set(i, false);
                    any_null = true;
                } else {
                    return Err(MonetError::TypeMismatch {
                        op: "compare",
                        expected: l.vtype(),
                        found: r.vtype(),
                    });
                }
            }
        }
    }
    Column::from_parts(ColumnData::Bool(out), any_null.then_some(mask))
}

/// Comparison against a constant.
pub fn compare_const(op: CmpOp, col: &Column, k: &Value, col_on_left: bool) -> Result<Column> {
    // Vectorized path: materialize nothing, compare the typed slice
    // against the constant directly (`WHERE col <op> literal`).
    if col.validity().is_none() && !k.is_null() {
        use crate::column::ColumnData as CD;
        let mismatch = || MonetError::TypeMismatch {
            op: "compare_const",
            expected: col.vtype(),
            found: k.value_type().unwrap_or(ValueType::Bool),
        };
        let eval = |ord: Option<std::cmp::Ordering>| -> Result<bool> {
            let ord = ord.ok_or_else(mismatch)?;
            Ok(op.eval(if col_on_left { ord } else { ord.reverse() }))
        };
        let out: Option<Result<Vec<bool>>> = match (col.data(), k) {
            (CD::Int(a) | CD::Ts(a), Value::Int(kk) | Value::Ts(kk)) => {
                Some(a.iter().map(|x| eval(Some(x.cmp(kk)))).collect())
            }
            (CD::Int(a) | CD::Ts(a), Value::Double(kk)) => {
                Some(a.iter().map(|x| eval((*x as f64).partial_cmp(kk))).collect())
            }
            (CD::Double(a), Value::Double(kk)) => {
                Some(a.iter().map(|x| eval(x.partial_cmp(kk))).collect())
            }
            (CD::Double(a), Value::Int(kk)) => {
                let kk = *kk as f64;
                Some(a.iter().map(|x| eval(x.partial_cmp(&kk))).collect())
            }
            (CD::Str(a), Value::Str(kk)) => {
                Some(a.iter().map(|x| eval(Some(x.as_str().cmp(kk.as_str())))).collect())
            }
            (CD::Bool(a), Value::Bool(kk)) => {
                Some(a.iter().map(|x| eval(Some(x.cmp(kk)))).collect())
            }
            _ => None,
        };
        if let Some(out) = out {
            return Column::from_parts(ColumnData::Bool(out?), None);
        }
    }
    let n = col.len();
    let mut out = Vec::with_capacity(n);
    let mut any_null = false;
    let mut mask = Bitset::filled(n, true);
    for i in 0..n {
        let v = col.get(i);
        let ord = if col_on_left {
            v.sql_cmp(k)
        } else {
            k.sql_cmp(&v)
        };
        match ord {
            Some(o) => out.push(op.eval(o)),
            None => {
                if v.is_null() || k.is_null() {
                    out.push(false);
                    mask.set(i, false);
                    any_null = true;
                } else {
                    return Err(MonetError::TypeMismatch {
                        op: "compare_const",
                        expected: col.vtype(),
                        found: k.value_type().unwrap_or(ValueType::Bool),
                    });
                }
            }
        }
    }
    Column::from_parts(ColumnData::Bool(out), any_null.then_some(mask))
}

/// Three-valued AND over nullable bool columns.
pub fn and3(l: &Column, r: &Column) -> Result<Column> {
    bool3(l, r, |a, b| match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    })
}

/// Three-valued OR.
pub fn or3(l: &Column, r: &Column) -> Result<Column> {
    bool3(l, r, |a, b| match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    })
}

fn bool3(
    l: &Column,
    r: &Column,
    f: impl Fn(Option<bool>, Option<bool>) -> Option<bool>,
) -> Result<Column> {
    if l.len() != r.len() {
        return Err(MonetError::LengthMismatch {
            op: "bool3",
            left: l.len(),
            right: r.len(),
        });
    }
    let (lb, rb) = (l.bools()?, r.bools()?);
    let n = l.len();
    let mut out = Vec::with_capacity(n);
    let mut mask = Bitset::filled(n, true);
    let mut any_null = false;
    for i in 0..n {
        let a = l.is_valid(i).then(|| lb[i]);
        let b = r.is_valid(i).then(|| rb[i]);
        match f(a, b) {
            Some(v) => out.push(v),
            None => {
                out.push(false);
                mask.set(i, false);
                any_null = true;
            }
        }
    }
    Column::from_parts(ColumnData::Bool(out), any_null.then_some(mask))
}

/// Three-valued NOT.
pub fn not3(col: &Column) -> Result<Column> {
    let b = col.bools()?;
    let out: Vec<bool> = b.iter().map(|v| !v).collect();
    Column::from_parts(ColumnData::Bool(out), col.validity().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Column {
        Column::from_ints(v.to_vec())
    }

    #[test]
    fn int_arith() {
        let a = ints(&[10, 20, 30]);
        let b = ints(&[3, 4, 5]);
        assert_eq!(
            arith(ArithOp::Add, &a, &b).unwrap().ints().unwrap(),
            &[13, 24, 35]
        );
        assert_eq!(
            arith(ArithOp::Sub, &a, &b).unwrap().ints().unwrap(),
            &[7, 16, 25]
        );
        assert_eq!(
            arith(ArithOp::Mul, &a, &b).unwrap().ints().unwrap(),
            &[30, 80, 150]
        );
        assert_eq!(
            arith(ArithOp::Div, &a, &b).unwrap().ints().unwrap(),
            &[3, 5, 6]
        );
        assert_eq!(
            arith(ArithOp::Mod, &a, &b).unwrap().ints().unwrap(),
            &[1, 0, 0]
        );
    }

    #[test]
    fn division_by_zero_yields_null() {
        let a = ints(&[10, 20]);
        let b = ints(&[0, 5]);
        let c = arith(ArithOp::Div, &a, &b).unwrap();
        assert_eq!(c.get(0), Value::Null);
        assert_eq!(c.get(1), Value::Int(4));
        let m = arith(ArithOp::Mod, &a, &b).unwrap();
        assert_eq!(m.get(0), Value::Null);
    }

    #[test]
    fn mixed_promotes_to_double() {
        let a = ints(&[1, 2]);
        let b = Column::from_doubles(vec![0.5, 0.25]);
        let c = arith(ArithOp::Mul, &a, &b).unwrap();
        assert_eq!(c.doubles().unwrap(), &[0.5, 0.5]);
        let d = arith(ArithOp::Div, &b, &a).unwrap();
        assert_eq!(d.doubles().unwrap(), &[0.5, 0.125]);
    }

    #[test]
    fn null_propagation() {
        let mut a = Column::new(ValueType::Int);
        a.push(Value::Null).unwrap();
        a.push(Value::Int(2)).unwrap();
        let b = ints(&[1, 1]);
        let c = arith(ArithOp::Add, &a, &b).unwrap();
        assert_eq!(c.get(0), Value::Null);
        assert_eq!(c.get(1), Value::Int(3));
    }

    #[test]
    fn const_variants() {
        let a = ints(&[1, 2, 3]);
        assert_eq!(
            arith_const(ArithOp::Mul, &a, &Value::Int(2), true)
                .unwrap()
                .ints()
                .unwrap(),
            &[2, 4, 6]
        );
        assert_eq!(
            arith_const(ArithOp::Sub, &a, &Value::Int(10), false)
                .unwrap()
                .ints()
                .unwrap(),
            &[9, 8, 7],
            "k - col"
        );
        let n = arith_const(ArithOp::Add, &a, &Value::Null, true).unwrap();
        assert!((0..3).all(|i| n.get(i) == Value::Null));
        assert!(arith_const(ArithOp::Add, &a, &Value::Str("x".into()), true).is_err());
    }

    #[test]
    fn compare_columns() {
        let a = ints(&[1, 5, 3]);
        let b = ints(&[2, 5, 1]);
        let c = compare(CmpOp::Lt, &a, &b).unwrap();
        assert_eq!(c.bools().unwrap(), &[true, false, false]);
        let c = compare(CmpOp::Eq, &a, &b).unwrap();
        assert_eq!(c.bools().unwrap(), &[false, true, false]);
    }

    #[test]
    fn compare_with_nulls_is_three_valued() {
        let mut a = Column::new(ValueType::Int);
        a.push(Value::Null).unwrap();
        a.push(Value::Int(1)).unwrap();
        let c = compare_const(CmpOp::Eq, &a, &Value::Int(1), true).unwrap();
        assert_eq!(c.get(0), Value::Null);
        assert_eq!(c.get(1), Value::Bool(true));
    }

    #[test]
    fn compare_type_error() {
        let a = ints(&[1]);
        let b = Column::from_strs(vec!["x".into()]);
        assert!(compare(CmpOp::Eq, &a, &b).is_err());
    }

    #[test]
    fn three_valued_logic_table() {
        // encode T / F / N as columns
        let mk = |vals: &[Option<bool>]| {
            let mut c = Column::new(ValueType::Bool);
            for v in vals {
                c.push(v.map(Value::Bool).unwrap_or(Value::Null)).unwrap();
            }
            c
        };
        let t = Some(true);
        let f = Some(false);
        let n = None;
        let l = mk(&[t, t, t, f, f, f, n, n, n]);
        let r = mk(&[t, f, n, t, f, n, t, f, n]);
        let and = and3(&l, &r).unwrap();
        let or = or3(&l, &r).unwrap();
        let expect_and = [t, f, n, f, f, f, n, f, n];
        let expect_or = [t, t, t, t, f, n, t, n, n];
        for i in 0..9 {
            let got = and.is_valid(i).then(|| and.bools().unwrap()[i]);
            assert_eq!(got, expect_and[i], "AND case {i}");
            let got = or.is_valid(i).then(|| or.bools().unwrap()[i]);
            assert_eq!(got, expect_or[i], "OR case {i}");
        }
        let negated = not3(&l).unwrap();
        assert!(!negated.bools().unwrap()[0]);
        assert_eq!(negated.get(6), Value::Null);
    }

    #[test]
    fn length_mismatches() {
        let a = ints(&[1]);
        let b = ints(&[1, 2]);
        assert!(arith(ArithOp::Add, &a, &b).is_err());
        assert!(compare(CmpOp::Eq, &a, &b).is_err());
        let ba = Column::from_bools(vec![true]);
        let bb = Column::from_bools(vec![true, false]);
        assert!(and3(&ba, &bb).is_err());
    }

    #[test]
    fn ts_arithmetic_behaves_as_int() {
        let t = Column::from_ts(vec![100, 200]);
        let c = arith_const(ArithOp::Sub, &t, &Value::Int(50), true).unwrap();
        assert_eq!(c.ints().unwrap(), &[50, 150]);
    }
}
