//! Selection vectors: sorted candidate lists of row positions.
//!
//! MonetDB-style kernels avoid materializing intermediate results by passing
//! *candidate lists* between operators: a range select over a BAT returns the
//! qualifying positions, the next operator only inspects those. [`SelVec`]
//! is that structure — a strictly ascending list of `u32` positions.

use crate::error::{MonetError, Result};

/// A strictly ascending list of row positions within a column / relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelVec {
    positions: Vec<u32>,
}

impl SelVec {
    /// Empty selection.
    pub fn empty() -> Self {
        SelVec::default()
    }

    /// Dense selection of every position in `0..len`.
    pub fn all(len: usize) -> Self {
        SelVec {
            positions: (0..len as u32).collect(),
        }
    }

    /// Selection of the half-open range `start..end`.
    pub fn range(start: u32, end: u32) -> Self {
        SelVec {
            positions: (start..end).collect(),
        }
    }

    /// Build from a vector that is already strictly ascending.
    ///
    /// Returns an error if the invariant does not hold; use
    /// [`SelVec::from_unsorted`] to sort + dedup instead.
    pub fn from_sorted(positions: Vec<u32>) -> Result<Self> {
        if positions.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MonetError::Invalid(
                "selection vector must be strictly ascending".into(),
            ));
        }
        Ok(SelVec { positions })
    }

    /// Build from arbitrary positions; sorts and removes duplicates.
    pub fn from_unsorted(mut positions: Vec<u32>) -> Self {
        positions.sort_unstable();
        positions.dedup();
        SelVec { positions }
    }

    /// Internal: construct without checking. Callers must uphold ordering.
    pub(crate) fn from_sorted_unchecked(positions: Vec<u32>) -> Self {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        SelVec { positions }
    }

    pub fn len(&self) -> usize {
        self.positions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.positions
    }

    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.positions.iter().copied()
    }

    /// Largest selected position, if any.
    pub fn max(&self) -> Option<u32> {
        self.positions.last().copied()
    }

    /// Binary-search membership test.
    pub fn contains(&self, pos: u32) -> bool {
        self.positions.binary_search(&pos).is_ok()
    }

    /// Keep only the first `n` positions (for LIMIT/TOP pushdown).
    pub fn take_first(&self, n: usize) -> SelVec {
        SelVec {
            positions: self.positions.iter().take(n).copied().collect(),
        }
    }

    /// Set intersection (both inputs ascending ⇒ linear merge).
    pub fn intersect(&self, other: &SelVec) -> SelVec {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.positions, &other.positions);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        SelVec { positions: out }
    }

    /// Set union (linear merge).
    pub fn union(&self, other: &SelVec) -> SelVec {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.positions, &other.positions);
        let mut out = Vec::with_capacity(a.len() + b.len());
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        SelVec { positions: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &SelVec) -> SelVec {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.positions, &other.positions);
        let mut out = Vec::with_capacity(a.len());
        while i < a.len() {
            if j >= b.len() || a[i] < b[j] {
                out.push(a[i]);
                i += 1;
            } else if a[i] == b[j] {
                i += 1;
                j += 1;
            } else {
                j += 1;
            }
        }
        SelVec { positions: out }
    }

    /// Complement within a universe of `len` rows.
    pub fn complement(&self, len: usize) -> SelVec {
        let mut out = Vec::with_capacity(len - self.positions.len().min(len));
        let mut next = self.positions.iter().peekable();
        for pos in 0..len as u32 {
            if next.peek() == Some(&&pos) {
                next.next();
            } else {
                out.push(pos);
            }
        }
        SelVec { positions: out }
    }

    /// Validate that every position is below `len`.
    pub fn check_bounds(&self, len: usize) -> Result<()> {
        match self.max() {
            Some(m) if (m as usize) >= len => {
                Err(MonetError::SelectionOutOfBounds { pos: m, len })
            }
            _ => Ok(()),
        }
    }
}

impl FromIterator<u32> for SelVec {
    /// Collects and normalizes (sorts + dedups) arbitrary positions.
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        SelVec::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[u32]) -> SelVec {
        SelVec::from_sorted(v.to_vec()).unwrap()
    }

    #[test]
    fn constructors() {
        assert_eq!(SelVec::empty().len(), 0);
        assert_eq!(SelVec::all(4).as_slice(), &[0, 1, 2, 3]);
        assert_eq!(SelVec::range(2, 5).as_slice(), &[2, 3, 4]);
        assert!(SelVec::from_sorted(vec![3, 1]).is_err());
        assert!(SelVec::from_sorted(vec![1, 1]).is_err());
        assert_eq!(
            SelVec::from_unsorted(vec![3, 1, 3, 2]).as_slice(),
            &[1, 2, 3]
        );
    }

    #[test]
    fn membership_and_max() {
        let s = sv(&[1, 4, 9]);
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert_eq!(s.max(), Some(9));
        assert_eq!(SelVec::empty().max(), None);
    }

    #[test]
    fn intersect_union_difference() {
        let a = sv(&[1, 3, 5, 7]);
        let b = sv(&[3, 4, 5, 8]);
        assert_eq!(a.intersect(&b).as_slice(), &[3, 5]);
        assert_eq!(a.union(&b).as_slice(), &[1, 3, 4, 5, 7, 8]);
        assert_eq!(a.difference(&b).as_slice(), &[1, 7]);
        assert_eq!(b.difference(&a).as_slice(), &[4, 8]);
        assert_eq!(a.intersect(&SelVec::empty()).len(), 0);
        assert_eq!(a.union(&SelVec::empty()), a);
    }

    #[test]
    fn complement_partitions_universe() {
        let a = sv(&[0, 2, 4]);
        let c = a.complement(6);
        assert_eq!(c.as_slice(), &[1, 3, 5]);
        assert_eq!(a.union(&c), SelVec::all(6));
        assert_eq!(a.intersect(&c).len(), 0);
    }

    #[test]
    fn take_first_and_bounds() {
        let a = sv(&[2, 5, 9]);
        assert_eq!(a.take_first(2).as_slice(), &[2, 5]);
        assert_eq!(a.take_first(10).as_slice(), &[2, 5, 9]);
        assert!(a.check_bounds(10).is_ok());
        assert!(matches!(
            a.check_bounds(9),
            Err(MonetError::SelectionOutOfBounds { pos: 9, len: 9 })
        ));
    }

    #[test]
    fn from_iterator_normalizes() {
        let s: SelVec = [5u32, 1, 5, 0].into_iter().collect();
        assert_eq!(s.as_slice(), &[0, 1, 5]);
    }
}
