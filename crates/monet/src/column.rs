//! Typed columnar storage with optional validity (NULL) masks.
//!
//! A [`Column`] is the tail of a MonetDB BAT: a dense, typed vector. The
//! head (OID) column is virtual — a position *is* its OID — which is what
//! makes positional tuple reconstruction across aligned columns free.
//!
//! Payloads are `Arc`-backed and copy-on-write: `Column::clone` (and hence
//! `Relation::clone`) is a refcount bump per column, so snapshotting a
//! basket costs O(width) instead of O(rows × width). Mutation goes through
//! [`Arc::make_mut`], which deep-copies only when the payload is shared —
//! a clone therefore behaves as an immutable snapshot of the column at
//! clone time, no matter what happens to the source afterwards.

use std::sync::Arc;

use crate::bitset::Bitset;
use crate::error::{MonetError, Result};
use crate::selvec::SelVec;
use crate::value::{Value, ValueType};

/// Physical storage for one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Double(Vec<f64>),
    Str(Vec<String>),
    Ts(Vec<i64>),
}

impl ColumnData {
    fn new(vtype: ValueType) -> Self {
        match vtype {
            ValueType::Bool => ColumnData::Bool(Vec::new()),
            ValueType::Int => ColumnData::Int(Vec::new()),
            ValueType::Double => ColumnData::Double(Vec::new()),
            ValueType::Str => ColumnData::Str(Vec::new()),
            ValueType::Ts => ColumnData::Ts(Vec::new()),
        }
    }

    fn with_capacity(vtype: ValueType, cap: usize) -> Self {
        match vtype {
            ValueType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
            ValueType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            ValueType::Double => ColumnData::Double(Vec::with_capacity(cap)),
            ValueType::Str => ColumnData::Str(Vec::with_capacity(cap)),
            ValueType::Ts => ColumnData::Ts(Vec::with_capacity(cap)),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Ts(v) => v.len(),
        }
    }

    fn vtype(&self) -> ValueType {
        match self {
            ColumnData::Bool(_) => ValueType::Bool,
            ColumnData::Int(_) => ValueType::Int,
            ColumnData::Double(_) => ValueType::Double,
            ColumnData::Str(_) => ValueType::Str,
            ColumnData::Ts(_) => ValueType::Ts,
        }
    }

    fn clear(&mut self) {
        match self {
            ColumnData::Bool(v) => v.clear(),
            ColumnData::Int(v) => v.clear(),
            ColumnData::Double(v) => v.clear(),
            ColumnData::Str(v) => v.clear(),
            ColumnData::Ts(v) => v.clear(),
        }
    }
}

/// A typed column with an optional validity mask.
///
/// `validity == None` means "no NULLs"; the mask is materialized lazily on
/// the first NULL append so the common all-valid path stays mask-free.
///
/// Cloning is O(1): payload and mask are shared behind `Arc`s until either
/// side mutates (copy-on-write).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: Arc<ColumnData>,
    validity: Option<Arc<Bitset>>,
}

impl Column {
    /// New empty column of the given type.
    pub fn new(vtype: ValueType) -> Self {
        Column {
            data: Arc::new(ColumnData::new(vtype)),
            validity: None,
        }
    }

    /// New empty column with reserved capacity.
    pub fn with_capacity(vtype: ValueType, cap: usize) -> Self {
        Column {
            data: Arc::new(ColumnData::with_capacity(vtype, cap)),
            validity: None,
        }
    }

    pub fn from_ints(v: Vec<i64>) -> Self {
        Column {
            data: Arc::new(ColumnData::Int(v)),
            validity: None,
        }
    }

    pub fn from_doubles(v: Vec<f64>) -> Self {
        Column {
            data: Arc::new(ColumnData::Double(v)),
            validity: None,
        }
    }

    pub fn from_bools(v: Vec<bool>) -> Self {
        Column {
            data: Arc::new(ColumnData::Bool(v)),
            validity: None,
        }
    }

    pub fn from_strs(v: Vec<String>) -> Self {
        Column {
            data: Arc::new(ColumnData::Str(v)),
            validity: None,
        }
    }

    pub fn from_ts(v: Vec<i64>) -> Self {
        Column {
            data: Arc::new(ColumnData::Ts(v)),
            validity: None,
        }
    }

    /// Build a column of `vtype` from boxed values, NULLs allowed.
    pub fn from_values(vtype: ValueType, values: &[Value]) -> Result<Self> {
        let mut col = Column::with_capacity(vtype, values.len());
        for v in values {
            col.push(v.clone())?;
        }
        Ok(col)
    }

    /// Construct from raw parts. The validity mask, when present, must have
    /// the same length as the data.
    pub fn from_parts(data: ColumnData, validity: Option<Bitset>) -> Result<Self> {
        if let Some(mask) = &validity {
            if mask.len() != data.len() {
                return Err(MonetError::LengthMismatch {
                    op: "from_parts",
                    left: data.len(),
                    right: mask.len(),
                });
            }
            if mask.all_set() {
                return Ok(Column {
                    data: Arc::new(data),
                    validity: None,
                });
            }
        }
        Ok(Column {
            data: Arc::new(data),
            validity: validity.map(Arc::new),
        })
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn vtype(&self) -> ValueType {
        self.data.vtype()
    }

    /// Number of NULLs.
    pub fn null_count(&self) -> usize {
        self.validity.as_ref().map_or(0, |m| m.count_zeros())
    }

    /// Is position `i` non-NULL?
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_deref().is_none_or(|m| m.get(i))
    }

    /// Whether this column shares its payload storage with `other` (i.e.
    /// both are copy-on-write views of the same allocation). Diagnostic
    /// hook for the zero-copy snapshot tests and benches.
    pub fn shares_data(&self, other: &Column) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Exclusive handle to the payload; deep-copies first if shared.
    fn data_mut(&mut self) -> &mut ColumnData {
        Arc::make_mut(&mut self.data)
    }

    fn ensure_mask(&mut self) -> &mut Bitset {
        let len = self.len();
        Arc::make_mut(
            self.validity
                .get_or_insert_with(|| Arc::new(Bitset::filled(len, true))),
        )
    }

    /// Append one value; NULLs store a type-default payload and clear the
    /// validity bit. Type mismatches are errors.
    pub fn push(&mut self, value: Value) -> Result<()> {
        if value.is_null() {
            // Mask first: ensure_mask sizes itself off the current length,
            // which must not yet include the new slot.
            self.ensure_mask().push(false);
            match self.data_mut() {
                ColumnData::Bool(v) => v.push(false),
                ColumnData::Int(v) => v.push(0),
                ColumnData::Double(v) => v.push(0.0),
                ColumnData::Str(v) => v.push(String::new()),
                ColumnData::Ts(v) => v.push(0),
            }
            return Ok(());
        }
        if !matches!(
            (self.vtype(), value.value_type()),
            (ValueType::Bool, Some(ValueType::Bool))
                | (ValueType::Int, Some(ValueType::Int))
                | (ValueType::Double, Some(ValueType::Double))
                | (ValueType::Double, Some(ValueType::Int))
                | (ValueType::Str, Some(ValueType::Str))
                | (ValueType::Ts, Some(ValueType::Ts))
                | (ValueType::Ts, Some(ValueType::Int))
                | (ValueType::Int, Some(ValueType::Ts))
        ) {
            // Reject before data_mut so a shared payload is not deep-copied
            // just to report a type error.
            return Err(MonetError::TypeMismatch {
                op: "push",
                expected: self.vtype(),
                found: value.value_type().unwrap_or(ValueType::Bool),
            });
        }
        match (self.data_mut(), &value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v.push(*b),
            (ColumnData::Int(v), Value::Int(i)) => v.push(*i),
            (ColumnData::Double(v), Value::Double(d)) => v.push(*d),
            (ColumnData::Double(v), Value::Int(i)) => v.push(*i as f64),
            (ColumnData::Str(v), Value::Str(s)) => v.push(s.clone()),
            (ColumnData::Ts(v), Value::Ts(t)) => v.push(*t),
            (ColumnData::Ts(v), Value::Int(t)) => v.push(*t),
            (ColumnData::Int(v), Value::Ts(t)) => v.push(*t),
            // the matches! above should have rejected everything else;
            // degrade to the typed error (not a panic) if the two tables
            // ever drift
            _ => {
                return Err(MonetError::TypeMismatch {
                    op: "push",
                    expected: self.vtype(),
                    found: value.value_type().unwrap_or(ValueType::Bool),
                })
            }
        }
        if let Some(mask) = &mut self.validity {
            Arc::make_mut(mask).push(true);
        }
        Ok(())
    }

    /// Read position `i` as a boxed value.
    pub fn get(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &*self.data {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Double(v) => Value::Double(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Ts(v) => Value::Ts(v[i]),
        }
    }

    /// Typed slice accessors — the vectorized operators go through these.
    pub fn ints(&self) -> Result<&[i64]> {
        match &*self.data {
            ColumnData::Int(v) | ColumnData::Ts(v) => Ok(v),
            _ => Err(MonetError::TypeMismatch {
                op: "ints",
                expected: ValueType::Int,
                found: self.vtype(),
            }),
        }
    }

    pub fn doubles(&self) -> Result<&[f64]> {
        match &*self.data {
            ColumnData::Double(v) => Ok(v),
            _ => Err(MonetError::TypeMismatch {
                op: "doubles",
                expected: ValueType::Double,
                found: self.vtype(),
            }),
        }
    }

    pub fn bools(&self) -> Result<&[bool]> {
        match &*self.data {
            ColumnData::Bool(v) => Ok(v),
            _ => Err(MonetError::TypeMismatch {
                op: "bools",
                expected: ValueType::Bool,
                found: self.vtype(),
            }),
        }
    }

    pub fn strs(&self) -> Result<&[String]> {
        match &*self.data {
            ColumnData::Str(v) => Ok(v),
            _ => Err(MonetError::TypeMismatch {
                op: "strs",
                expected: ValueType::Str,
                found: self.vtype(),
            }),
        }
    }

    /// Raw storage access (read-only).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Validity mask, if NULLs are present.
    pub fn validity(&self) -> Option<&Bitset> {
        self.validity.as_deref()
    }

    /// Gather rows at the selected positions into a new column.
    pub fn gather(&self, sel: &SelVec) -> Result<Column> {
        sel.check_bounds(self.len())?;
        let data = match &*self.data {
            ColumnData::Bool(v) => {
                ColumnData::Bool(sel.iter().map(|p| v[p as usize]).collect())
            }
            ColumnData::Int(v) => ColumnData::Int(sel.iter().map(|p| v[p as usize]).collect()),
            ColumnData::Double(v) => {
                ColumnData::Double(sel.iter().map(|p| v[p as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(sel.iter().map(|p| v[p as usize].clone()).collect())
            }
            ColumnData::Ts(v) => ColumnData::Ts(sel.iter().map(|p| v[p as usize]).collect()),
        };
        let validity = self
            .validity
            .as_deref()
            .map(|m| m.gather(sel.iter().map(|p| p as usize)))
            .filter(|m| !m.all_set());
        Ok(Column {
            data: Arc::new(data),
            validity: validity.map(Arc::new),
        })
    }

    /// Gather by an arbitrary (possibly repeating, unordered) position list.
    /// Used on the build side of joins where positions repeat.
    pub fn gather_positions(&self, positions: &[u32]) -> Result<Column> {
        if let Some(&m) = positions.iter().max() {
            if m as usize >= self.len() {
                return Err(MonetError::SelectionOutOfBounds {
                    pos: m,
                    len: self.len(),
                });
            }
        }
        let data = match &*self.data {
            ColumnData::Bool(v) => {
                ColumnData::Bool(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::Int(v) => {
                ColumnData::Int(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::Double(v) => {
                ColumnData::Double(positions.iter().map(|&p| v[p as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(positions.iter().map(|&p| v[p as usize].clone()).collect())
            }
            ColumnData::Ts(v) => {
                ColumnData::Ts(positions.iter().map(|&p| v[p as usize]).collect())
            }
        };
        let validity = self
            .validity
            .as_deref()
            .map(|m| m.gather(positions.iter().map(|&p| p as usize)))
            .filter(|m| !m.all_set());
        Ok(Column {
            data: Arc::new(data),
            validity: validity.map(Arc::new),
        })
    }

    /// Append all rows of `other` (types must match exactly).
    pub fn append(&mut self, other: &Column) -> Result<()> {
        if self.vtype() != other.vtype() {
            return Err(MonetError::TypeMismatch {
                op: "append",
                expected: self.vtype(),
                found: other.vtype(),
            });
        }
        // Fast path: appending into an empty column is a zero-copy share of
        // the source's storage — the firing path's output appends and
        // basket refills hit this constantly.
        if self.is_empty() {
            self.data = Arc::clone(&other.data);
            self.validity = other.validity.clone();
            return Ok(());
        }
        // Mask bookkeeping first (needs both lengths before mutation).
        match (&mut self.validity, &other.validity) {
            (None, None) => {}
            (Some(mask), None) => Arc::make_mut(mask).extend_filled(other.len(), true),
            (None, Some(om)) => {
                let om = Arc::clone(om);
                let mask = self.ensure_mask();
                mask.extend_from(&om);
            }
            (Some(mask), Some(om)) => {
                let om = Arc::clone(om);
                Arc::make_mut(mask).extend_from(&om);
            }
        }
        match (Arc::make_mut(&mut self.data), &*other.data) {
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Double(a), ColumnData::Double(b)) => a.extend_from_slice(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.extend_from_slice(b),
            (ColumnData::Ts(a), ColumnData::Ts(b)) => a.extend_from_slice(b),
            _ => unreachable!("type equality checked above"),
        }
        Ok(())
    }

    /// Remove the selected positions *in place*, shifting survivors down —
    /// the bespoke single-pass delete operator the paper reports a 20–30%
    /// win from (§6.2), versus composing complement + gather.
    pub fn delete_sel(&mut self, sel: &SelVec) -> Result<()> {
        sel.check_bounds(self.len())?;
        if sel.is_empty() {
            return Ok(());
        }
        let keep = |i: usize, dead: &[u32]| -> bool {
            // `dead` is ascending; binary search per element would be
            // O(n log d). The closure below is only used for the mask path;
            // data vectors use the streaming two-pointer pass.
            dead.binary_search(&(i as u32)).is_err()
        };
        let dead = sel.as_slice();

        fn compact<T>(v: &mut Vec<T>, dead: &[u32]) {
            // Two-pointer single pass: copy survivors over deleted slots.
            let mut write = dead[0] as usize;
            let mut di = 0usize;
            for read in dead[0] as usize..v.len() {
                if di < dead.len() && dead[di] as usize == read {
                    di += 1;
                    continue;
                }
                v.swap(write, read);
                write += 1;
            }
            v.truncate(write);
        }

        match self.data_mut() {
            ColumnData::Bool(v) => compact(v, dead),
            ColumnData::Int(v) => compact(v, dead),
            ColumnData::Double(v) => compact(v, dead),
            ColumnData::Str(v) => compact(v, dead),
            ColumnData::Ts(v) => compact(v, dead),
        }
        if let Some(mask) = self.validity.take() {
            let mut new_mask = Bitset::new();
            for i in 0..mask.len() {
                if keep(i, dead) {
                    new_mask.push(mask.get(i));
                }
            }
            if !new_mask.all_set() {
                self.validity = Some(Arc::new(new_mask));
            }
        }
        Ok(())
    }

    /// Truncate to the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        match self.data_mut() {
            ColumnData::Bool(v) => v.truncate(n),
            ColumnData::Int(v) => v.truncate(n),
            ColumnData::Double(v) => v.truncate(n),
            ColumnData::Str(v) => v.truncate(n),
            ColumnData::Ts(v) => v.truncate(n),
        }
        if let Some(mask) = &mut self.validity {
            Arc::make_mut(mask).truncate(n);
        }
    }

    /// Remove all rows, keeping type (and, when the storage is unshared,
    /// capacity). A shared payload is released, not copied-then-cleared.
    pub fn clear(&mut self) {
        match Arc::get_mut(&mut self.data) {
            Some(d) => d.clear(),
            None => self.data = Arc::new(ColumnData::new(self.vtype())),
        }
        self.validity = None;
    }

    /// Iterate boxed values (test/diagnostic path, not the hot path).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(v: &[i64]) -> Column {
        Column::from_ints(v.to_vec())
    }

    #[test]
    fn push_and_get_all_types() {
        let mut c = Column::new(ValueType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(3));
        assert_eq!(c.null_count(), 1);

        let mut s = Column::new(ValueType::Str);
        s.push(Value::Str("a".into())).unwrap();
        assert_eq!(s.get(0), Value::Str("a".into()));

        let mut d = Column::new(ValueType::Double);
        d.push(Value::Int(2)).unwrap(); // int→double widening on append
        assert_eq!(d.get(0), Value::Double(2.0));

        let mut b = Column::new(ValueType::Bool);
        b.push(Value::Bool(true)).unwrap();
        assert_eq!(b.get(0), Value::Bool(true));

        let mut t = Column::new(ValueType::Ts);
        t.push(Value::Ts(7)).unwrap();
        t.push(Value::Int(9)).unwrap(); // ints accepted as timestamps
        assert_eq!(t.get(1), Value::Ts(9));
    }

    #[test]
    fn push_type_mismatch() {
        let mut c = Column::new(ValueType::Int);
        assert!(c.push(Value::Str("x".into())).is_err());
        assert!(c.push(Value::Bool(true)).is_err());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn typed_slices() {
        let c = int_col(&[1, 2, 3]);
        assert_eq!(c.ints().unwrap(), &[1, 2, 3]);
        assert!(c.doubles().is_err());
        let t = Column::from_ts(vec![10, 20]);
        assert_eq!(t.ints().unwrap(), &[10, 20], "ts readable as ints");
    }

    #[test]
    fn gather_preserves_order_and_nulls() {
        let mut c = Column::new(ValueType::Int);
        for v in [Value::Int(10), Value::Null, Value::Int(30), Value::Int(40)] {
            c.push(v).unwrap();
        }
        let sel = SelVec::from_sorted(vec![1, 3]).unwrap();
        let g = c.gather(&sel).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(0), Value::Null);
        assert_eq!(g.get(1), Value::Int(40));

        // all-valid gather drops the mask
        let sel2 = SelVec::from_sorted(vec![0, 3]).unwrap();
        let g2 = c.gather(&sel2).unwrap();
        assert!(g2.validity().is_none());
    }

    #[test]
    fn gather_positions_repeats() {
        let c = int_col(&[5, 6, 7]);
        let g = c.gather_positions(&[2, 0, 2]).unwrap();
        assert_eq!(g.ints().unwrap(), &[7, 5, 7]);
        assert!(c.gather_positions(&[3]).is_err());
    }

    #[test]
    fn gather_out_of_bounds() {
        let c = int_col(&[1]);
        let sel = SelVec::from_sorted(vec![1]).unwrap();
        assert!(c.gather(&sel).is_err());
    }

    #[test]
    fn append_merges_masks() {
        let mut a = int_col(&[1, 2]);
        let mut b = Column::new(ValueType::Int);
        b.push(Value::Null).unwrap();
        b.push(Value::Int(4)).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(2), Value::Null);
        assert_eq!(a.get(3), Value::Int(4));
        assert_eq!(a.null_count(), 1);

        // append a no-null column onto a masked one
        let c = int_col(&[9]);
        a.append(&c).unwrap();
        assert_eq!(a.get(4), Value::Int(9));
        assert_eq!(a.null_count(), 1);

        let s = Column::new(ValueType::Str);
        assert!(a.append(&s).is_err());
    }

    #[test]
    fn delete_sel_shifts_in_place() {
        let mut c = int_col(&[0, 1, 2, 3, 4, 5]);
        let sel = SelVec::from_sorted(vec![0, 2, 5]).unwrap();
        c.delete_sel(&sel).unwrap();
        assert_eq!(c.ints().unwrap(), &[1, 3, 4]);

        // deleting nothing is a no-op
        c.delete_sel(&SelVec::empty()).unwrap();
        assert_eq!(c.len(), 3);

        // delete everything
        c.delete_sel(&SelVec::all(3)).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn delete_sel_with_nulls() {
        let mut c = Column::new(ValueType::Int);
        for v in [Value::Int(1), Value::Null, Value::Int(3), Value::Null] {
            c.push(v).unwrap();
        }
        let sel = SelVec::from_sorted(vec![1]).unwrap();
        c.delete_sel(&sel).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Int(3));
        assert_eq!(c.get(2), Value::Null);
        assert_eq!(c.null_count(), 1);

        // removing the last NULL should drop the mask
        let sel2 = SelVec::from_sorted(vec![2]).unwrap();
        c.delete_sel(&sel2).unwrap();
        assert!(c.validity().is_none());
    }

    #[test]
    fn delete_sel_bounds_checked() {
        let mut c = int_col(&[1, 2]);
        let sel = SelVec::from_sorted(vec![2]).unwrap();
        assert!(c.delete_sel(&sel).is_err());
    }

    #[test]
    fn strings_delete_and_gather() {
        let mut c = Column::from_strs(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
        c.delete_sel(&SelVec::from_sorted(vec![1, 2]).unwrap()).unwrap();
        assert_eq!(c.strs().unwrap(), &["a".to_string(), "d".to_string()]);
    }

    #[test]
    fn truncate_and_clear() {
        let mut c = Column::new(ValueType::Int);
        for v in [Value::Int(1), Value::Null, Value::Int(3)] {
            c.push(v).unwrap();
        }
        c.truncate(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.null_count(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn from_parts_validation() {
        let data = ColumnData::Int(vec![1, 2, 3]);
        assert!(Column::from_parts(data.clone(), Some(Bitset::filled(2, true))).is_err());
        // an all-set mask is normalized away
        let c = Column::from_parts(data, Some(Bitset::filled(3, true))).unwrap();
        assert!(c.validity().is_none());
    }

    #[test]
    fn from_values_roundtrip() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(2)];
        let c = Column::from_values(ValueType::Int, &vals).unwrap();
        let back: Vec<Value> = c.iter_values().collect();
        assert_eq!(back, vals);
    }
}
