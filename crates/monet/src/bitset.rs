//! A compact bitmap used for column validity masks (NULL tracking).
//!
//! Columns are non-null in the overwhelmingly common case, so [`crate::column::Column`]
//! keeps its validity as `Option<Bitset>` and only materializes the bitmap on
//! the first NULL. The bitmap grows with the column and supports the word-wise
//! operations the kernel needs (count, iteration over set/unset positions,
//! compaction under a selection).

/// Growable bitmap; bit `i` set means "position `i` is valid (non-NULL)".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// An empty bitmap.
    pub fn new() -> Self {
        Bitset::default()
    }

    /// A bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let mut words = vec![if value { u64::MAX } else { 0 }; nwords];
        if value {
            Self::mask_tail(&mut words, len);
        }
        Bitset { words, len }
    }

    fn mask_tail(words: &mut [u64], len: usize) {
        let rem = len % 64;
        if rem != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, value: bool) {
        let word = self.len / 64;
        let bit = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if value {
            self.words[word] |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Read bit `i`. Panics if out of range (validity masks are always
    /// accessed through bounds-checked column positions).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bitset index {i} out of bounds ({})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `value`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bitset index {i} out of bounds ({})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of unset bits (i.e. NULLs when used as a validity mask).
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// True if every bit is set — the mask is then redundant and callers
    /// may drop it entirely.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Append all bits of `other`.
    pub fn extend_from(&mut self, other: &Bitset) {
        // Bit-by-bit is fine: extension happens on the append path which is
        // already O(n) in the number of appended values.
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// Append `n` copies of `value`.
    pub fn extend_filled(&mut self, n: usize, value: bool) {
        for _ in 0..n {
            self.push(value);
        }
    }

    /// Build a new bitmap containing the bits at `positions`, in order.
    /// Used when a selection vector gathers rows out of a column.
    pub fn gather(&self, positions: impl Iterator<Item = usize>) -> Bitset {
        let mut out = Bitset::new();
        for p in positions {
            out.push(self.get(p));
        }
        out
    }

    /// Iterate over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * 64;
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(base + tz)
                }
            })
        })
    }

    /// Truncate to `new_len` bits.
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        self.len = new_len;
        self.words.truncate(new_len.div_ceil(64));
        Self::mask_tail(&mut self.words, new_len);
    }

    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_count() {
        let b = Bitset::filled(100, true);
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 100);
        assert!(b.all_set());
        let z = Bitset::filled(100, false);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(z.count_zeros(), 100);
    }

    #[test]
    fn push_get_set() {
        let mut b = Bitset::new();
        assert!(b.is_empty());
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        b.set(1, true);
        assert!(b.get(1));
        b.set(0, false);
        assert!(!b.get(0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let b = Bitset::filled(10, true);
        b.get(10);
    }

    #[test]
    fn tail_masking_keeps_counts_exact() {
        // 65 bits all true: the second word must only contain one set bit.
        let b = Bitset::filled(65, true);
        assert_eq!(b.count_ones(), 65);
        let mut c = b.clone();
        c.truncate(64);
        assert_eq!(c.count_ones(), 64);
        c.truncate(1);
        assert_eq!(c.count_ones(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn extend_and_gather() {
        let mut a = Bitset::filled(3, true);
        let mut b = Bitset::new();
        b.push(false);
        b.push(true);
        a.extend_from(&b);
        assert_eq!(a.len(), 5);
        assert!(!a.get(3));
        assert!(a.get(4));

        a.extend_filled(2, false);
        assert_eq!(a.len(), 7);
        assert!(!a.get(6));

        let g = a.gather([4usize, 3, 0].into_iter());
        assert_eq!(g.len(), 3);
        assert!(g.get(0));
        assert!(!g.get(1));
        assert!(g.get(2));
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut b = Bitset::new();
        let pattern = [0usize, 5, 63, 64, 65, 127, 128];
        let max = 130;
        for i in 0..max {
            b.push(pattern.contains(&i));
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, pattern.to_vec());
    }

    #[test]
    fn clear_resets() {
        let mut b = Bitset::filled(10, true);
        b.clear();
        assert!(b.is_empty());
        b.push(true);
        assert_eq!(b.len(), 1);
        assert!(b.get(0));
    }
}
