//! Error type shared by all kernel operations.

use std::fmt;

use crate::value::ValueType;

/// Errors produced by the column-store kernel.
///
/// Kernel operators are strict: type mismatches and misaligned inputs are
/// programming errors in the layer above (the SQL planner or the DataCell
/// engine), so they surface as errors rather than panics, letting the upper
/// layer decide whether to abort a continuous query or drop a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonetError {
    /// An operator received a column of the wrong type.
    TypeMismatch {
        op: &'static str,
        expected: ValueType,
        found: ValueType,
    },
    /// Two inputs that must be aligned (same length) were not.
    LengthMismatch {
        op: &'static str,
        left: usize,
        right: usize,
    },
    /// A selection vector referenced a position beyond the column length.
    SelectionOutOfBounds { pos: u32, len: usize },
    /// A named column or table was not found.
    NotFound(String),
    /// A column with the same name already exists.
    Duplicate(String),
    /// Arithmetic error (division by zero on integers, overflow in strict ops).
    Arithmetic(&'static str),
    /// Catch-all for invalid arguments (empty schemas, zero group counts, ...).
    Invalid(String),
}

impl fmt::Display for MonetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonetError::TypeMismatch {
                op,
                expected,
                found,
            } => write!(f, "{op}: expected column of type {expected}, found {found}"),
            MonetError::LengthMismatch { op, left, right } => {
                write!(f, "{op}: misaligned inputs ({left} vs {right} rows)")
            }
            MonetError::SelectionOutOfBounds { pos, len } => {
                write!(f, "selection position {pos} out of bounds for column of length {len}")
            }
            MonetError::NotFound(name) => write!(f, "not found: {name}"),
            MonetError::Duplicate(name) => write!(f, "duplicate name: {name}"),
            MonetError::Arithmetic(what) => write!(f, "arithmetic error: {what}"),
            MonetError::Invalid(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for MonetError {}

/// Convenient result alias used across the kernel.
pub type Result<T> = std::result::Result<T, MonetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_all_variants() {
        let cases: Vec<(MonetError, &str)> = vec![
            (
                MonetError::TypeMismatch {
                    op: "select",
                    expected: ValueType::Int,
                    found: ValueType::Str,
                },
                "select: expected column of type int, found str",
            ),
            (
                MonetError::LengthMismatch {
                    op: "join",
                    left: 3,
                    right: 5,
                },
                "join: misaligned inputs (3 vs 5 rows)",
            ),
            (
                MonetError::SelectionOutOfBounds { pos: 9, len: 4 },
                "selection position 9 out of bounds for column of length 4",
            ),
            (MonetError::NotFound("t".into()), "not found: t"),
            (MonetError::Duplicate("c".into()), "duplicate name: c"),
            (
                MonetError::Arithmetic("division by zero"),
                "arithmetic error: division by zero",
            ),
            (MonetError::Invalid("empty".into()), "invalid argument: empty"),
        ];
        for (err, msg) in cases {
            assert_eq!(err.to_string(), msg);
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            MonetError::NotFound("x".into()),
            MonetError::NotFound("x".into())
        );
        assert_ne!(
            MonetError::NotFound("x".into()),
            MonetError::Duplicate("x".into())
        );
    }
}
