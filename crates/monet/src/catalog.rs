//! Named table catalog.
//!
//! DataCell continuous queries mix streams (baskets, owned by the engine)
//! with ordinary persistent tables — Linear Road keeps toll history and
//! account balances in such tables. The catalog is the shared registry of
//! those tables; each table carries its own lock so factories touching
//! disjoint tables never contend.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::error::{MonetError, Result};
use crate::relation::{Relation, Schema};

/// A shared, individually locked table.
pub type SharedTable = Arc<RwLock<Relation>>;

/// Registry of persistent tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, SharedTable>>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Create an empty table with the given schema.
    pub fn create_table(&self, name: &str, schema: &Schema) -> Result<SharedTable> {
        let mut tables = self.tables.write().expect("catalog lock poisoned");
        if tables.contains_key(name) {
            return Err(MonetError::Duplicate(name.to_string()));
        }
        let table = Arc::new(RwLock::new(Relation::new(schema)));
        tables.insert(name.to_string(), Arc::clone(&table));
        Ok(table)
    }

    /// Register an already-populated relation.
    pub fn register(&self, name: &str, rel: Relation) -> Result<SharedTable> {
        let mut tables = self.tables.write().expect("catalog lock poisoned");
        if tables.contains_key(name) {
            return Err(MonetError::Duplicate(name.to_string()));
        }
        let table = Arc::new(RwLock::new(rel));
        tables.insert(name.to_string(), Arc::clone(&table));
        Ok(table)
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<SharedTable> {
        self.tables
            .read()
            .expect("catalog lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| MonetError::NotFound(format!("table {name}")))
    }

    /// Does a table with this name exist?
    pub fn contains(&self, name: &str) -> bool {
        self.tables
            .read()
            .expect("catalog lock poisoned")
            .contains_key(name)
    }

    /// Drop a table; error if absent.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .expect("catalog lock poisoned")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| MonetError::NotFound(format!("table {name}")))
    }

    /// Names of all registered tables (sorted for determinism).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .expect("catalog lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Value, ValueType};

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", ValueType::Int)])
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        cat.create_table("t", &schema()).unwrap();
        assert!(cat.contains("t"));
        assert!(cat.get("t").is_ok());
        assert!(matches!(
            cat.create_table("t", &schema()),
            Err(MonetError::Duplicate(_))
        ));
        cat.drop_table("t").unwrap();
        assert!(!cat.contains("t"));
        assert!(cat.drop_table("t").is_err());
        assert!(cat.get("t").is_err());
    }

    #[test]
    fn register_populated() {
        let cat = Catalog::new();
        let mut r = Relation::new(&schema());
        r.append_row(&[Value::Int(42)]).unwrap();
        cat.register("pre", r).unwrap();
        let t = cat.get("pre").unwrap();
        assert_eq!(t.read().unwrap().len(), 1);
    }

    #[test]
    fn shared_mutation_visible() {
        let cat = Catalog::new();
        let t = cat.create_table("t", &schema()).unwrap();
        t.write().unwrap().append_row(&[Value::Int(1)]).unwrap();
        let again = cat.get("t").unwrap();
        assert_eq!(again.read().unwrap().len(), 1);
    }

    #[test]
    fn names_sorted() {
        let cat = Catalog::new();
        cat.create_table("b", &schema()).unwrap();
        cat.create_table("a", &schema()).unwrap();
        assert_eq!(cat.table_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn concurrent_access() {
        let cat = Arc::new(Catalog::new());
        cat.create_table("t", &schema()).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cat = Arc::clone(&cat);
                std::thread::spawn(move || {
                    let t = cat.get("t").unwrap();
                    for _ in 0..100 {
                        t.write().unwrap().append_row(&[Value::Int(1)]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cat.get("t").unwrap().read().unwrap().len(), 800);
    }
}
