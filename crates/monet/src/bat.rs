//! Binary Association Tables.
//!
//! A BAT is the MonetDB storage unit: a two-column (head, tail) table where
//! the head is a dense, ascending OID sequence. Because the sequence is
//! dense it is never materialized — the head of the value at position `p`
//! is `hseq + p`. Appends extend the tail; deletes compact it and the OIDs
//! of survivors are *renumbered* (baskets are transient stream buffers, not
//! versioned tables, so DataCell relies on positional alignment only within
//! one locked processing step).

use crate::column::Column;
use crate::error::Result;
use crate::selvec::SelVec;
use crate::value::{Value, ValueType};

/// A single-attribute BAT: virtual OID head + typed tail column.
#[derive(Debug, Clone, PartialEq)]
pub struct Bat {
    /// OID of position 0. Advances as tuples are consumed from the front so
    /// stream positions remain globally unique over the life of a basket.
    hseq: u64,
    /// Count of tuples ever appended (diagnostics / stream accounting).
    total_appended: u64,
    col: Column,
}

impl Bat {
    /// New empty BAT with tail type `vtype` and head sequence starting at 0.
    pub fn new(vtype: ValueType) -> Self {
        Bat {
            hseq: 0,
            total_appended: 0,
            col: Column::new(vtype),
        }
    }

    /// Wrap an existing column (head sequence starts at 0).
    pub fn from_column(col: Column) -> Self {
        Bat {
            hseq: 0,
            total_appended: col.len() as u64,
            col,
        }
    }

    pub fn len(&self) -> usize {
        self.col.len()
    }

    pub fn is_empty(&self) -> bool {
        self.col.is_empty()
    }

    pub fn vtype(&self) -> ValueType {
        self.col.vtype()
    }

    /// OID of the first live position.
    pub fn hseq(&self) -> u64 {
        self.hseq
    }

    /// OID of live position `pos`.
    pub fn oid_of(&self, pos: usize) -> u64 {
        self.hseq + pos as u64
    }

    /// Tuples ever appended to this BAT.
    pub fn total_appended(&self) -> u64 {
        self.total_appended
    }

    /// The tail column.
    pub fn col(&self) -> &Column {
        &self.col
    }

    /// Mutable tail access (kernel-internal use).
    pub fn col_mut(&mut self) -> &mut Column {
        &mut self.col
    }

    /// Take the tail column out, leaving the BAT empty but with its head
    /// sequence advanced past the drained tuples (used by basket drains).
    pub fn take_col(&mut self) -> Column {
        let vtype = self.col.vtype();
        self.hseq += self.col.len() as u64;
        std::mem::replace(&mut self.col, Column::new(vtype))
    }

    pub fn push(&mut self, value: Value) -> Result<()> {
        self.col.push(value)?;
        self.total_appended += 1;
        Ok(())
    }

    pub fn get(&self, pos: usize) -> Value {
        self.col.get(pos)
    }

    /// Append all rows of a column.
    pub fn append_column(&mut self, col: &Column) -> Result<()> {
        self.col.append(col)?;
        self.total_appended += col.len() as u64;
        Ok(())
    }

    /// Gather the selected positions into a fresh BAT (head restarts at the
    /// OID of the first selected tuple, preserving a dense head).
    pub fn gather(&self, sel: &SelVec) -> Result<Bat> {
        let col = self.col.gather(sel)?;
        let hseq = sel.as_slice().first().map_or(self.hseq, |&p| self.oid_of(p as usize));
        Ok(Bat {
            hseq,
            total_appended: col.len() as u64,
            col,
        })
    }

    /// In-place delete of the selected positions (single-pass shift).
    /// If a prefix was deleted, the head sequence advances accordingly so
    /// consumed stream positions are never reused.
    pub fn delete_sel(&mut self, sel: &SelVec) -> Result<()> {
        let prefix = sel
            .as_slice()
            .iter()
            .enumerate()
            .take_while(|&(i, &p)| i as u32 == p)
            .count() as u64;
        self.col.delete_sel(sel)?;
        self.hseq += prefix;
        Ok(())
    }

    /// Remove everything; head sequence advances past the dropped tuples.
    pub fn clear(&mut self) {
        self.hseq += self.col.len() as u64;
        self.col.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bat(v: &[i64]) -> Bat {
        Bat::from_column(Column::from_ints(v.to_vec()))
    }

    #[test]
    fn new_bat_is_empty() {
        let b = Bat::new(ValueType::Int);
        assert!(b.is_empty());
        assert_eq!(b.hseq(), 0);
        assert_eq!(b.total_appended(), 0);
        assert_eq!(b.vtype(), ValueType::Int);
    }

    #[test]
    fn push_tracks_totals_and_oids() {
        let mut b = Bat::new(ValueType::Int);
        b.push(Value::Int(10)).unwrap();
        b.push(Value::Int(20)).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.total_appended(), 2);
        assert_eq!(b.oid_of(1), 1);
        assert_eq!(b.get(1), Value::Int(20));
    }

    #[test]
    fn clear_advances_hseq() {
        let mut b = bat(&[1, 2, 3]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.hseq(), 3);
        b.push(Value::Int(4)).unwrap();
        assert_eq!(b.oid_of(0), 3, "new tuples get fresh OIDs");
    }

    #[test]
    fn take_col_drains() {
        let mut b = bat(&[1, 2]);
        let c = b.take_col();
        assert_eq!(c.ints().unwrap(), &[1, 2]);
        assert!(b.is_empty());
        assert_eq!(b.hseq(), 2);
        assert_eq!(b.vtype(), ValueType::Int);
    }

    #[test]
    fn delete_prefix_advances_hseq() {
        let mut b = bat(&[1, 2, 3, 4]);
        // delete positions 0,1,3: prefix of length 2
        b.delete_sel(&SelVec::from_sorted(vec![0, 1, 3]).unwrap())
            .unwrap();
        assert_eq!(b.col().ints().unwrap(), &[3]);
        assert_eq!(b.hseq(), 2);
    }

    #[test]
    fn delete_middle_keeps_hseq() {
        let mut b = bat(&[1, 2, 3]);
        b.delete_sel(&SelVec::from_sorted(vec![1]).unwrap()).unwrap();
        assert_eq!(b.hseq(), 0);
        assert_eq!(b.col().ints().unwrap(), &[1, 3]);
    }

    #[test]
    fn gather_sets_head_to_first_selected() {
        let b = bat(&[5, 6, 7, 8]);
        let g = b.gather(&SelVec::from_sorted(vec![2, 3]).unwrap()).unwrap();
        assert_eq!(g.hseq(), 2);
        assert_eq!(g.col().ints().unwrap(), &[7, 8]);
    }

    #[test]
    fn append_column_counts() {
        let mut b = bat(&[1]);
        b.append_column(&Column::from_ints(vec![2, 3])).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_appended(), 3);
        assert!(b.append_column(&Column::from_strs(vec!["x".into()])).is_err());
    }
}
