//! A chained hash table over `i64` keys, specialized for join builds and
//! grouping.
//!
//! The standard library map (SipHash, boxed buckets) is far too slow for a
//! kernel inner loop, and this workspace deliberately avoids extra
//! dependencies, so we use the classic column-store layout: a power-of-two
//! bucket array of chain heads plus a `next` array parallel to the build
//! keys. Both arrays are plain `Vec<u32>`, giving one cache miss per probe
//! step and zero per-entry allocation.

/// Multiplicative hash (Fibonacci hashing) — adequate distribution for
/// integer keys at a fraction of SipHash cost.
#[inline]
pub fn hash_i64(key: i64) -> u64 {
    (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

const EMPTY: u32 = u32::MAX;

/// Chained hash table mapping `i64` keys to the positions at which they
/// occur in the build column.
#[derive(Debug)]
pub struct I64HashTable {
    keys: Vec<i64>,
    heads: Vec<u32>,
    next: Vec<u32>,
    mask: u64,
}

impl I64HashTable {
    /// Build over `keys`; `skip` marks positions to exclude (e.g. NULLs).
    /// Chains are built back-to-front so probes walk each chain in
    /// *ascending* position order — join emission order is then
    /// deterministic ((left, right) lexicographic), which the delta
    /// executor's pair-list merge relies on.
    pub fn build(keys: &[i64], skip: impl Fn(usize) -> bool) -> Self {
        let cap = (keys.len().max(1) * 2).next_power_of_two();
        let mask = (cap - 1) as u64;
        let mut heads = vec![EMPTY; cap];
        let mut next = vec![EMPTY; keys.len()];
        for (i, &k) in keys.iter().enumerate().rev() {
            if skip(i) {
                continue;
            }
            let bucket = (hash_i64(k) >> 32 & mask) as usize;
            next[i] = heads[bucket];
            heads[bucket] = i as u32;
        }
        I64HashTable {
            keys: keys.to_vec(),
            heads,
            next,
            mask,
        }
    }

    /// Number of build positions.
    pub fn build_len(&self) -> usize {
        self.keys.len()
    }

    /// Iterate all build positions whose key equals `key`, in ascending
    /// position order.
    #[inline]
    pub fn probe(&self, key: i64) -> ProbeIter<'_> {
        let bucket = (hash_i64(key) >> 32 & self.mask) as usize;
        ProbeIter {
            table: self,
            key,
            cursor: self.heads[bucket],
        }
    }

    /// First match, if any.
    pub fn probe_first(&self, key: i64) -> Option<u32> {
        self.probe(key).next()
    }

    /// Does the key occur at all?
    pub fn contains(&self, key: i64) -> bool {
        self.probe_first(key).is_some()
    }
}

/// Iterator over chain matches.
pub struct ProbeIter<'a> {
    table: &'a I64HashTable,
    key: i64,
    cursor: u32,
}

impl Iterator for ProbeIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.cursor != EMPTY {
            let pos = self.cursor;
            self.cursor = self.table.next[pos as usize];
            if self.table.keys[pos as usize] == self.key {
                return Some(pos);
            }
        }
        None
    }
}

/// Incremental variant used by grouping: keys are inserted one at a time and
/// each insert reports the group it belongs to (existing or new).
#[derive(Debug, Default)]
pub struct I64GroupTable {
    keys: Vec<i64>,
    group_of: Vec<u32>,
    heads: Vec<u32>,
    next: Vec<u32>,
    ngroups: u32,
}

impl I64GroupTable {
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n.max(1) * 2).next_power_of_two();
        I64GroupTable {
            keys: Vec::with_capacity(n),
            group_of: Vec::with_capacity(n),
            heads: vec![EMPTY; cap],
            next: Vec::with_capacity(n),
            ngroups: 0,
        }
    }

    pub fn ngroups(&self) -> u32 {
        self.ngroups
    }

    fn mask(&self) -> u64 {
        (self.heads.len() - 1) as u64
    }

    /// Insert a key; returns its group id, allocating a new one on first
    /// sight.
    pub fn insert(&mut self, key: i64) -> u32 {
        let bucket = (hash_i64(key) >> 32 & self.mask()) as usize;
        let mut cursor = self.heads[bucket];
        while cursor != EMPTY {
            if self.keys[cursor as usize] == key {
                return self.group_of[cursor as usize];
            }
            cursor = self.next[cursor as usize];
        }
        let gid = self.ngroups;
        self.ngroups += 1;
        let pos = self.keys.len() as u32;
        self.keys.push(key);
        self.group_of.push(gid);
        self.next.push(self.heads[bucket]);
        self.heads[bucket] = pos;
        if self.keys.len() * 2 > self.heads.len() {
            self.grow();
        }
        gid
    }

    fn grow(&mut self) {
        let cap = self.heads.len() * 2;
        self.heads = vec![EMPTY; cap];
        for slot in self.next.iter_mut() {
            *slot = EMPTY;
        }
        let mask = (cap - 1) as u64;
        for i in 0..self.keys.len() {
            let bucket = (hash_i64(self.keys[i]) >> 32 & mask) as usize;
            self.next[i] = self.heads[bucket];
            self.heads[bucket] = i as u32;
        }
    }

    /// Distinct keys in first-seen order (index = group id).
    pub fn group_keys(&self) -> Vec<i64> {
        // keys are appended only on new groups, but duplicates never enter
        // `keys` (insert returns early), so `keys` *is* the distinct list.
        self.keys.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_finds_all_duplicates() {
        let keys = vec![5, 7, 5, 9, 5];
        let t = I64HashTable::build(&keys, |_| false);
        let hits: Vec<u32> = t.probe(5).collect();
        assert_eq!(hits, vec![0, 2, 4], "probe order is ascending");
        assert_eq!(t.probe(9).collect::<Vec<_>>(), vec![3]);
        assert!(t.probe(8).next().is_none());
        assert!(t.contains(7));
        assert!(!t.contains(-1));
    }

    #[test]
    fn skip_excludes_positions() {
        let keys = vec![1, 1, 1];
        let t = I64HashTable::build(&keys, |i| i == 1);
        let mut hits: Vec<u32> = t.probe(1).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn empty_build() {
        let t = I64HashTable::build(&[], |_| false);
        assert_eq!(t.build_len(), 0);
        assert!(t.probe_first(0).is_none());
    }

    #[test]
    fn negative_and_extreme_keys() {
        let keys = vec![i64::MIN, -1, 0, i64::MAX];
        let t = I64HashTable::build(&keys, |_| false);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.probe_first(k), Some(i as u32), "key {k}");
        }
    }

    #[test]
    fn group_table_assigns_dense_ids() {
        let mut g = I64GroupTable::with_capacity(4);
        assert_eq!(g.insert(10), 0);
        assert_eq!(g.insert(20), 1);
        assert_eq!(g.insert(10), 0);
        assert_eq!(g.insert(30), 2);
        assert_eq!(g.insert(20), 1);
        assert_eq!(g.ngroups(), 3);
        assert_eq!(g.group_keys(), vec![10, 20, 30]);
    }

    #[test]
    fn group_table_grows() {
        let mut g = I64GroupTable::with_capacity(1);
        for k in 0..10_000i64 {
            assert_eq!(g.insert(k), k as u32);
        }
        // re-insert after growth: ids must be stable
        for k in 0..10_000i64 {
            assert_eq!(g.insert(k), k as u32);
        }
        assert_eq!(g.ngroups(), 10_000);
    }

    #[test]
    fn hash_spreads_small_keys() {
        // not a statistical test — just ensure consecutive keys don't all
        // land in one bucket for a small table
        let buckets: std::collections::HashSet<u64> =
            (0..64).map(|k| hash_i64(k) >> 32 & 63).collect();
        assert!(buckets.len() > 16, "got {} distinct buckets", buckets.len());
    }
}
