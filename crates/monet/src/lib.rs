//! # monet — a mini column-store kernel
//!
//! The substrate of the DataCell reproduction: a from-scratch, MonetDB-style
//! column-oriented execution kernel. Relational tables are collections of
//! [`bat::Bat`]s (Binary Association Tables) — one typed column per
//! attribute, with a *virtual* dense OID head, so tuple reconstruction is
//! positional and free. Operators are whole-column ("vectorized") loops that
//! communicate through [`selvec::SelVec`] candidate lists.
//!
//! What the paper uses from MonetDB, and where it lives here:
//!
//! | paper concept                  | module |
//! |--------------------------------|--------|
//! | BATs, (key, attr) pairs        | [`bat`], [`column`] |
//! | `monetdb.select` range scans   | [`ops::select`] |
//! | joins (equi, theta)            | [`ops::join`] |
//! | grouping / aggregation         | [`ops::group`] |
//! | `order by` / `top n`           | [`ops::sort`], [`ops::topn`] |
//! | map-style projection math      | [`ops::arith`] |
//! | bespoke basket-delete operator | [`ops::delete`] |
//! | persistent tables              | [`catalog`] |
//!
//! The kernel is deliberately synchronous and single-threaded per operator
//! call; concurrency lives one layer up, in the DataCell scheduler, exactly
//! as in the paper.
//!
//! ## Example
//!
//! ```
//! use monet::prelude::*;
//!
//! // Build a two-column relation and run: SELECT a FROM r WHERE 10 < a < 40
//! let rel = Relation::from_columns(vec![
//!     ("a".into(), Column::from_ints(vec![5, 15, 25, 35, 45])),
//!     ("b".into(), Column::from_strs(
//!         ["v", "w", "x", "y", "z"].iter().map(|s| s.to_string()).collect(),
//!     )),
//! ]).unwrap();
//!
//! let sel = monet::ops::select::select_range(
//!     rel.column("a").unwrap(),
//!     &Value::Int(10), &Value::Int(40),
//!     false, false, None,
//! ).unwrap();
//! let hits = rel.gather(&sel).unwrap();
//! assert_eq!(hits.column("a").unwrap().ints().unwrap(), &[15, 25, 35]);
//! ```

pub mod bat;
pub mod bitset;
pub mod catalog;
pub mod column;
pub mod error;
pub mod hashtab;
pub mod ops;
pub mod relation;
pub mod selvec;
pub mod value;

/// Convenient re-exports for downstream crates.
pub mod prelude {
    pub use crate::bat::Bat;
    pub use crate::catalog::{Catalog, SharedTable};
    pub use crate::column::{Column, ColumnData};
    pub use crate::error::{MonetError, Result};
    pub use crate::ops::arith::ArithOp;
    pub use crate::ops::CmpOp;
    pub use crate::relation::{Field, Relation, Schema};
    pub use crate::selvec::SelVec;
    pub use crate::value::{Value, ValueType};
}
