//! Relations: named collections of aligned BATs.
//!
//! A relational table with `k` attributes is `k` BATs whose positions line
//! up — all attribute values of one tuple sit at the same position in their
//! respective columns (Section 2.1 of the paper). Tuple reconstruction is
//! therefore positional and free; every mutating operation here preserves
//! the alignment invariant.

use std::fmt;

use crate::bat::Bat;
use crate::column::Column;
use crate::error::{MonetError, Result};
use crate::selvec::SelVec;
use crate::value::{Value, ValueType};

/// One attribute: name + type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub vtype: ValueType,
}

impl Field {
    pub fn new(name: impl Into<String>, vtype: ValueType) -> Self {
        Field {
            name: name.into(),
            vtype,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, ValueType)]) -> Self {
        Schema {
            fields: pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect(),
        }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Index and type of the named field.
    pub fn find(&self, name: &str) -> Option<(usize, ValueType)> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| (i, self.fields[i].vtype))
    }

    /// Positional type compatibility (names may differ — unions and inserts
    /// match by position, like SQL).
    pub fn compatible(&self, other: &Schema) -> bool {
        self.width() == other.width()
            && self
                .fields
                .iter()
                .zip(other.fields.iter())
                .all(|(a, b)| a.vtype == b.vtype)
    }
}

/// A set of aligned, named BATs.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    names: Vec<String>,
    bats: Vec<Bat>,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: &Schema) -> Self {
        Relation {
            names: schema.fields().iter().map(|f| f.name.clone()).collect(),
            bats: schema
                .fields()
                .iter()
                .map(|f| Bat::new(f.vtype))
                .collect(),
        }
    }

    /// Build from named columns; all columns must be the same length and
    /// names must be unique.
    pub fn from_columns(cols: Vec<(String, Column)>) -> Result<Self> {
        if cols.is_empty() {
            return Err(MonetError::Invalid("relation needs at least one column".into()));
        }
        let len = cols[0].1.len();
        for (name, col) in &cols {
            if col.len() != len {
                return Err(MonetError::LengthMismatch {
                    op: "from_columns",
                    left: len,
                    right: col.len(),
                });
            }
            if cols.iter().filter(|(n, _)| n == name).count() > 1 {
                return Err(MonetError::Duplicate(name.clone()));
            }
        }
        let (names, columns): (Vec<_>, Vec<_>) = cols.into_iter().unzip();
        Ok(Relation {
            names,
            bats: columns.into_iter().map(Bat::from_column).collect(),
        })
    }

    pub fn schema(&self) -> Schema {
        Schema::new(
            self.names
                .iter()
                .zip(self.bats.iter())
                .map(|(n, b)| Field::new(n.clone(), b.vtype()))
                .collect(),
        )
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.bats.first().map_or(0, |b| b.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of attributes.
    pub fn width(&self) -> usize {
        self.bats.len()
    }

    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Column index by name.
    pub fn column_idx(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| MonetError::NotFound(format!("column {name}")))
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(self.bats[self.column_idx(name)?].col())
    }

    /// Column by position.
    pub fn col_at(&self, idx: usize) -> &Column {
        self.bats[idx].col()
    }

    /// BAT by position.
    pub fn bat_at(&self, idx: usize) -> &Bat {
        &self.bats[idx]
    }

    /// Append a tuple. The row must match the schema width; per-column type
    /// checks apply (NULLs allowed anywhere).
    pub fn append_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.width() {
            return Err(MonetError::LengthMismatch {
                op: "append_row",
                left: self.width(),
                right: row.len(),
            });
        }
        // Validate all pushes up-front so a type error cannot leave the
        // relation misaligned.
        for (bat, v) in self.bats.iter().zip(row.iter()) {
            if !v.is_null() {
                let vt = v.value_type().expect("non-null");
                let ok = vt == bat.vtype()
                    || (bat.vtype() == ValueType::Double && vt == ValueType::Int)
                    || (bat.vtype() == ValueType::Ts && vt == ValueType::Int)
                    || (bat.vtype() == ValueType::Int && vt == ValueType::Ts);
                if !ok {
                    return Err(MonetError::TypeMismatch {
                        op: "append_row",
                        expected: bat.vtype(),
                        found: vt,
                    });
                }
            }
        }
        for (bat, v) in self.bats.iter_mut().zip(row.iter()) {
            bat.push(v.clone()).expect("validated above");
        }
        Ok(())
    }

    /// Append many tuples.
    pub fn append_rows<'a>(&mut self, rows: impl IntoIterator<Item = &'a [Value]>) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.append_row(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Append another relation (positional type compatibility required).
    pub fn append_relation(&mut self, other: &Relation) -> Result<()> {
        if !self.schema().compatible(&other.schema()) {
            return Err(MonetError::Invalid(format!(
                "incompatible schemas: {:?} vs {:?}",
                self.schema(),
                other.schema()
            )));
        }
        for (bat, ocol) in self.bats.iter_mut().zip(other.bats.iter()) {
            bat.append_column(ocol.col())?;
        }
        Ok(())
    }

    /// Gather the selected tuples into a new relation.
    pub fn gather(&self, sel: &SelVec) -> Result<Relation> {
        let bats = self
            .bats
            .iter()
            .map(|b| b.gather(sel))
            .collect::<Result<Vec<_>>>()?;
        Ok(Relation {
            names: self.names.clone(),
            bats,
        })
    }

    /// Gather by arbitrary (repeating) positions — join result assembly.
    pub fn gather_positions(&self, positions: &[u32]) -> Result<Relation> {
        let bats = self
            .bats
            .iter()
            .map(|b| Ok(Bat::from_column(b.col().gather_positions(positions)?)))
            .collect::<Result<Vec<_>>>()?;
        Ok(Relation {
            names: self.names.clone(),
            bats,
        })
    }

    /// Delete the selected tuples in place across all columns.
    pub fn delete_sel(&mut self, sel: &SelVec) -> Result<()> {
        sel.check_bounds(self.len())?;
        for bat in &mut self.bats {
            bat.delete_sel(sel)?;
        }
        Ok(())
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        for bat in &mut self.bats {
            bat.clear();
        }
    }

    /// Copy out a subset of columns (by name) as a new relation.
    pub fn project(&self, names: &[&str]) -> Result<Relation> {
        let mut out_names = Vec::with_capacity(names.len());
        let mut bats = Vec::with_capacity(names.len());
        for &n in names {
            let idx = self.column_idx(n)?;
            out_names.push(n.to_string());
            bats.push(self.bats[idx].clone());
        }
        Ok(Relation {
            names: out_names,
            bats,
        })
    }

    /// Add a column (must match current length).
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> Result<()> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(MonetError::Duplicate(name));
        }
        if !self.bats.is_empty() && col.len() != self.len() {
            return Err(MonetError::LengthMismatch {
                op: "add_column",
                left: self.len(),
                right: col.len(),
            });
        }
        self.names.push(name);
        self.bats.push(Bat::from_column(col));
        Ok(())
    }

    /// Rename all columns (positional).
    pub fn rename_columns(&mut self, names: Vec<String>) -> Result<()> {
        if names.len() != self.width() {
            return Err(MonetError::LengthMismatch {
                op: "rename_columns",
                left: self.width(),
                right: names.len(),
            });
        }
        self.names = names;
        Ok(())
    }

    /// Materialize tuple `i`.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.bats.iter().map(|b| b.get(i)).collect()
    }

    /// Iterate materialized tuples (diagnostic path).
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }
}

impl fmt::Display for Relation {
    /// Pipe-separated dump used by examples and debugging.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.names.join(" | "))?;
        for row in self.iter_rows() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_rel() -> Relation {
        let schema = Schema::from_pairs(&[("id", ValueType::Int), ("name", ValueType::Str)]);
        let mut r = Relation::new(&schema);
        r.append_row(&[Value::Int(1), Value::Str("a".into())]).unwrap();
        r.append_row(&[Value::Int(2), Value::Str("b".into())]).unwrap();
        r.append_row(&[Value::Int(3), Value::Str("c".into())]).unwrap();
        r
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::from_pairs(&[("a", ValueType::Int), ("b", ValueType::Str)]);
        assert_eq!(s.find("b"), Some((1, ValueType::Str)));
        assert_eq!(s.find("z"), None);
        assert_eq!(s.width(), 2);
    }

    #[test]
    fn schema_compatibility_is_positional() {
        let a = Schema::from_pairs(&[("x", ValueType::Int)]);
        let b = Schema::from_pairs(&[("y", ValueType::Int)]);
        let c = Schema::from_pairs(&[("x", ValueType::Str)]);
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
    }

    #[test]
    fn append_and_read_rows() {
        let r = test_rel();
        assert_eq!(r.len(), 3);
        assert_eq!(r.width(), 2);
        assert_eq!(r.row(1), vec![Value::Int(2), Value::Str("b".into())]);
        assert_eq!(r.column("id").unwrap().ints().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn append_row_validates_before_mutating() {
        let mut r = test_rel();
        // wrong arity
        assert!(r.append_row(&[Value::Int(9)]).is_err());
        // wrong type in second column — first column must NOT be extended
        assert!(r
            .append_row(&[Value::Int(9), Value::Int(10)])
            .is_err());
        assert_eq!(r.len(), 3, "failed append must not misalign columns");
        assert_eq!(r.col_at(0).len(), r.col_at(1).len());
    }

    #[test]
    fn nulls_allowed_anywhere() {
        let mut r = test_rel();
        r.append_row(&[Value::Null, Value::Null]).unwrap();
        assert_eq!(r.row(3), vec![Value::Null, Value::Null]);
    }

    #[test]
    fn gather_and_delete_stay_aligned() {
        let mut r = test_rel();
        let sel = SelVec::from_sorted(vec![0, 2]).unwrap();
        let g = r.gather(&sel).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.row(1), vec![Value::Int(3), Value::Str("c".into())]);

        r.delete_sel(&SelVec::from_sorted(vec![1]).unwrap()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), vec![Value::Int(3), Value::Str("c".into())]);
    }

    #[test]
    fn project_and_add_column() {
        let mut r = test_rel();
        let p = r.project(&["name"]).unwrap();
        assert_eq!(p.width(), 1);
        assert_eq!(p.len(), 3);
        assert!(r.project(&["missing"]).is_err());

        r.add_column("score", Column::from_doubles(vec![0.1, 0.2, 0.3]))
            .unwrap();
        assert_eq!(r.width(), 3);
        assert!(r
            .add_column("score", Column::from_doubles(vec![0.0; 3]))
            .is_err());
        assert!(r
            .add_column("short", Column::from_doubles(vec![0.0]))
            .is_err());
    }

    #[test]
    fn append_relation_positional() {
        let mut r = test_rel();
        let schema = Schema::from_pairs(&[("k", ValueType::Int), ("v", ValueType::Str)]);
        let mut other = Relation::new(&schema);
        other
            .append_row(&[Value::Int(4), Value::Str("d".into())])
            .unwrap();
        r.append_relation(&other).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.row(3), vec![Value::Int(4), Value::Str("d".into())]);

        let bad = Relation::new(&Schema::from_pairs(&[("k", ValueType::Int)]));
        assert!(r.append_relation(&bad).is_err());
    }

    #[test]
    fn from_columns_checks_alignment_and_dups() {
        let ok = Relation::from_columns(vec![
            ("a".into(), Column::from_ints(vec![1, 2])),
            ("b".into(), Column::from_ints(vec![3, 4])),
        ]);
        assert!(ok.is_ok());
        let misaligned = Relation::from_columns(vec![
            ("a".into(), Column::from_ints(vec![1])),
            ("b".into(), Column::from_ints(vec![3, 4])),
        ]);
        assert!(misaligned.is_err());
        let dup = Relation::from_columns(vec![
            ("a".into(), Column::from_ints(vec![1])),
            ("a".into(), Column::from_ints(vec![2])),
        ]);
        assert!(dup.is_err());
    }

    #[test]
    fn gather_positions_repeats_rows() {
        let r = test_rel();
        let g = r.gather_positions(&[2, 2, 0]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.row(0), vec![Value::Int(3), Value::Str("c".into())]);
        assert_eq!(g.row(2), vec![Value::Int(1), Value::Str("a".into())]);
    }

    #[test]
    fn display_dump() {
        let r = test_rel();
        let s = r.to_string();
        assert!(s.starts_with("id | name"));
        assert!(s.contains("2 | b"));
    }

    #[test]
    fn clear_empties_all_columns() {
        let mut r = test_rel();
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.width(), 2);
    }

    #[test]
    fn rename_columns_positional() {
        let mut r = test_rel();
        r.rename_columns(vec!["x".into(), "y".into()]).unwrap();
        assert!(r.column("x").is_ok());
        assert!(r.rename_columns(vec!["only_one".into()]).is_err());
    }
}
