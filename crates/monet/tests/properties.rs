//! Property-based tests for the kernel invariants.
//!
//! Each property pits a vectorized operator against a brute-force oracle
//! over randomized inputs, or checks an algebraic law that the operator
//! family must satisfy.

use monet::ops::group::{agg_count_star, agg_sum, group_by};
use monet::ops::join::{hash_join, theta_join};
use monet::ops::select::{select_cmp, select_range};
use monet::ops::sort::{sort_perm, SortKey};
use monet::ops::topn::topn_perm;
use monet::prelude::*;
use proptest::prelude::*;

/// Random nullable int column (None = NULL) plus its oracle representation.
fn nullable_ints() -> impl Strategy<Value = Vec<Option<i64>>> {
    prop::collection::vec(prop::option::weighted(0.9, -50i64..50), 0..200)
}

fn column_of(vals: &[Option<i64>]) -> Column {
    let mut c = Column::new(ValueType::Int);
    for v in vals {
        c.push(v.map(Value::Int).unwrap_or(Value::Null)).unwrap();
    }
    c
}

/// Random strictly-ascending selection over a universe of size `len`.
fn selection(len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..len.max(1) as u32, 0..=len)
        .prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn select_range_matches_oracle(
        vals in nullable_ints(),
        lo in -60i64..60,
        width in 0i64..40,
        lo_incl in any::<bool>(),
        hi_incl in any::<bool>(),
    ) {
        let hi = lo + width;
        let col = column_of(&vals);
        let got = select_range(&col, &Value::Int(lo), &Value::Int(hi), lo_incl, hi_incl, None)
            .unwrap();
        let want: Vec<u32> = vals.iter().enumerate().filter_map(|(i, v)| {
            let v = (*v)?;
            let okl = if lo_incl { v >= lo } else { v > lo };
            let okh = if hi_incl { v <= hi } else { v < hi };
            (okl && okh).then_some(i as u32)
        }).collect();
        prop_assert_eq!(got.as_slice(), &want[..]);
    }

    #[test]
    fn select_cmp_matches_oracle(vals in nullable_ints(), k in -60i64..60) {
        let col = column_of(&vals);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let got = select_cmp(&col, op, &Value::Int(k), None).unwrap();
            let want: Vec<u32> = vals.iter().enumerate().filter_map(|(i, v)| {
                let v = (*v)?;
                op.eval(v.cmp(&k)).then_some(i as u32)
            }).collect();
            prop_assert_eq!(got.as_slice(), &want[..], "op {:?}", op);
        }
    }

    #[test]
    fn selvec_algebra(len in 0usize..100, a in selection(100), b in selection(100)) {
        let universe = len.max(a.last().map_or(0, |&x| x as usize + 1))
            .max(b.last().map_or(0, |&x| x as usize + 1));
        let a = SelVec::from_sorted(a).unwrap();
        let b = SelVec::from_sorted(b).unwrap();
        // De Morgan: (A ∪ B)ᶜ = Aᶜ ∩ Bᶜ
        prop_assert_eq!(
            a.union(&b).complement(universe),
            a.complement(universe).intersect(&b.complement(universe))
        );
        // A \ B = A ∩ Bᶜ
        prop_assert_eq!(a.difference(&b), a.intersect(&b.complement(universe)));
        // idempotence + commutativity
        let self_union = a.union(&a);
        prop_assert_eq!(self_union.as_slice(), a.as_slice());
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        // partition: |A ∩ B| + |A \ B| = |A|
        prop_assert_eq!(a.intersect(&b).len() + a.difference(&b).len(), a.len());
    }

    #[test]
    fn delete_shift_equals_compose(vals in nullable_ints(), dead in selection(200)) {
        let dead: Vec<u32> = dead.into_iter().filter(|&p| (p as usize) < vals.len()).collect();
        let sel = SelVec::from_sorted(dead).unwrap();
        let col = column_of(&vals);
        let rel = |c: &Column| Relation::from_columns(vec![("x".into(), c.clone())]).unwrap();
        let mut a = rel(&col);
        let mut b = rel(&col);
        monet::ops::delete::delete_shift(&mut a, &sel).unwrap();
        monet::ops::delete::delete_compose(&mut b, &sel).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            prop_assert_eq!(a.row(i), b.row(i));
        }
        prop_assert_eq!(a.len(), vals.len() - sel.len());
    }

    #[test]
    fn hash_join_matches_nested_loop(l in nullable_ints(), r in nullable_ints()) {
        let (lc, rc) = (column_of(&l), column_of(&r));
        let got = hash_join(&lc, &rc, None, None).unwrap();
        let mut got_pairs: Vec<(u32, u32)> =
            got.left.iter().copied().zip(got.right.iter().copied()).collect();
        got_pairs.sort_unstable();
        let mut want = Vec::new();
        for (i, lv) in l.iter().enumerate() {
            for (j, rv) in r.iter().enumerate() {
                if let (Some(a), Some(b)) = (lv, rv) {
                    if a == b {
                        want.push((i as u32, j as u32));
                    }
                }
            }
        }
        want.sort_unstable();
        prop_assert_eq!(got_pairs, want);
    }

    #[test]
    fn theta_join_matches_oracle(l in nullable_ints(), r in nullable_ints()) {
        // keep it quadratic-friendly
        let l = &l[..l.len().min(40)];
        let r = &r[..r.len().min(40)];
        let (lc, rc) = (column_of(l), column_of(r));
        let got = theta_join(&lc, &rc, CmpOp::Lt, None, None).unwrap();
        let got_pairs: Vec<(u32, u32)> =
            got.left.iter().copied().zip(got.right.iter().copied()).collect();
        let mut want = Vec::new();
        for (i, lv) in l.iter().enumerate() {
            for (j, rv) in r.iter().enumerate() {
                if let (Some(a), Some(b)) = (lv, rv) {
                    if a < b {
                        want.push((i as u32, j as u32));
                    }
                }
            }
        }
        prop_assert_eq!(got_pairs, want);
    }

    #[test]
    fn sort_perm_is_a_sorted_permutation(vals in nullable_ints(), asc in any::<bool>()) {
        let col = column_of(&vals);
        let perm = sort_perm(&[SortKey { col: &col, ascending: asc }], None).unwrap();
        // permutation: each position exactly once
        let mut seen = perm.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..vals.len() as u32).collect::<Vec<_>>());
        // sortedness under NULLS FIRST (asc) / NULLS LAST (desc)
        let keyed: Vec<Option<i64>> = perm.iter().map(|&p| vals[p as usize]).collect();
        for w in keyed.windows(2) {
            let ord_ok = match (w[0], w[1]) {
                (None, _) => asc || w[1].is_none(),
                (_, None) => !asc || w[0].is_none(),
                (Some(a), Some(b)) => if asc { a <= b } else { a >= b },
            };
            prop_assert!(ord_ok, "mis-ordered pair {:?}", w);
        }
    }

    #[test]
    fn topn_is_prefix_of_sort(vals in nullable_ints(), n in 0usize..50, asc in any::<bool>()) {
        let col = column_of(&vals);
        let keys = [SortKey { col: &col, ascending: asc }];
        let full = sort_perm(&keys, None).unwrap();
        let top = topn_perm(&keys, n, None).unwrap();
        prop_assert_eq!(top, full[..n.min(vals.len())].to_vec());
    }

    #[test]
    fn group_sums_match_oracle(vals in nullable_ints(), nkeys in 1i64..8) {
        // key = value mod nkeys (over non-null rows); value column = vals
        let keys: Vec<i64> = (0..vals.len() as i64).map(|i| i % nkeys).collect();
        let kcol = Column::from_ints(keys.clone());
        let vcol = column_of(&vals);
        let g = group_by(&[&kcol], None).unwrap();
        let counts = agg_count_star(&g);
        let sums = agg_sum(&vcol, &g).unwrap();
        // oracle
        let mut want_count = std::collections::HashMap::new();
        let mut want_sum: std::collections::HashMap<i64, Option<i64>> =
            std::collections::HashMap::new();
        for (i, v) in vals.iter().enumerate() {
            let k = keys[i];
            *want_count.entry(k).or_insert(0i64) += 1;
            let slot = want_sum.entry(k).or_insert(None);
            if let Some(x) = v {
                *slot = Some(slot.unwrap_or(0) + x);
            }
        }
        // map group ids back to keys via representatives
        for (gid, &rep) in g.representatives.iter().enumerate() {
            let k = keys[rep as usize];
            prop_assert_eq!(counts[gid], want_count[&k]);
            let got = sums.get(gid);
            let want = want_sum[&k].map(Value::Int).unwrap_or(Value::Null);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn gather_then_delete_partition(vals in nullable_ints(), picks in selection(200)) {
        // gather(S) ++ gather(Sᶜ) is a permutation-free partition of the column
        let picks: Vec<u32> = picks.into_iter().filter(|&p| (p as usize) < vals.len()).collect();
        let sel = SelVec::from_sorted(picks).unwrap();
        let col = column_of(&vals);
        let kept = col.gather(&sel).unwrap();
        let rest = col.gather(&sel.complement(vals.len())).unwrap();
        prop_assert_eq!(kept.len() + rest.len(), vals.len());
        let mut merged: Vec<Value> = kept.iter_values().chain(rest.iter_values()).collect();
        let mut original: Vec<Value> = col.iter_values().collect();
        let keyfn = |v: &Value| match v { Value::Int(x) => *x, _ => i64::MIN };
        merged.sort_by_key(keyfn);
        original.sort_by_key(keyfn);
        prop_assert_eq!(merged, original);
    }

    #[test]
    fn bitset_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let mut b = monet::bitset::Bitset::new();
        for &x in &bits {
            b.push(x);
        }
        prop_assert_eq!(b.len(), bits.len());
        for (i, &x) in bits.iter().enumerate() {
            prop_assert_eq!(b.get(i), x);
        }
        prop_assert_eq!(b.count_ones(), bits.iter().filter(|&&x| x).count());
        let ones: Vec<usize> = b.iter_ones().collect();
        let want: Vec<usize> = bits.iter().enumerate().filter_map(|(i, &x)| x.then_some(i)).collect();
        prop_assert_eq!(ones, want);
    }
}
