//! Copy-on-write isolation properties.
//!
//! `Column::clone` / `Relation::clone` are refcount bumps (zero-copy
//! snapshots). These properties pin the contract that makes that safe:
//! a clone is an immutable snapshot of the source at clone time — no
//! subsequent mutation of the source (appends, deletes, in-place ops,
//! truncation, clearing) may show through — and storage really is shared
//! until the first mutation.

use monet::prelude::*;
use proptest::prelude::*;

fn nullable_ints() -> impl Strategy<Value = Vec<Option<i64>>> {
    prop::collection::vec(prop::option::weighted(0.85, -50i64..50), 1..120)
}

fn column_of(vals: &[Option<i64>]) -> Column {
    let mut c = Column::new(ValueType::Int);
    for v in vals {
        c.push(v.map(Value::Int).unwrap_or(Value::Null)).unwrap();
    }
    c
}

fn values(c: &Column) -> Vec<Value> {
    c.iter_values().collect()
}

/// One random in-place mutation of a column, decoded from a raw seed (the
/// offline proptest shim has no one-of/tuple combinators).
#[derive(Debug, Clone)]
enum ColOp {
    Push(Option<i64>),
    Append(Vec<Option<i64>>),
    DeleteSel(Vec<u32>), // interpreted modulo the current length
    Truncate(usize),
    Clear,
}

fn decode_col_op(x: u64) -> ColOp {
    let payload = x >> 4;
    match x % 10 {
        0..=2 => ColOp::Push((!payload.is_multiple_of(5)).then_some((payload % 19) as i64 - 9)),
        3..=5 => ColOp::Append(
            (0..payload % 8)
                .map(|i| (!(payload.wrapping_mul(i + 3)).is_multiple_of(4))
                    .then_some(((payload >> (i % 16)) % 17) as i64 - 8))
                .collect(),
        ),
        6..=8 => ColOp::DeleteSel(
            (0..payload % 6)
                .map(|i| (payload.wrapping_mul(2 * i + 1) >> 3) as u32)
                .collect(),
        ),
        _ if payload.is_multiple_of(4) => ColOp::Clear,
        _ => ColOp::Truncate((payload % 40) as usize),
    }
}

fn col_ops() -> impl Strategy<Value = Vec<ColOp>> {
    prop::collection::vec(any::<u64>(), 1..12)
        .prop_map(|seeds| seeds.into_iter().map(decode_col_op).collect())
}

fn apply(col: &mut Column, op: &ColOp) {
    match op {
        ColOp::Push(v) => col
            .push(v.map(Value::Int).unwrap_or(Value::Null))
            .unwrap(),
        ColOp::Append(vs) => {
            let other = column_of(vs);
            col.append(&other).unwrap();
        }
        ColOp::DeleteSel(raw) => {
            if col.is_empty() {
                return;
            }
            let len = col.len() as u32;
            let positions: Vec<u32> = raw.iter().map(|&p| p % len).collect();
            col.delete_sel(&SelVec::from_unsorted(positions)).unwrap();
        }
        ColOp::Truncate(n) => col.truncate(*n),
        ColOp::Clear => col.clear(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// A clone is frozen at clone time, whatever happens to the source.
    #[test]
    fn column_clone_is_isolated(vals in nullable_ints(), ops in col_ops()) {
        let mut col = column_of(&vals);
        let snapshot = col.clone();
        prop_assert!(snapshot.shares_data(&col), "clone shares storage");
        let frozen = values(&snapshot);
        for op in &ops {
            apply(&mut col, op);
            prop_assert_eq!(&values(&snapshot), &frozen, "op {:?} leaked into snapshot", op);
        }
        prop_assert_eq!(snapshot.null_count(), frozen.iter().filter(|v| v.is_null()).count());
    }

    /// Symmetric direction: mutating the clone never touches the source.
    #[test]
    fn column_source_is_isolated_from_clone(vals in nullable_ints(), ops in col_ops()) {
        let col = column_of(&vals);
        let mut snapshot = col.clone();
        let frozen = values(&col);
        for op in &ops {
            apply(&mut snapshot, op);
            prop_assert_eq!(&values(&col), &frozen, "op {:?} leaked into source", op);
        }
    }

    /// Relation-level: a snapshot survives appends and deletes on the source.
    #[test]
    fn relation_clone_is_isolated(
        vals in nullable_ints(),
        extra in prop::collection::vec(any::<u64>(), 0..20),
        dead in prop::collection::vec(any::<u64>(), 0..8),
    ) {
        let mut rel = Relation::from_columns(vec![
            ("a".into(), column_of(&vals)),
            ("b".into(), Column::from_ints((0..vals.len() as i64).collect())),
        ]).unwrap();
        let snapshot = rel.clone();
        let frozen: Vec<Vec<Value>> = snapshot.iter_rows().collect();

        for x in &extra {
            let (a, b) = ((x % 19) as i64 - 9, ((x >> 8) % 19) as i64 - 9);
            rel.append_row(&[Value::Int(a), Value::Int(b)]).unwrap();
        }
        if !rel.is_empty() {
            let len = rel.len() as u32;
            let positions: Vec<u32> = dead.iter().map(|&p| (p as u32) % len).collect();
            rel.delete_sel(&SelVec::from_unsorted(positions)).unwrap();
        }
        rel.clear();

        let now: Vec<Vec<Value>> = snapshot.iter_rows().collect();
        prop_assert_eq!(now, frozen);
    }
}

#[test]
fn storage_shared_until_first_mutation() {
    let a = Column::from_ints(vec![1, 2, 3]);
    let b = a.clone();
    assert!(a.shares_data(&b));
    let mut c = b.clone();
    assert!(a.shares_data(&c));
    c.push(Value::Int(4)).unwrap();
    assert!(!a.shares_data(&c), "mutation un-shares");
    assert!(a.shares_data(&b), "uninvolved clone still shared");
    assert_eq!(a.ints().unwrap(), &[1, 2, 3]);
    assert_eq!(c.ints().unwrap(), &[1, 2, 3, 4]);
}

#[test]
fn append_into_empty_shares_storage() {
    let src = Column::from_ints(vec![7, 8, 9]);
    let mut dst = Column::new(ValueType::Int);
    dst.append(&src).unwrap();
    assert!(dst.shares_data(&src), "append into empty is zero-copy");
    assert_eq!(dst.ints().unwrap(), &[7, 8, 9]);
}
