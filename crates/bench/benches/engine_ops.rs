//! Criterion microbenchmarks over engine-level paths: basket ingestion,
//! factory firing (kernel vs SQL), and SQL front-end costs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datacell::clock::VirtualClock;
use datacell::prelude::*;
use datacell::scheduler::Scheduler;
use datacell::strategy::{separate_baskets, stream_schema, RangeQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn batch(n: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(1);
    Relation::from_columns(vec![
        ("ts".into(), Column::from_ts(vec![0; n])),
        (
            "a".into(),
            Column::from_ints((0..n).map(|_| rng.gen_range(0..10_000i64)).collect()),
        ),
    ])
    .unwrap()
}

fn bench_basket_append(c: &mut Criterion) {
    let clock = VirtualClock::new();
    let mut g = c.benchmark_group("basket_append");
    for &n in &[1_000usize, 100_000] {
        let rel = batch(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            let basket = Basket::new("B", &stream_schema(), false);
            b.iter(|| {
                basket.append_relation(rel.clone(), &clock).unwrap();
                basket.drain()
            })
        });
    }
    g.finish();
}

fn bench_factory_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("factory_roundtrip_100k");
    let n = 100_000usize;
    g.throughput(Throughput::Elements(n as u64));

    // hand-wired kernel factory
    g.bench_function("kernel", |b| {
        let clock = Arc::new(VirtualClock::new());
        let stream = Basket::new("S", &stream_schema(), false);
        let net = separate_baskets(
            &stream,
            &[RangeQuery { lo: 100, hi: 112 }],
            1,
            clock.clone(),
        );
        let mut sched = Scheduler::new();
        let outputs = net.outputs.clone();
        for f in net.factories {
            sched.add(f);
        }
        let rel = batch(n);
        b.iter(|| {
            stream.append_relation(rel.clone(), clock.as_ref()).unwrap();
            sched.run_until_quiescent(100).unwrap();
            for o in &outputs {
                o.drain();
            }
        })
    });

    // same query through the SQL executor
    g.bench_function("sql", |b| {
        let clock = Arc::new(VirtualClock::new());
        let engine = DataCell::with_clock(clock.clone());
        engine.create_basket("S", &stream_schema()).unwrap();
        let rx = engine
            .register_query(
                "q",
                "select ts, a from [select * from S where 100 < a and a < 112] as Z",
                QueryOptions::subscribed(),
            )
            .unwrap()
            .unwrap();
        let rel = batch(n);
        b.iter(|| {
            engine.ingest_relation("S", rel.clone()).unwrap();
            engine.run_until_quiescent(100).unwrap();
            while rx.try_recv().is_ok() {}
        })
    });
    g.finish();
}

fn bench_sql_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("sql_frontend");
    let sql = "select s, count(*) as n, avg(v) from [select * from S where 10 < v and v < 5000] as Z \
               group by s having count(*) > 2 order by n desc limit 10";
    g.bench_function("parse", |b| {
        b.iter(|| dcsql::parse_statements(sql).unwrap())
    });
    let stmts = dcsql::parse_statements(sql).unwrap();
    let rel = Relation::from_columns(vec![
        ("s".into(), Column::from_ints((0..10_000).map(|i| i % 50).collect())),
        ("v".into(), Column::from_ints((0..10_000).collect())),
    ])
    .unwrap();
    let ctx = dcsql::exec::StaticContext::new().with_relation("S", rel);
    g.bench_function("execute_10k_rows", |b| {
        b.iter(|| dcsql::exec::execute_script(&stmts, &ctx).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_basket_append,
    bench_factory_roundtrip,
    bench_sql_frontend
);
criterion_main!(benches);
