//! Ablation E9 — the bespoke basket-delete operator (§6.2).
//!
//! The paper: "creating a new operator, that … in one go removes a set of
//! tuples by shifting the remaining tuples in the positions of the deleted
//! ones, gives a significant boost in performance" (quantified at 20–30%
//! overall). This bench isolates exactly that choice: single-pass
//! `delete_shift` versus the composed stock-operator route
//! (`complement` + `gather` + replace) across deletion fractions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use monet::ops::delete::{delete_compose, delete_shift};
use monet::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn relation(n: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(1);
    Relation::from_columns(vec![
        (
            "a".into(),
            Column::from_ints((0..n).map(|_| rng.gen_range(0..1_000_000i64)).collect()),
        ),
        (
            "b".into(),
            Column::from_ints((0..n).map(|_| rng.gen_range(0..1_000i64)).collect()),
        ),
        (
            "ts".into(),
            Column::from_ts((0..n as i64).collect()),
        ),
    ])
    .unwrap()
}

fn selection(n: usize, fraction: f64, seed: u64) -> SelVec {
    let mut rng = StdRng::seed_from_u64(seed);
    let picks: Vec<u32> = (0..n as u32)
        .filter(|_| rng.gen_bool(fraction))
        .collect();
    SelVec::from_sorted(picks).unwrap()
}

fn bench_delete(c: &mut Criterion) {
    let n = 1_000_000usize;
    for &fraction in &[0.001f64, 0.1, 0.5, 0.9] {
        let mut g = c.benchmark_group(format!("delete_{}pct", (fraction * 100.0) as u32));
        g.throughput(Throughput::Elements(n as u64));
        let base = relation(n);
        let sel = selection(n, fraction, 2);
        g.bench_with_input(
            BenchmarkId::new("shift", n),
            &(&base, &sel),
            |b, (base, sel)| {
                b.iter_batched(
                    || (*base).clone(),
                    |mut rel| delete_shift(&mut rel, sel).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        g.bench_with_input(
            BenchmarkId::new("compose", n),
            &(&base, &sel),
            |b, (base, sel)| {
                b.iter_batched(
                    || (*base).clone(),
                    |mut rel| delete_compose(&mut rel, sel).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        g.finish();
    }
}

criterion_group!(benches, bench_delete);
criterion_main!(benches);
