//! Criterion microbenchmarks over the kernel primitives — the vectorized
//! operator costs every DataCell factory is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use monet::ops::group::{agg_sum, group_by};
use monet::ops::join::hash_join;
use monet::ops::select::select_range;
use monet::ops::sort::{sort_perm, SortKey};
use monet::ops::topn::topn_perm;
use monet::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ints(n: usize, domain: i64, seed: u64) -> Column {
    let mut rng = StdRng::seed_from_u64(seed);
    Column::from_ints((0..n).map(|_| rng.gen_range(0..domain)).collect())
}

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("select_range");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let col = ints(n, 10_000, 1);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &col, |b, col| {
            b.iter(|| {
                select_range(col, &Value::Int(100), &Value::Int(112), false, false, None)
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather");
    for &n in &[100_000usize, 1_000_000] {
        let col = ints(n, 10_000, 2);
        // 1% selectivity
        let sel = select_range(&col, &Value::Int(0), &Value::Int(100), false, false, None)
            .unwrap();
        g.throughput(Throughput::Elements(sel.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(&col, &sel), |b, (col, sel)| {
            b.iter(|| col.gather(sel).unwrap())
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_join");
    for &n in &[10_000usize, 100_000] {
        let l = ints(n, n as i64, 3);
        let r = ints(n, n as i64, 4);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &(&l, &r), |b, (l, r)| {
            b.iter(|| hash_join(l, r, None, None).unwrap())
        });
    }
    g.finish();
}

fn bench_group(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_sum");
    for &n in &[100_000usize, 1_000_000] {
        let keys = ints(n, 1_000, 5);
        let vals = ints(n, 100, 6);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&keys, &vals),
            |b, (keys, vals)| {
                b.iter(|| {
                    let grouping = group_by(&[keys], None).unwrap();
                    agg_sum(vals, &grouping).unwrap()
                })
            },
        );
    }
    g.finish();
}

fn bench_sort_topn(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering");
    let n = 100_000usize;
    let col = ints(n, 1_000_000, 7);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("full_sort_100k", |b| {
        b.iter(|| {
            sort_perm(&[SortKey { col: &col, ascending: true }], None).unwrap()
        })
    });
    g.bench_function("top20_100k", |b| {
        b.iter(|| topn_perm(&[SortKey { col: &col, ascending: true }], 20, None).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_select,
    bench_gather,
    bench_join,
    bench_group,
    bench_sort_topn
);
criterion_main!(benches);
