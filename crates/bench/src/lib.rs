//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary prints an aligned text table (the rows/series the paper
//! reports) and mirrors it to `target/figures/<name>.csv` so the results
//! can be plotted.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A figure/table emitter.
pub struct Figure {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Figure {
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Figure {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Print the table and write the CSV. Returns the CSV path.
    pub fn finish(self) -> PathBuf {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("\n== {} ==", self.name);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }

        let dir = PathBuf::from("target/figures");
        fs::create_dir_all(&dir).expect("create target/figures");
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.headers.join(",")).unwrap();
        for r in &self.rows {
            writeln!(f, "{}", r.join(",")).unwrap();
        }
        println!("[written {}]", path.display());
        path
    }
}

/// Machine-readable bench results, written on `--json <path>`:
/// `{"name":…,"params":{…},"metrics":{…}}`. Params are the knobs the run
/// used (echoed as strings), metrics the measured numbers — the shapes CI
/// and plotting scripts consume without scraping the text table.
pub struct JsonReport {
    name: String,
    params: Vec<(String, String)>,
    metrics: Vec<(String, f64)>,
}

impl JsonReport {
    pub fn new(name: &str) -> Self {
        JsonReport {
            name: name.to_string(),
            params: Vec::new(),
            metrics: Vec::new(),
        }
    }

    pub fn param(&mut self, key: &str, value: impl std::fmt::Display) {
        self.params.push((key.to_string(), value.to_string()));
    }

    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.push((key.to_string(), value));
    }

    /// Serialize (hand-rolled writer — the build image has no JSON crate).
    pub fn to_json(&self) -> String {
        let params = self
            .params
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
            .collect::<Vec<_>>()
            .join(",");
        let metrics = self
            .metrics
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), json_number(*v)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"name\":{},\"params\":{{{params}}},\"metrics\":{{{metrics}}}}}",
            json_string(&self.name)
        )
    }

    /// Write the report to `path` (parent dirs created).
    pub fn write(&self, path: &str) {
        let path = PathBuf::from(path);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).expect("create json output dir");
            }
        }
        fs::write(&path, self.to_json() + "\n").expect("write json report");
        println!("[written {}]", path.display());
    }
}

/// A JSON string literal for `s`.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number for `v` (non-finite values become `null`).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Parse `--key value` style flags from argv (tiny helper, no deps).
pub fn arg<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The value after `--key`, if the flag is present at all.
pub fn arg_opt(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == key)?;
    args.get(i + 1).cloned()
}

/// Format seconds with ms precision.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_roundtrip() {
        let mut f = Figure::new("test_fig", &["a", "b"]);
        f.row(vec!["1".into(), "2".into()]);
        let path = f.finish();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut f = Figure::new("x", &["a"]);
        f.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn json_report_shape() {
        let mut r = JsonReport::new("bench \"x\"");
        r.param("tuples", 100);
        r.param("format", "both");
        r.metric("tuples_per_s", 12345.5);
        r.metric("broken", f64::NAN);
        assert_eq!(
            r.to_json(),
            "{\"name\":\"bench \\\"x\\\"\",\
             \"params\":{\"tuples\":\"100\",\"format\":\"both\"},\
             \"metrics\":{\"tuples_per_s\":12345.5,\"broken\":null}}"
        );
    }

    #[test]
    fn json_report_writes_file() {
        let path = "target/figures/test_report.json";
        let mut r = JsonReport::new("t");
        r.metric("m", 1.0);
        r.write(path);
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "{\"name\":\"t\",\"params\":{},\"metrics\":{\"m\":1}}\n");
    }
}
