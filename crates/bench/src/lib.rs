//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary prints an aligned text table (the rows/series the paper
//! reports) and mirrors it to `target/figures/<name>.csv` so the results
//! can be plotted.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A figure/table emitter.
pub struct Figure {
    name: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Figure {
    pub fn new(name: &str, headers: &[&str]) -> Self {
        Figure {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Print the table and write the CSV. Returns the CSV path.
    pub fn finish(self) -> PathBuf {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("\n== {} ==", self.name);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }

        let dir = PathBuf::from("target/figures");
        fs::create_dir_all(&dir).expect("create target/figures");
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.headers.join(",")).unwrap();
        for r in &self.rows {
            writeln!(f, "{}", r.join(",")).unwrap();
        }
        println!("[written {}]", path.display());
        path
    }
}

/// Parse `--key value` style flags from argv (tiny helper, no deps).
pub fn arg<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Format seconds with ms precision.
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_roundtrip() {
        let mut f = Figure::new("test_fig", &["a", "b"]);
        f.row(vec!["1".into(), "2".into()]);
        let path = f.finish();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut f = Figure::new("x", &["a"]);
        f.row(vec!["1".into(), "2".into()]);
    }
}
