//! Figure 5(b) — alternative processing strategies.
//!
//! Same workload as Figure 5(a) at fixed batch size T = 10⁵: compare
//! **separate baskets** (per-query replication), **shared baskets**
//! (locker/unlocker round) and **partial deletes** (a consuming chain)
//! while the number of installed 0.1%-selectivity queries grows.
//!
//! `cargo run -p dc-bench --release --bin fig5b_strategies [--tuples N]`

use std::sync::Arc;
use std::time::Instant;

use datacell::clock::VirtualClock;
use datacell::scheduler::Scheduler;
use datacell::strategy::{
    disjoint_ranges, partial_deletes, separate_baskets, shared_baskets, shared_selection,
    stream_schema, StrategyNetwork,
};
use datacell::prelude::*;
use dc_bench::{arg, Figure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAIN: i64 = 10_000;

fn run_case(
    build: impl Fn(&Arc<Basket>, Arc<VirtualClock>) -> StrategyNetwork,
    tuples: usize,
) -> (f64, usize) {
    let clock = Arc::new(VirtualClock::new());
    let stream = Basket::new("S", &stream_schema(), false);
    let net = build(&stream, clock.clone());
    let mut sched = Scheduler::new();
    let outputs = net.outputs.clone();
    for f in net.factories {
        sched.add(f);
    }
    let mut rng = StdRng::seed_from_u64(11);
    let rows: Vec<Vec<Value>> = (0..tuples)
        .map(|_| vec![Value::Ts(0), Value::Int(rng.gen_range(0..DOMAIN))])
        .collect();
    stream.append_rows(&rows, clock.as_ref()).unwrap();
    let wall = Instant::now();
    sched.run_until_quiescent(100_000).unwrap();
    let elapsed = wall.elapsed().as_secs_f64();
    let hits: usize = outputs.iter().map(|b| b.len()).sum();
    (elapsed, hits)
}

fn main() {
    let full: usize = arg("--tuples", 100_000);
    let max_q: usize = arg("--max-queries", 1024);
    let mut fig = Figure::new(
        "fig5b_strategies",
        &["queries", "strategy", "elapsed_s_per_1e5", "matched"],
    );
    for &k in &[2usize, 8, 32, 256, 1024] {
        if k > max_q {
            continue;
        }
        // bound peak memory of the replicating strategy: k copies of the
        // batch live simultaneously
        let tuples = full.min(20_000_000 / k).max(1_000);
        let scale = 100_000.0 / tuples as f64;
        let queries = disjoint_ranges(k, DOMAIN, 0.001);
        let cases: Vec<(&str, StrategyBuilder)> = vec![
            ("separate", Box::new({
                let q = queries.clone();
                move |s: &Arc<Basket>, c: Arc<VirtualClock>| {
                    separate_baskets(s, &q, 1, c)
                }
            })),
            ("shared", Box::new({
                let q = queries.clone();
                move |s: &Arc<Basket>, c: Arc<VirtualClock>| shared_baskets(s, &q, 1, c)
            })),
            ("partial", Box::new({
                let q = queries.clone();
                move |s: &Arc<Basket>, c: Arc<VirtualClock>| partial_deletes(s, &q, 1, c)
            })),
            // §4.3 extension beyond the paper: one fused factory sharing
            // execution cost across all queries
            ("fused", Box::new({
                let q = queries.clone();
                move |s: &Arc<Basket>, c: Arc<VirtualClock>| shared_selection(s, &q, 1, c)
            })),
        ];
        for (name, build) in cases {
            let (elapsed, matched) = run_case(build, tuples);
            fig.row(vec![
                k.to_string(),
                name.into(),
                format!("{:.3}", elapsed * scale),
                matched.to_string(),
            ]);
            println!("[k={k} {name} n={tuples}] {elapsed:.3}s raw, {matched} matches");
        }
    }
    fig.finish();
    println!(
        "\nPaper shape: both alternatives beat separate baskets (which pays \
         k-fold replication); shared baskets beats partial deletes, and the \
         gaps widen with the number of queries."
    );
}

type StrategyBuilder = Box<dyn Fn(&Arc<Basket>, Arc<VirtualClock>) -> StrategyNetwork>;
