//! Figure 6 (beyond the paper) — compiled plans + column pruning.
//!
//! The workload the plan layer exists for: a WIDE shared stream basket
//! (1 key column + `--payload` opaque columns, default 31 → 32 user
//! columns) and K standing queries that each touch **2 of 32** columns
//! (`select a, p0 from [select a, p0 from S where a = watch]`). Two
//! measurements:
//!
//! * **Snapshot cost**: µs per basket snapshot, full-width
//!   (`Basket::snapshot`) vs pruned to the plan's 2-column requirement
//!   (`Basket::snapshot_cols`) — the firing's phase-1 cost under the
//!   basket lock. Pruned is O(touched-columns) Arc bumps, so the ratio
//!   should sit near width/touched (~16× here); the gate asserts ≥ 3×.
//! * **Standing-query rounds/s**: the fig5c driver loop (Defer-mode
//!   consumption, driver plays the unlocker) with every query registered
//!   on the **compiled** path vs the **interpreted** path
//!   (`QueryOptions::plan_mode`). The compiled path snapshots 2 columns,
//!   filters through one `select_cmp` selection scan, and gathers 2
//!   columns at the projection boundary; the interpreter snapshots all
//!   33, materializes a rid lineage column per firing, renames every
//!   column, and gathers full width. The gate asserts ≥ 1.5× rounds/s.
//!
//! `cargo run --release -p dc_bench --bin fig6_pruning
//!     [--rows N] [--rounds R] [--payload W] [--queries K]
//!     [--snap-iters I] [--assert-speedup X] [--assert-snap X]
//!     [--json PATH]`

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use datacell::basket::{Basket, TS_COLUMN};
use datacell::clock::VirtualClock;
use datacell::engine::{DataCell, QueryOptions};
use datacell::factory::{ConsumeMode, PendingDeletes, PlanMode};
use dc_bench::{arg, arg_opt, Figure, JsonReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use monet::prelude::*;

const DOMAIN: i64 = 1_000;

/// Key column `a` plus `payload` opaque columns `p0..`.
fn stream_schema(payload: usize) -> Schema {
    let mut fields = vec![Field::new("a", ValueType::Int)];
    fields.extend((0..payload).map(|i| Field::new(format!("p{i}"), ValueType::Int)));
    Schema::new(fields)
}

/// One pre-stamped ingest batch (full schema incl. the arrival column).
fn make_batch(rows: usize, payload: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..DOMAIN)).collect();
    let filler: Vec<i64> = (0..rows as i64).collect();
    let mut cols = vec![("a".to_string(), Column::from_ints(a))];
    for i in 0..payload {
        cols.push((format!("p{i}"), Column::from_ints(filler.clone())));
    }
    cols.push((TS_COLUMN.into(), Column::from_ts(vec![0; rows])));
    Relation::from_columns(cols).unwrap()
}

/// µs per full-width vs pruned snapshot of a clean basket.
fn snapshot_cost(rows: usize, payload: usize, iters: usize) -> (f64, f64) {
    let clock = VirtualClock::new();
    let basket = Basket::new("S", &stream_schema(payload), true);
    basket
        .append_relation(make_batch(rows, payload, 7), &clock)
        .unwrap();
    let wanted: BTreeSet<String> = ["a".to_string(), "p0".to_string()].into();
    let mut keep = 0usize;
    for _ in 0..200 {
        keep = keep.wrapping_add(basket.snapshot().width());
        keep = keep.wrapping_add(basket.snapshot_cols(Some(&wanted)).width());
    }
    let t = Instant::now();
    for _ in 0..iters {
        keep = keep.wrapping_add(basket.snapshot().len());
    }
    let full_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    let t = Instant::now();
    for _ in 0..iters {
        keep = keep.wrapping_add(basket.snapshot_cols(Some(&wanted)).len());
    }
    let pruned_us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    assert!(keep > 0, "snapshots observed");
    (full_us, pruned_us)
}

/// K standing 2-of-32-column queries over one shared wide basket,
/// Defer-mode (the driver plays the unlocker), on one execution path.
/// Returns (rounds/s, matched tuples, avg lock µs/firing).
fn standing_queries(
    mode: PlanMode,
    k: usize,
    rows: usize,
    rounds: usize,
    payload: usize,
) -> (f64, u64, f64) {
    let engine = DataCell::with_clock(Arc::new(VirtualClock::new()));
    engine.create_stream("S", &stream_schema(payload)).unwrap();
    let out_schema = Schema::from_pairs(&[("a", ValueType::Int), ("p0", ValueType::Int)]);
    let pending = PendingDeletes::new();
    for i in 0..k {
        let watch = (i as i64 * DOMAIN) / k.max(1) as i64;
        engine
            .create_basket(&format!("OUT{i}"), &out_schema)
            .unwrap();
        engine
            .register_query(
                &format!("q{i}"),
                &format!(
                    "insert into OUT{i} select a, p0 from \
                     [select a, p0 from S where a = {watch}] as Z"
                ),
                QueryOptions {
                    consume: Some(ConsumeMode::Defer(Arc::clone(&pending))),
                    plan_mode: Some(mode),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
    }
    let basket = engine.basket("S").unwrap();
    let outs: Vec<_> = (0..k)
        .map(|i| engine.basket(&format!("OUT{i}")).unwrap())
        .collect();
    let batch = make_batch(rows, payload, 11);

    let mut matched = 0u64;
    let wall = Instant::now();
    for _ in 0..rounds {
        engine.ingest_relation("S", batch.clone()).unwrap();
        engine.run_round().unwrap();
        // unlocker role: the K queries consumed only their watch rows
        // and no other query wants the rest, so retire the whole batch —
        // an O(1) storage release on the clean basket (the consumption
        // union's positions are subsumed; replaying delete_sel + drain
        // would pay a full-width gather that measures the driver, not
        // the firing path under test)
        let _ = pending.take();
        let _ = basket.drain();
        for out in &outs {
            matched += out.drain().len() as u64;
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    let (mut firings, mut lock_us) = (0u64, 0u64);
    for (_, s) in engine.factory_stats() {
        firings += s.firings;
        lock_us += s.lock_micros;
    }
    (
        rounds as f64 / elapsed,
        matched,
        lock_us as f64 / firings.max(1) as f64,
    )
}

fn main() {
    let rows: usize = arg("--rows", 50_000);
    let rounds: usize = arg("--rounds", 30);
    let payload: usize = arg("--payload", 31);
    let k: usize = arg("--queries", 8);
    let snap_iters: usize = arg("--snap-iters", 20_000);
    let assert_speedup: f64 = arg("--assert-speedup", 1.5);
    let assert_snap: f64 = arg("--assert-snap", 3.0);

    let width = payload + 2; // key + payload + dc_ts

    let mut report = JsonReport::new("fig6_pruning");
    report.param("rows", rows);
    report.param("rounds", rounds);
    report.param("payload", payload);
    report.param("queries", k);

    // ---- snapshot cost: full width vs plan-pruned -------------------------
    let mut snap_fig = Figure::new(
        "fig6_snapshot_pruning",
        &["rows", "width", "full_us", "pruned_us", "ratio"],
    );
    let mut min_ratio = f64::INFINITY;
    for rows in [10_000usize, 100_000] {
        let (full, pruned) = snapshot_cost(rows, payload, snap_iters);
        let ratio = full / pruned;
        min_ratio = min_ratio.min(ratio);
        report.metric(&format!("snapshot_full_us_rows_{rows}"), full);
        report.metric(&format!("snapshot_pruned_us_rows_{rows}"), pruned);
        snap_fig.row(vec![
            rows.to_string(),
            width.to_string(),
            format!("{full:.3}"),
            format!("{pruned:.3}"),
            format!("{ratio:.1}x"),
        ]);
        println!(
            "[snapshot rows={rows}] full {full:.3} µs vs pruned (2 of {width} cols) \
             {pruned:.3} µs → {ratio:.1}x"
        );
    }
    snap_fig.finish();
    report.metric("snapshot_prune_min_ratio", min_ratio);
    assert!(
        min_ratio >= assert_snap,
        "pruned snapshots are only {min_ratio:.2}x cheaper (expected ≥ {assert_snap}x): \
         O(touched-columns) snapshot pruning regressed"
    );

    // ---- standing queries: compiled vs interpreted ------------------------
    let mut fig = Figure::new(
        "fig6_standing_queries",
        &["path", "queries", "rows", "rounds_per_s", "fire_lock_us", "matched"],
    );
    let (interp_rps, interp_matched, interp_lock) =
        standing_queries(PlanMode::Interpreted, k, rows, rounds, payload);
    println!(
        "[interpreted k={k} rows={rows}] {interp_rps:.2} rounds/s, \
         lock {interp_lock:.1} µs/firing, {interp_matched} matches"
    );
    let (comp_rps, comp_matched, comp_lock) =
        standing_queries(PlanMode::Compiled, k, rows, rounds, payload);
    println!(
        "[compiled    k={k} rows={rows}] {comp_rps:.2} rounds/s, \
         lock {comp_lock:.1} µs/firing, {comp_matched} matches"
    );
    for (path, rps, lock, matched) in [
        ("interpreted", interp_rps, interp_lock, interp_matched),
        ("compiled", comp_rps, comp_lock, comp_matched),
    ] {
        fig.row(vec![
            path.to_string(),
            k.to_string(),
            rows.to_string(),
            format!("{rps:.2}"),
            format!("{lock:.1}"),
            matched.to_string(),
        ]);
    }
    fig.finish();

    assert_eq!(
        interp_matched, comp_matched,
        "the two paths must produce identical results"
    );
    let speedup = comp_rps / interp_rps;
    println!(
        "\ncompiled/interpreted speedup: {speedup:.2}x \
         (2-of-{width}-column standing queries, K={k})"
    );
    report.metric("interpreted_rounds_per_s", interp_rps);
    report.metric("compiled_rounds_per_s", comp_rps);
    report.metric("compiled_speedup", speedup);
    if let Some(path) = arg_opt("--json") {
        report.write(&path);
    }
    assert!(
        speedup >= assert_speedup,
        "compiled plans are only {speedup:.2}x faster (expected ≥ {assert_speedup}x)"
    );
}
