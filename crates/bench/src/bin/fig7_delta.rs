//! fig7_delta (beyond the paper) — incremental delta execution of
//! standing queries vs full re-execution.
//!
//! The workload the delta path exists for: standing hash-join and
//! group-by queries over an append-only stream basket that keeps
//! *growing*. Every round appends a small batch and fires every query.
//! On the interpreted path each firing re-reads the whole basket, so a
//! round gets slower as the basket grows; on the compiled delta path a
//! firing processes only the appended rows against carried state (join
//! pair lists, per-group accumulators, shared key arrangements), so
//! per-round cost stays flat.
//!
//! Three phases measure rounds/s at basket sizes ~n, ~10n and ~100n
//! (bulk filler between phases is absorbed by one unmeasured firing).
//! Gates:
//!
//! * **flatness** — compiled rounds/s at the largest size stays within
//!   `--assert-flat` (default 2×) of the small-basket value across the
//!   100× growth;
//! * **speedup** — compiled beats interpreted by ≥ `--assert-speedup`
//!   (default 3×) at the largest size;
//! * **exactness** — both paths emit identical result multisets
//!   (order-independent row-hash checksum over every emission).
//!
//! `cargo run --release -p dc_bench --bin fig7_delta
//!     [--batch B] [--rounds R] [--queries K] [--growth G]
//!     [--assert-flat X] [--assert-speedup X] [--json PATH]`

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Receiver;
use datacell::basket::TS_COLUMN;
use datacell::clock::VirtualClock;
use datacell::engine::{DataCell, QueryOptions};
use datacell::factory::PlanMode;
use dc_bench::{arg, arg_opt, Figure, JsonReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use monet::prelude::*;

/// Join-key domain; T indexes `HOT` of these, so join results stay small
/// while the probe side grows.
const DOMAIN: i64 = 100_000;
const HOT: i64 = 16;
/// Group-key domain: bounds every grouped result at 64 rows.
const GROUPS: i64 = 64;

fn stream_schema() -> Schema {
    Schema::from_pairs(&[
        ("k", ValueType::Int),
        ("g", ValueType::Int),
        ("v", ValueType::Int),
    ])
}

/// One pre-stamped ingest batch for S. Seeded per (phase, round) so the
/// compiled and interpreted runs see identical data.
fn make_batch(rows: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let k: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..DOMAIN)).collect();
    let g: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..GROUPS)).collect();
    let v: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..1_000)).collect();
    Relation::from_columns(vec![
        ("k".to_string(), Column::from_ints(k)),
        ("g".to_string(), Column::from_ints(g)),
        ("v".to_string(), Column::from_ints(v)),
        (TS_COLUMN.to_string(), Column::from_ts(vec![0; rows])),
    ])
    .unwrap()
}

/// FNV-style hash of one result row — cheap enough that checksumming
/// does not dominate the measured rounds.
fn row_hash(row: &[Value]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in row {
        let x = match v {
            Value::Null => 0x9e37_79b9_7f4a_7c15,
            Value::Bool(b) => *b as u64 + 1,
            Value::Int(i) | Value::Ts(i) => *i as u64,
            Value::Double(d) => d.to_bits(),
            Value::Str(s) => s
                .bytes()
                .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64)),
        };
        h = (h ^ x).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Order-independent multiset checksum: hash every row of every drained
/// emission, sum with wrapping adds. Also counts emitted rows.
fn drain_checksum(rxs: &[Receiver<Relation>], sum: &mut u64, rows: &mut u64) {
    for rx in rxs {
        while let Ok(rel) = rx.try_recv() {
            *rows += rel.len() as u64;
            for row in rel.iter_rows() {
                *sum = sum.wrapping_add(row_hash(&row));
            }
        }
    }
}

struct RunOutcome {
    /// rounds/s per growth phase.
    phase_rps: Vec<f64>,
    checksum: u64,
    emitted_rows: u64,
    delta_rows: u64,
    full_reexecutes: u64,
}

/// K standing queries (alternating grouped aggregate / two-table hash
/// join) over a growing stream, on one execution path.
fn run(mode: PlanMode, k: usize, batch: usize, rounds: usize, growth: usize) -> RunOutcome {
    let engine = DataCell::with_clock(Arc::new(VirtualClock::new()));
    engine.create_stream("S", &stream_schema()).unwrap();
    engine
        .create_stream("T", &Schema::from_pairs(&[("k", ValueType::Int), ("m", ValueType::Int)]))
        .unwrap();
    // the build side: HOT keys spread over the domain
    engine
        .ingest_relation(
            "T",
            Relation::from_columns(vec![
                (
                    "k".to_string(),
                    Column::from_ints((0..HOT).map(|i| i * (DOMAIN / HOT)).collect()),
                ),
                ("m".to_string(), Column::from_ints((0..HOT).map(|i| i * 1_000).collect())),
                (TS_COLUMN.to_string(), Column::from_ts(vec![0; HOT as usize])),
            ])
            .unwrap(),
        )
        .unwrap();

    let mut rxs = Vec::with_capacity(k);
    for i in 0..k {
        let sql = if i % 2 == 0 {
            "select g, count(*) as n, sum(v) as s from S group by g".to_string()
        } else {
            "select S.v as sv, T.m as tm from S, T where S.k = T.k".to_string()
        };
        let rx = engine
            .register_query(
                &format!("q{i}"),
                &sql,
                QueryOptions {
                    subscribe: true,
                    plan_mode: Some(mode),
                    ..QueryOptions::default()
                },
            )
            .unwrap()
            .expect("select queries carry a result channel");
        rxs.push(rx);
    }

    let (mut checksum, mut emitted_rows) = (0u64, 0u64);
    let mut phase_rps = Vec::new();
    for phase in 0..3usize {
        if phase > 0 {
            // bulk-grow the basket to base·growth^phase and absorb it in
            // one unmeasured round, so the measured rounds see a larger
            // standing basket, not a larger delta
            let target = batch * rounds * growth.pow(phase as u32);
            let filler = target.saturating_sub(engine.basket("S").unwrap().len());
            engine
                .ingest_relation("S", make_batch(filler, 1_000 + phase as u64))
                .unwrap();
            engine.run_round().unwrap();
            // One more unmeasured batch: the bulk ingest above leaves the
            // basket columns at exact-fit capacity, so the next append
            // pays a full doubling realloc. Under organic growth that
            // realloc is rare (capacity keeps ~2x slack); paying it here
            // keeps the measured rounds at steady-state cost.
            engine
                .ingest_relation("S", make_batch(batch, 2_000 + phase as u64))
                .unwrap();
            engine.run_round().unwrap();
            drain_checksum(&rxs, &mut checksum, &mut emitted_rows);
        }
        let wall = Instant::now();
        for round in 0..rounds {
            engine
                .ingest_relation("S", make_batch(batch, (phase * rounds + round) as u64))
                .unwrap();
            engine.run_round().unwrap();
            drain_checksum(&rxs, &mut checksum, &mut emitted_rows);
        }
        phase_rps.push(rounds as f64 / wall.elapsed().as_secs_f64());
    }

    let (mut delta_rows, mut full_reexecutes) = (0u64, 0u64);
    for (_, s) in engine.factory_stats() {
        delta_rows += s.delta_rows;
        full_reexecutes += s.full_reexecutes;
    }
    RunOutcome {
        phase_rps,
        checksum,
        emitted_rows,
        delta_rows,
        full_reexecutes,
    }
}

fn main() {
    let batch: usize = arg("--batch", 200);
    let rounds: usize = arg("--rounds", 50);
    let k: usize = arg("--queries", 8);
    let growth: usize = arg("--growth", 10);
    let assert_flat: f64 = arg("--assert-flat", 2.0);
    let assert_speedup: f64 = arg("--assert-speedup", 3.0);

    let mut report = JsonReport::new("fig7_delta");
    report.param("batch", batch);
    report.param("rounds", rounds);
    report.param("queries", k);
    report.param("growth", growth);

    let interp = run(PlanMode::Interpreted, k, batch, rounds, growth);
    let delta = run(PlanMode::Compiled, k, batch, rounds, growth);

    let mut fig = Figure::new(
        "fig7_delta",
        &["path", "phase", "basket_scale", "rounds_per_s"],
    );
    for (path, out) in [("interpreted", &interp), ("delta", &delta)] {
        for (phase, rps) in out.phase_rps.iter().enumerate() {
            let scale = growth.pow(phase as u32);
            fig.row(vec![
                path.to_string(),
                phase.to_string(),
                format!("{}x", scale),
                format!("{rps:.1}"),
            ]);
            report.metric(&format!("{path}_rounds_per_s_phase{phase}"), *rps);
            println!("[{path} phase={phase}] {rps:.1} rounds/s");
        }
    }
    fig.finish();

    assert!(
        delta.delta_rows > 0,
        "the compiled run never executed incrementally"
    );
    println!(
        "\ndelta path: {} delta rows, {} full re-executions, {} emitted rows",
        delta.delta_rows, delta.full_reexecutes, delta.emitted_rows
    );

    // exactness: both paths emitted the same result multiset
    assert_eq!(
        (interp.emitted_rows, interp.checksum),
        (delta.emitted_rows, delta.checksum),
        "delta and interpreted emissions diverged"
    );

    // flatness: per-round cost stays put while the basket grows 100×
    let small = delta.phase_rps[0];
    let worst = delta.phase_rps.iter().cloned().fold(f64::INFINITY, f64::min);
    let flat_ratio = small / worst;
    report.metric("delta_flatness_ratio", flat_ratio);
    println!(
        "delta flatness: {small:.1} rounds/s small vs {worst:.1} worst → {flat_ratio:.2}x \
         (gate ≤ {assert_flat}x)"
    );

    // speedup at the largest basket
    let speedup = delta.phase_rps[2] / interp.phase_rps[2];
    report.metric("delta_speedup_largest", speedup);
    println!(
        "delta vs interpreted at the largest basket: {speedup:.2}x (gate ≥ {assert_speedup}x)"
    );
    if let Some(path) = arg_opt("--json") {
        report.write(&path);
    }
    assert!(
        flat_ratio <= assert_flat,
        "delta rounds/s degraded {flat_ratio:.2}x across 100x growth (expected ≤ {assert_flat}x): \
         per-firing cost is no longer proportional to the delta"
    );
    assert!(
        speedup >= assert_speedup,
        "delta path is only {speedup:.2}x faster than interpreted at the largest basket \
         (expected ≥ {assert_speedup}x)"
    );
}
