//! Figure 4 — effect of inter-process communication.
//!
//! A sensor process streams 10⁵ two-column tuples over TCP into the
//! engine; a query chain of `select *` continuous queries (the worst case:
//! every tuple flows through every query) hands them to an emitter that
//! delivers to an actuator over TCP. The "without kernel" rows connect the
//! sensor directly to the actuator, isolating pure communication cost.
//!
//! Reproduces both panels: (a) elapsed time per batch, (b) throughput.
//!
//! `cargo run -p dc-bench --release --bin fig4_comm [--tuples N]`

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use datacell::prelude::*;
use dc_bench::{arg, Figure};

fn sensor_rows(n: usize) -> Vec<(i64, i64)> {
    // (creation timestamp written later, payload)
    (0..n as i64).map(|i| (0, i % 10_000)).collect()
}

/// Sensor → actuator directly over TCP loopback. Returns (elapsed s, tput).
fn without_kernel(n: usize) -> (f64, f64) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let actuator = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        let mut count = 0usize;
        while count < n {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            count += 1;
        }
        count
    });
    let start = Instant::now();
    let mut writer = BufWriter::new(TcpStream::connect(addr).unwrap());
    for (_, payload) in sensor_rows(n) {
        writeln!(writer, "{}|{}", now_micros(), payload).unwrap();
    }
    writer.flush().unwrap();
    drop(writer);
    let received = actuator.join().unwrap();
    assert_eq!(received, n);
    let elapsed = start.elapsed().as_secs_f64();
    (elapsed, n as f64 / elapsed)
}

fn now_micros() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_micros() as i64
}

/// Full pipeline with a k-query chain inside the kernel.
fn with_kernel(n: usize, k: usize) -> (f64, f64) {
    let engine = Arc::new(DataCell::new());
    let schema = Schema::from_pairs(&[("ts", ValueType::Ts), ("val", ValueType::Int)]);
    // chain baskets B0..Bk-1 (queries i: B_i → B_{i+1}; last one subscribed)
    for i in 0..k {
        engine.create_basket(&format!("B{i}"), &schema).unwrap();
    }
    for i in 0..k - 1 {
        engine
            .register_query(
                &format!("q{i}"),
                &format!(
                    "insert into B{} select ts, val from [select * from B{}] as Z",
                    i + 1,
                    i
                ),
                QueryOptions::default(),
            )
            .unwrap();
    }
    let results = engine
        .register_query(
            &format!("q{}", k - 1),
            &format!("select ts, val from [select * from B{}] as Z", k - 1),
            QueryOptions::subscribed(),
        )
        .unwrap()
        .unwrap();

    // actuator: TCP server counting deliveries
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let actuator_addr = listener.local_addr().unwrap();
    let actuator = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        let mut count = 0usize;
        while count < n {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            count += 1;
        }
        count
    });
    let emitter = Emitter::spawn_tcp(
        "emit",
        results,
        TcpStream::connect(actuator_addr).unwrap(),
        WireFormat::Text,
    );

    // receptor: TCP server fed by the sensor
    let rec_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let rec_addr = rec_listener.local_addr().unwrap();
    let receptor = Receptor::spawn_tcp(
        "recv",
        rec_listener,
        engine.basket("B0").unwrap(),
        Arc::clone(engine.clock()),
        WireFormat::Text,
    );

    // scheduler thread
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let engine2 = Arc::clone(&engine);
    let sched = std::thread::spawn(move || {
        while !stop2.load(Ordering::Acquire) {
            let r = engine2.run_round().unwrap();
            if r.fired == 0 {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        }
        // final drain
        engine2.run_until_quiescent(1_000).unwrap();
    });

    // sensor
    let start = Instant::now();
    let mut writer = BufWriter::new(TcpStream::connect(rec_addr).unwrap());
    for (_, payload) in sensor_rows(n) {
        writeln!(writer, "{}|{}", now_micros(), payload).unwrap();
    }
    writer.flush().unwrap();
    drop(writer);

    let received = actuator.join().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    sched.join().unwrap();
    receptor.join().unwrap();
    drop(engine);
    emitter.join().unwrap();
    assert_eq!(received, n, "all tuples must reach the actuator");
    (elapsed, n as f64 / elapsed)
}

fn main() {
    let n: usize = arg("--tuples", 100_000);
    let mut fig = Figure::new(
        "fig4_comm",
        &["queries", "mode", "elapsed_s", "throughput_tps"],
    );

    // panel baseline: pure communication (sensor → actuator)
    let (e, t) = without_kernel(n);
    for q in [8usize, 16, 32, 64] {
        fig.row(vec![
            q.to_string(),
            "without_kernel".into(),
            format!("{e:.3}"),
            format!("{t:.0}"),
        ]);
    }

    for q in [8usize, 16, 32, 64] {
        let (e, t) = with_kernel(n, q);
        fig.row(vec![
            q.to_string(),
            "with_kernel".into(),
            format!("{e:.3}"),
            format!("{t:.0}"),
        ]);
    }
    fig.finish();
    println!(
        "\nPaper shape: flat 'without kernel' line (communication floor); \
         'with kernel' elapsed grows with #queries, throughput decreases."
    );
}
