//! Figure 5(c) (beyond the paper) — zero-copy basket snapshots.
//!
//! Two measurements around the copy-on-write firing path:
//!
//! * **Snapshot scaling**: microseconds per `Basket::snapshot()` as the
//!   buffered row count grows. With `Arc`-backed columns the cost is
//!   O(width) — flat in the row count — where it used to be a full
//!   O(rows × width) deep copy.
//! * **Shared-basket query scaling**: K standing queries over ONE shared
//!   stream basket (deferred consumption, the §4.2 shared strategy as
//!   registered SQL queries). Every firing snapshots the same basket, so
//!   pre-copy-on-write each round paid K full copies serialized under the
//!   basket lock; now each pays a refcount bump. Reports rounds/s plus
//!   the average per-firing lock-held and busy time from
//!   [`datacell::scheduler::FactoryStats`].
//!
//! The stream schema is deliberately wide (`--payload` extra columns,
//! default 14): queries select on one attribute while the basket carries
//! many, which is exactly where eager per-firing copies hurt — the old
//! path cloned every column of every involved basket under the lock,
//! O(rows × width) per firing, regardless of what the query touched.
//!
//! `cargo run --release -p dc_bench --bin fig5c_snapshot
//!     [--rows N] [--rounds R] [--payload W] [--queries "1,4,16,64"]
//!     [--snap-rows "1000,10000,100000,1000000"] [--json PATH]`

use std::sync::Arc;
use std::time::Instant;

use datacell::basket::{Basket, TS_COLUMN};
use datacell::clock::VirtualClock;
use datacell::engine::{DataCell, QueryOptions};
use datacell::factory::{ConsumeMode, PendingDeletes};
use dc_bench::{arg, arg_opt, Figure, JsonReport};
use monet::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAIN: i64 = 10_000;

fn list(key: &str, default: &str) -> Vec<usize> {
    arg::<String>(key, default.to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// The key attribute plus `payload` opaque columns.
fn stream_schema(payload: usize) -> Schema {
    let mut fields = vec![("a".to_string(), ValueType::Int)];
    fields.extend((0..payload).map(|i| (format!("p{i}"), ValueType::Int)));
    Schema::new(
        fields
            .into_iter()
            .map(|(n, t)| Field::new(n, t))
            .collect(),
    )
}

/// One pre-stamped ingest batch (full schema incl. the arrival column, so
/// the driver's refill adds no per-round stamping work).
fn make_batch(rows: usize, payload: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let a: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..DOMAIN)).collect();
    let filler: Vec<i64> = (0..rows as i64).collect();
    let mut cols = vec![("a".to_string(), Column::from_ints(a))];
    for i in 0..payload {
        cols.push((format!("p{i}"), Column::from_ints(filler.clone())));
    }
    cols.push((TS_COLUMN.into(), Column::from_ts(vec![0; rows])));
    Relation::from_columns(cols).unwrap()
}

/// Microseconds per snapshot of a basket holding `rows` tuples.
fn snapshot_micros(rows: usize, payload: usize) -> f64 {
    let clock = VirtualClock::new();
    let basket = Basket::new("S", &stream_schema(payload), true);
    basket
        .append_relation(make_batch(rows, payload, 7), &clock)
        .unwrap();
    // warm up, then time enough iterations to be measurable
    let iters = 2_000usize;
    let mut keep = 0usize;
    for _ in 0..100 {
        keep = keep.wrapping_add(basket.snapshot().len());
    }
    let t = Instant::now();
    for _ in 0..iters {
        keep = keep.wrapping_add(basket.snapshot().len());
    }
    let us = t.elapsed().as_secs_f64() * 1e6 / iters as f64;
    assert!(keep > 0, "snapshots observed");
    us
}

struct SharedRun {
    rounds_per_s: f64,
    fire_lock_us: f64,
    fire_busy_us: f64,
    matched: u64,
}

/// K standing queries with deferred consumption over one shared basket;
/// the driver plays the unlocker (applies the union of consumption sets
/// after each scheduling round, then refills the basket).
fn shared_queries(k: usize, rows: usize, rounds: usize, payload: usize) -> SharedRun {
    let engine = DataCell::with_clock(Arc::new(VirtualClock::new()));
    engine.create_stream("S", &stream_schema(payload)).unwrap();
    let out_schema = Schema::from_pairs(&[("a", ValueType::Int)]);
    let pending = PendingDeletes::new();
    for i in 0..k {
        // each query watches one point of the key domain — cheap per-query
        // work (one selection on one column) against a wide shared basket
        let watch = (i * DOMAIN as usize / k.max(1)) as i64;
        engine.create_basket(&format!("OUT{i}"), &out_schema).unwrap();
        engine
            .register_query(
                &format!("q{i}"),
                &format!(
                    "insert into OUT{i} select a from [select * from S] as Z \
                     where Z.a = {watch}"
                ),
                QueryOptions {
                    consume: Some(ConsumeMode::Defer(Arc::clone(&pending))),
                    ..QueryOptions::default()
                },
            )
            .unwrap();
    }
    let basket = engine.basket("S").unwrap();
    let outs: Vec<_> = (0..k)
        .map(|i| engine.basket(&format!("OUT{i}")).unwrap())
        .collect();
    let batch = make_batch(rows, payload, 11);

    let mut matched = 0u64;
    let wall = Instant::now();
    for _ in 0..rounds {
        engine.ingest_relation("S", batch.clone()).unwrap();
        engine.run_round().unwrap();
        // unlocker role: apply the union of the K consumption sets
        for (name, sel) in pending.take() {
            debug_assert_eq!(name, "S");
            basket.delete_sel(&sel).unwrap();
        }
        for out in &outs {
            matched += out.drain().len() as u64;
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();

    let (mut firings, mut lock_us, mut busy_us) = (0u64, 0u64, 0u64);
    for (_, s) in engine.factory_stats() {
        firings += s.firings;
        lock_us += s.lock_micros;
        busy_us += s.busy_micros;
    }
    SharedRun {
        rounds_per_s: rounds as f64 / elapsed,
        fire_lock_us: lock_us as f64 / firings.max(1) as f64,
        fire_busy_us: busy_us as f64 / firings.max(1) as f64,
        matched,
    }
}

fn main() {
    let rows: usize = arg("--rows", 100_000);
    let rounds: usize = arg("--rounds", 50);
    let payload: usize = arg("--payload", 14);
    let ks = list("--queries", "1,4,16,64");
    let snap_rows = list("--snap-rows", "1000,10000,100000,1000000");

    let mut report = JsonReport::new("fig5c_snapshot");
    report.param("rows", rows);
    report.param("rounds", rounds);
    report.param("payload", payload);

    let mut snap_fig = Figure::new("fig5c_snapshot_scaling", &["rows", "snapshot_us"]);
    let mut first = f64::NAN;
    let mut last = f64::NAN;
    for &n in &snap_rows {
        let us = snapshot_micros(n, payload);
        if first.is_nan() {
            first = us;
        }
        last = us;
        report.metric(&format!("snapshot_us_rows_{n}"), us);
        snap_fig.row(vec![n.to_string(), format!("{us:.3}")]);
        println!("[snapshot rows={n}] {us:.3} µs/op");
    }
    snap_fig.finish();
    if let (Some(&lo), Some(&hi)) = (snap_rows.first(), snap_rows.last()) {
        if hi > lo {
            let ratio = last / first;
            report.metric("snapshot_scaling_ratio", ratio);
            println!(
                "snapshot scaling {hi}/{lo} rows: {ratio:.2}x time (1.0x = perfectly flat / O(width))"
            );
            // The regression gate: with copy-on-write columns this ratio
            // sits near 1.0 whatever the row count; a deep-copy snapshot
            // would scale with hi/lo (e.g. ~1000x for 1k→1M rows). The
            // generous bound only absorbs sub-µs timer noise.
            if hi / lo >= 10 {
                assert!(
                    ratio < 5.0,
                    "snapshot cost scales with rows ({ratio:.2}x from {lo} to {hi}): \
                     the zero-copy (O(width)) snapshot property regressed"
                );
            }
        }
    }

    let mut fig = Figure::new(
        "fig5c_shared_queries",
        &["queries", "rows", "rounds_per_s", "fire_lock_us", "fire_busy_us", "matched"],
    );
    for &k in &ks {
        let r = shared_queries(k, rows, rounds, payload);
        report.metric(&format!("rounds_per_s_k{k}"), r.rounds_per_s);
        report.metric(&format!("fire_lock_us_k{k}"), r.fire_lock_us);
        fig.row(vec![
            k.to_string(),
            rows.to_string(),
            format!("{:.2}", r.rounds_per_s),
            format!("{:.1}", r.fire_lock_us),
            format!("{:.1}", r.fire_busy_us),
            r.matched.to_string(),
        ]);
        println!(
            "[k={k} rows={rows}] {:.2} rounds/s, lock {:.1} µs / busy {:.1} µs per firing, \
             {} matches",
            r.rounds_per_s, r.fire_lock_us, r.fire_busy_us, r.matched
        );
    }
    fig.finish();
    if let Some(path) = arg_opt("--json") {
        report.write(&path);
    }
    println!(
        "\nExpected shape: snapshot µs flat in rows (copy-on-write, O(width)); \
         rounds/s degrades sub-linearly in K because each extra query adds only \
         a scan, not a basket copy held under the lock."
    );
}
