//! Figure 5(a) — effect of batch processing.
//!
//! 10⁵ uniform tuples in [0, 10⁴); all queries are single-stream range
//! selections of 0.1% selectivity over separate baskets. The batch-size
//! threshold `T` is swept from tuple-at-a-time (`T = 1`, the classic DSMS
//! model) to 10⁵.
//!
//! Latency per tuple couples *measured* processing cost with a *modelled*
//! arrival process (tuples arriving at `--rate` per second): a batch can
//! only finish after its last tuple has arrived, so very large batches pay
//! waiting time — reproducing the paper's U-shape. The default rate
//! (10⁶/s) stresses this engine the way the paper's 2.2·10⁴/s stressed
//! 2008 hardware; pass `--rate` to explore other regimes.
//!
//! `cargo run -p dc-bench --release --bin fig5a_batch [--rate R]`

use std::sync::Arc;
use std::time::Instant;

use datacell::clock::VirtualClock;
use datacell::scheduler::Scheduler;
use datacell::strategy::{disjoint_ranges, separate_baskets, stream_schema};
use datacell::prelude::*;
use dc_bench::{arg, Figure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAIN: i64 = 10_000;

fn run_case(queries: usize, batch: usize, total: usize, rate: f64) -> f64 {
    let clock = Arc::new(VirtualClock::new());
    let stream = Basket::new("S", &stream_schema(), false);
    let net = separate_baskets(
        &stream,
        &disjoint_ranges(queries, DOMAIN, 0.001),
        batch,
        clock.clone(),
    );
    let mut sched = Scheduler::new();
    for f in net.factories {
        sched.add(f);
    }

    let mut rng = StdRng::seed_from_u64(7);
    let values: Vec<i64> = (0..total).map(|_| rng.gen_range(0..DOMAIN)).collect();

    // discrete-event replay: batch j arrives at ((j+1)·T − 1)/rate; its
    // processing starts when it has arrived AND the previous batch is done
    let mut virtual_completion = 0.0f64;
    let mut latency_sum = 0.0f64;
    let mut processed = 0usize;
    for chunk in values.chunks(batch) {
        let rows: Vec<Vec<Value>> = chunk
            .iter()
            .map(|&v| vec![Value::Ts(0), Value::Int(v)])
            .collect();
        stream.append_rows(&rows, clock.as_ref()).unwrap();
        let wall = Instant::now();
        sched.run_until_quiescent(1_000).unwrap();
        let processing = wall.elapsed().as_secs_f64();

        let first_idx = processed;
        let last_arrival = (first_idx + chunk.len()) as f64 / rate;
        let start = virtual_completion.max(last_arrival);
        virtual_completion = start + processing;
        for i in 0..chunk.len() {
            let arrival = (first_idx + i + 1) as f64 / rate;
            latency_sum += virtual_completion - arrival;
        }
        processed += chunk.len();
    }
    latency_sum / processed as f64 * 1e6 // µs per tuple
}

fn main() {
    let rate: f64 = arg("--rate", 1_000_000.0);
    let full: usize = arg("--tuples", 100_000);
    let mut fig = Figure::new(
        "fig5a_batch",
        &["queries", "batch_size", "latency_us_per_tuple"],
    );
    for &queries in &[10usize, 100, 1000] {
        for &batch in &[1usize, 10, 100, 1_000, 10_000, 100_000] {
            // keep tuple-at-a-time cases tractable: enough batches for a
            // stable mean, scaled down from the full 10⁵
            let total = full.min((batch * 50).max(2_000)).max(batch);
            let lat = run_case(queries, batch, total, rate);
            fig.row(vec![
                queries.to_string(),
                batch.to_string(),
                format!("{lat:.1}"),
            ]);
            println!("[q={queries} T={batch} n={total}] {lat:.1} µs/tuple");
        }
    }
    fig.finish();
    println!(
        "\nPaper shape: latency falls ~3 orders of magnitude as T grows, \
         then flattens/degrades once waiting for the batch dominates \
         (around T = 10³ at the paper's arrival rate)."
    );
}
