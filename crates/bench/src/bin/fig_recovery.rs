//! Durability cost and recovery speed.
//!
//! Two measurements the paper's in-memory design leaves open once a WAL
//! is bolted on:
//!
//! 1. **Ingest tax** — tuples/sec through a binary receptor into a
//!    transient stream vs a `PERSIST` stream under each fsync policy
//!    (`off`, `every_n:64`, `always`). The log-before-ack ordering puts
//!    the WAL append on the ingest hot path, so this is the end-to-end
//!    price of durability.
//! 2. **Recovery time vs WAL size** — reboot the daemon on data dirs
//!    whose WAL tails hold growing row counts and time the
//!    replay-before-accept window (the added downtime after a crash).
//!
//! `cargo run -p dc_bench --release --bin fig_recovery
//!     [--tuples N] [--batch B] [--trials T] [--json PATH] [--gate PCT]`
//!
//! `--gate PCT` exits nonzero if `every_n` durable ingest falls below
//! PCT percent of in-memory ingest — the CI floor on the durability tax.
//! Each ingest mode runs `--trials` times (default 3) and reports the
//! best. The gate compares *paired* trials — an in-memory run and an
//! `every_n` run back-to-back, taking the best ratio across pairs — so
//! it measures the durability tax itself, not whatever load the host
//! happened to carry when one of the two modes ran.

use std::path::PathBuf;
use std::time::Instant;

use datacell::frame::WireFormat;
use dc_bench::{arg, arg_opt, secs, Figure, JsonReport};
use dcserver::client::Client;
use dcserver::{bind, ServerConfig};
use monet::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dc-fig-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn schema() -> Schema {
    Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)])
}

/// Ingest `n` tuples through a binary receptor; returns seconds from
/// first byte to the last row acknowledged in `STATS`. `data_dir = None`
/// runs the transient baseline.
fn ingest(n: usize, batch: usize, data_dir: Option<(&PathBuf, dcstore::FsyncPolicy)>) -> f64 {
    let config = ServerConfig {
        data_dir: data_dir.map(|(d, _)| d.clone()),
        fsync: data_dir.map(|(_, f)| f).unwrap_or_default(),
        ..ServerConfig::default()
    };
    let durable = config.data_dir.is_some();
    let server = bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let daemon = std::thread::spawn(move || server.serve());

    let mut c = Client::connect(addr).unwrap();
    if durable {
        c.create_persistent_stream("S", "(id int, v int)").unwrap();
    } else {
        c.create_stream("S", "(id int, v int)").unwrap();
    }
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let schema = schema();
    let mut sink = c
        .open_receptor_with(rport, WireFormat::Binary, &schema)
        .unwrap();

    let start = Instant::now();
    let mut sent = 0usize;
    while sent < n {
        let take = batch.min(n - sent);
        let mut rel = Relation::new(&schema);
        for i in sent..sent + take {
            rel.append_row(&[Value::Int(i as i64), Value::Int((i % 1000) as i64)])
                .unwrap();
        }
        sink.send_batch(&rel).unwrap();
        sent += take;
    }
    sink.flush().unwrap();
    loop {
        let stats = c.stats_report().unwrap();
        let acked: u64 = stats
            .receptors
            .iter()
            .filter(|r| r.stream == "S")
            .map(|r| r.accepted)
            .sum();
        if acked >= n as u64 {
            break;
        }
        std::thread::yield_now();
    }
    let elapsed = start.elapsed().as_secs_f64();
    c.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    elapsed
}

/// Rebind a daemon on `dir` and return (wal bytes replayed, seconds the
/// recovery-before-accept window took, rows replayed).
fn recover(dir: &std::path::Path) -> (u64, f64, u64) {
    let wal_bytes = std::fs::metadata(dir.join("streams").join("S").join("wal.log"))
        .map(|m| m.len())
        .unwrap_or(0);
    let start = Instant::now();
    let server = bind(
        "127.0.0.1:0",
        ServerConfig {
            data_dir: Some(dir.to_path_buf()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    let replayed = server
        .runtime()
        .recovery_report()
        .map(|r| r.replayed_rows)
        .unwrap_or(0);
    server.runtime().request_shutdown();
    server.runtime().shutdown();
    (wal_bytes, elapsed, replayed)
}

/// Best-of-`trials` ingest time: each trial gets a fresh server (and a
/// wiped data dir for durable modes), the minimum wins.
fn best_ingest(
    trials: usize,
    n: usize,
    batch: usize,
    data_dir: Option<(&PathBuf, dcstore::FsyncPolicy)>,
) -> f64 {
    (0..trials.max(1))
        .map(|_| {
            if let Some((dir, _)) = data_dir {
                let _ = std::fs::remove_dir_all(dir);
                std::fs::create_dir_all(dir).unwrap();
            }
            ingest(n, batch, data_dir)
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let tuples: usize = arg("--tuples", 200_000);
    let batch: usize = arg("--batch", 4096);
    let trials: usize = arg("--trials", 3);
    let gate_pct: f64 = arg("--gate", 0.0);

    let mut fig = Figure::new("fig_recovery", &["mode", "tuples", "secs", "tuples_per_sec"]);
    let mut json = JsonReport::new("fig_recovery");
    json.param("tuples", tuples);
    json.param("batch", batch);
    json.param("trials", trials);

    // paired trials: in-memory and every_n back-to-back, so each pair
    // sees the same host conditions; the best pairwise ratio feeds the
    // gate while the best absolute time of each mode feeds the figure
    let every_dir = temp_dir("durable-every_n");
    let mut base_secs = f64::INFINITY;
    let mut every_secs = f64::INFINITY;
    let mut best_ratio = 0.0f64;
    for _ in 0..trials.max(1) {
        let b = ingest(tuples, batch, None);
        let _ = std::fs::remove_dir_all(&every_dir);
        std::fs::create_dir_all(&every_dir).unwrap();
        let d = ingest(tuples, batch, Some((&every_dir, dcstore::FsyncPolicy::default())));
        base_secs = base_secs.min(b);
        every_secs = every_secs.min(d);
        best_ratio = best_ratio.max(b / d);
    }
    let _ = std::fs::remove_dir_all(&every_dir);
    let base_tps = tuples as f64 / base_secs;
    let every_n_tps = tuples as f64 / every_secs;
    fig.row(vec![
        "in-memory".into(),
        tuples.to_string(),
        secs(base_secs),
        format!("{base_tps:.0}"),
    ]);
    json.metric("in_memory_tuples_per_sec", base_tps);
    json.metric("durable_over_in_memory_pct", best_ratio * 100.0);

    for (label, policy) in [
        ("durable-off", dcstore::FsyncPolicy::Off),
        ("durable-every_n", dcstore::FsyncPolicy::default()),
        ("durable-always", dcstore::FsyncPolicy::Always),
    ] {
        let (s, tps) = if label == "durable-every_n" {
            (every_secs, every_n_tps)
        } else {
            let dir = temp_dir(label);
            let s = best_ingest(trials, tuples, batch, Some((&dir, policy)));
            let _ = std::fs::remove_dir_all(&dir);
            (s, tuples as f64 / s)
        };
        fig.row(vec![
            format!("{label} ({policy})"),
            tuples.to_string(),
            secs(s),
            format!("{tps:.0}"),
        ]);
        json.metric(&format!("{}_tuples_per_sec", label.replace('-', "_")), tps);
    }

    // recovery time as a function of the WAL tail left behind
    let mut rfig = Figure::new(
        "fig_recovery_replay",
        &["wal_rows", "wal_bytes", "recover_secs", "rows_per_sec"],
    );
    for frac in [4usize, 2, 1] {
        let rows = tuples / frac;
        let dir = temp_dir(&format!("replay-{frac}"));
        // leave the whole ingest in the WAL (no seal), shut down, reboot
        let _ = ingest(rows, batch, Some((&dir, dcstore::FsyncPolicy::Off)));
        let (wal_bytes, secs_r, replayed) = recover(&dir);
        assert_eq!(replayed, rows as u64, "recovery must replay every row");
        rfig.row(vec![
            rows.to_string(),
            wal_bytes.to_string(),
            secs(secs_r),
            format!("{:.0}", rows as f64 / secs_r),
        ]);
        json.metric(&format!("recover_secs_{rows}_rows"), secs_r);
        json.metric(&format!("recover_wal_bytes_{rows}_rows"), wal_bytes as f64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fig.finish();
    rfig.finish();
    if let Some(path) = arg_opt("--json") {
        json.write(&path);
    }

    if gate_pct > 0.0 {
        let pct = best_ratio * 100.0;
        if pct < gate_pct {
            eprintln!(
                "GATE FAIL: durable every_n ingest at {pct:.1}% of paired \
                 in-memory ingest (floor {gate_pct}%)"
            );
            std::process::exit(1);
        }
        println!("[gate ok: durable every_n at {pct:.1}% of paired in-memory ingest (floor {gate_pct}%)]");
    }
}
