//! Figure 9 — average response time of query collection Q7 over the run,
//! for two scale factors.
//!
//! Q7 (account balances, 18 queries) dominates system resources; the paper
//! tracks its average processing time as data accumulates and the arrival
//! rate ramps up, for SF 0.5 and SF 1. Absolute scale factors here default
//! lower so the replay finishes quickly — pass `--scale-a 0.5 --scale-b
//! 1.0` for the full-size run.
//!
//! `cargo run -p dc-bench --release --bin fig9_lr_q7 \
//!     [--scale-a 0.05] [--scale-b 0.1] [--duration 10800]`

use dc_bench::{arg, Figure};
use linearroad::driver::{run, DriverConfig};
use linearroad::gen::GenConfig;

fn main() {
    let scale_a: f64 = arg("--scale-a", 0.05);
    let scale_b: f64 = arg("--scale-b", 0.1);
    let duration: i64 = arg("--duration", 10_800);
    let window: i64 = arg("--window", 60);

    let mut columns = Vec::new();
    for scale in [scale_a, scale_b] {
        let cfg = DriverConfig {
            gen: GenConfig {
                scale,
                duration_secs: duration,
                seed: 42,
                xways: 1,
                query_fraction: 0.01,
            },
            sample_every_secs: window,
        };
        let result = run(&cfg);
        println!(
            "scale {scale}: {} tuples, wall {:.1}s, Q7 deadline compliance (5s): {:.3}",
            result.total_input,
            result.wall_secs,
            result.deadline_compliance(6, 5_000.0)
        );
        columns.push(result.q7_response_series());
    }

    let mut fig = Figure::new(
        "fig9_lr_q7",
        &["minute", "q7_ms_scale_a", "q7_ms_scale_b"],
    );
    let len = columns[0].len().max(columns[1].len());
    for i in 0..len {
        let minute = columns[0]
            .get(i)
            .or(columns[1].get(i))
            .map(|(t, _)| t / 60)
            .unwrap_or(0);
        let cell = |c: &Vec<(i64, f64)>| {
            c.get(i)
                .map(|(_, ms)| format!("{ms:.3}"))
                .unwrap_or_else(|| "".into())
        };
        fig.row(vec![minute.to_string(), cell(&columns[0]), cell(&columns[1])]);
    }
    fig.finish();
    println!(
        "\nPaper shape: Q7 average response time stays low (well under the \
         5 s deadline) across the whole run and scales gracefully when the \
         scale factor doubles."
    );
}
