//! "Pure Kernel Activity" (§6.1) — events/second through a single factory
//! with no communication in the loop.
//!
//! The paper reports ≈ 7·10⁶ events/s per factory. Two variants:
//! a hand-wired kernel factory (range select + gather, the MAL-level path)
//! and the same query through the SQL executor (snapshot + plan overhead).
//!
//! `cargo run -p dc-bench --release --bin kernel_throughput [--tuples N]`

use std::sync::Arc;
use std::time::Instant;

use datacell::clock::VirtualClock;
use datacell::scheduler::Scheduler;
use datacell::strategy::{separate_baskets, stream_schema, RangeQuery};
use datacell::prelude::*;
use dc_bench::{arg, Figure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fill(stream: &Arc<Basket>, n: usize, clock: &VirtualClock) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(rng.gen_range(0..10_000i64));
    }
    let rel = Relation::from_columns(vec![
        ("ts".into(), Column::from_ts(vec![0; n])),
        ("a".into(), Column::from_ints(vals)),
    ])
    .unwrap();
    stream.append_relation(rel, clock).unwrap();
}

fn main() {
    let n: usize = arg("--tuples", 1_000_000);
    let reps: usize = arg("--reps", 5);
    let mut fig = Figure::new(
        "kernel_throughput",
        &["variant", "tuples", "events_per_sec"],
    );

    // ---- hand-wired kernel factory (single query, separate basket) -------
    {
        let clock = Arc::new(VirtualClock::new());
        let stream = Basket::new("S", &stream_schema(), false);
        let net = separate_baskets(
            &stream,
            &[RangeQuery { lo: 100, hi: 112 }],
            1,
            clock.clone(),
        );
        let mut sched = Scheduler::new();
        for f in net.factories {
            sched.add(f);
        }
        let mut best = 0.0f64;
        for _ in 0..reps {
            fill(&stream, n, &clock);
            let wall = Instant::now();
            sched.run_until_quiescent(100).unwrap();
            let tput = n as f64 / wall.elapsed().as_secs_f64();
            best = best.max(tput);
        }
        fig.row(vec![
            "kernel_factory".into(),
            n.to_string(),
            format!("{best:.0}"),
        ]);
    }

    // ---- the same query through the SQL executor --------------------------
    {
        let clock = Arc::new(VirtualClock::new());
        let engine = DataCell::with_clock(clock.clone());
        engine.create_basket("S", &stream_schema()).unwrap();
        // predicate outside the brackets: the basket expression references
        // (and therefore consumes) every tuple, like the kernel variant
        engine
            .register_query(
                "q",
                "select ts, a from [select * from S] as Z where 100 < Z.a and Z.a < 112",
                QueryOptions::subscribed(),
            )
            .unwrap()
            .unwrap();
        let stream = engine.basket("S").unwrap();
        let mut best = 0.0f64;
        for _ in 0..reps {
            fill(&stream, n, &clock);
            let wall = Instant::now();
            engine.run_until_quiescent(100).unwrap();
            let tput = n as f64 / wall.elapsed().as_secs_f64();
            best = best.max(tput);
        }
        fig.row(vec![
            "sql_factory".into(),
            n.to_string(),
            format!("{best:.0}"),
        ]);
    }

    fig.finish();
    println!(
        "\nPaper claim: each factory handles ~7e6 events/s without \
         communication; the kernel path should land in that order of \
         magnitude, the SQL path below it (snapshot + plan overhead)."
    );
}
