//! Figure 8 — Linear Road input distribution: tuples arriving per second
//! over the three-hour run, for two scale factors.
//!
//! `cargo run -p dc-bench --release --bin fig8_lr_input \
//!     [--scale-a 0.05] [--scale-b 0.1] [--duration 10800]`

use dc_bench::{arg, Figure};
use linearroad::gen::{generate, GenConfig};

fn main() {
    let scale_a: f64 = arg("--scale-a", 0.05);
    let scale_b: f64 = arg("--scale-b", 0.1);
    let duration: i64 = arg("--duration", 10_800);
    let window: i64 = arg("--window", 60);

    let mut fig = Figure::new(
        "fig8_lr_input",
        &["minute", "tps_scale_a", "tps_scale_b"],
    );
    let mut series = Vec::new();
    for scale in [scale_a, scale_b] {
        let cfg = GenConfig {
            scale,
            duration_secs: duration,
            seed: 42,
            xways: 1,
            query_fraction: 0.01,
        };
        let w = generate(&cfg);
        println!("scale {scale}: {} tuples total", w.tuples.len());
        series.push(w.arrivals_per_second(duration));
    }
    for start in (0..duration).step_by(window as usize) {
        let avg = |s: &Vec<usize>| {
            let end = ((start + window) as usize).min(s.len());
            let sum: usize = s[start as usize..end].iter().sum();
            sum as f64 / window as f64
        };
        fig.row(vec![
            (start / 60).to_string(),
            format!("{:.1}", avg(&series[0])),
            format!("{:.1}", avg(&series[1])),
        ]);
    }
    fig.finish();
    println!(
        "\nPaper shape: arrival rate ramps from tens of tuples/s at the \
         start to the peak rate at the end of the three hours; doubling \
         the scale factor doubles the curve."
    );
}
