//! Aggregate ingest throughput through the `dccluster` router as the
//! shard count grows.
//!
//! For each shard count, boots a cluster of in-process engines behind
//! one router, declares a `SHARD BY (id)` stream with a selective (1%)
//! continuous query, then pumps binary batches through the logical
//! receptor port from several concurrent writer connections and measures
//! tuples/sec until the last matching result lands on the logical
//! emitter port — the full loop: client → router split → shard engines →
//! router merge → client.
//!
//! The point of the figure: adding engines moves the bottleneck off the
//! single engine's append/scan/delete path, so aggregate throughput
//! scales; the `scaleup 2/1` line is the CI-tracked number.
//!
//! `cargo run --release -p dc_bench --bin cluster_scaleup
//!     [--tuples N] [--batch B] [--writers W] [--shards "1,2"]
//!     [--json PATH]`

use std::time::Instant;

use datacell::frame::WireFormat;
use dc_bench::{arg, arg_opt, Figure, JsonReport};
use dccluster::{bind_cluster, ClusterConfig};
use dcserver::client::{Client, ShardedClient};
use monet::prelude::*;

/// n tuples through a cluster with `shards` engines; returns elapsed
/// seconds (first batch sent → last result received).
fn through_cluster(n: usize, shards: usize, batch: usize, writers: usize) -> f64 {
    let cluster = bind_cluster("127.0.0.1:0", ClusterConfig::in_process(shards)).unwrap();
    let addr = cluster.local_addr().unwrap();
    let daemon = std::thread::spawn(move || cluster.serve());

    let mut c = ShardedClient::from_client(Client::connect(addr).unwrap());
    c.create_sharded_stream("S", "(id int, v int)", "id", Some(shards))
        .unwrap();
    // 1% of v ∈ 0..1000 pass: the engines do real scan+delete work per
    // tuple while the result stream stays light
    c.register_query("q", "select id, v from [select * from S] as Z where Z.v < 10")
        .unwrap();
    let rport = c.attach_receptor_fmt("S", 0, WireFormat::Binary).unwrap();
    let eport = c.attach_emitter_fmt("q", 0, WireFormat::Binary).unwrap();

    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let expected: usize = (0..n as i64).filter(|i| i % 1000 < 10).count();
    let mut tap = c.open_emitter_with(eport, WireFormat::Binary).unwrap();
    tap.set_timeout(Some(std::time::Duration::from_secs(120)))
        .unwrap();
    let reader_schema = schema.clone();
    let reader = std::thread::spawn(move || {
        let mut got = 0usize;
        while got < expected {
            match tap
                .next_batch(&reader_schema)
                .expect("results stalled >120s (lost tuples?)")
            {
                Some(b) => got += b.len(),
                None => break,
            }
        }
        got
    });

    // carve 0..n into one contiguous span per writer connection
    let span = n.div_ceil(writers);
    let mut sinks = Vec::new();
    for w in 0..writers {
        let lo = (w * span).min(n) as i64;
        let hi = ((w + 1) * span).min(n) as i64;
        if lo < hi {
            let sink = c
                .open_receptor_with(rport, WireFormat::Binary, &schema)
                .unwrap();
            sinks.push((lo, hi, sink));
        }
    }

    let start = Instant::now();
    let writer_threads: Vec<_> = sinks
        .into_iter()
        .map(|(lo, hi, mut sink)| {
            std::thread::spawn(move || {
                let mut at = lo;
                while at < hi {
                    let top = (at + batch as i64).min(hi);
                    let rel = Relation::from_columns(vec![
                        ("id".into(), Column::from_ints((at..top).collect())),
                        (
                            "v".into(),
                            Column::from_ints((at..top).map(|i| i % 1000).collect()),
                        ),
                    ])
                    .unwrap();
                    sink.send_batch(&rel).unwrap();
                    at = top;
                }
                sink.flush().unwrap();
            })
        })
        .collect();
    for t in writer_threads {
        t.join().unwrap();
    }
    let got = reader.join().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(got, expected, "all matching tuples must arrive");

    c.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    elapsed
}

fn main() {
    let n: usize = arg("--tuples", 200_000);
    let batch: usize = arg("--batch", 4096);
    let writers: usize = arg("--writers", 4);
    let shard_list: String = arg("--shards", "1,2".to_string());
    let shard_counts: Vec<usize> = shard_list
        .split(',')
        .map(|s| s.trim().parse().expect("--shards takes e.g. \"1,2,4\""))
        .collect();

    let mut report = JsonReport::new("cluster_scaleup");
    report.param("tuples", n);
    report.param("batch", batch);
    report.param("writers", writers);
    report.param("shards", &shard_list);
    let mut fig = Figure::new(
        "cluster_scaleup",
        &["shards", "tuples", "writers", "elapsed_s", "tuples_per_s"],
    );
    let mut tput: Vec<(usize, f64)> = Vec::new();
    for &shards in &shard_counts {
        let elapsed = through_cluster(n, shards, batch, writers);
        let t = n as f64 / elapsed;
        tput.push((shards, t));
        report.metric(&format!("shards_{shards}_tuples_per_s"), t);
        fig.row(vec![
            shards.to_string(),
            n.to_string(),
            writers.to_string(),
            format!("{elapsed:.3}"),
            format!("{t:.0}"),
        ]);
    }
    fig.finish();
    let of = |want: usize| tput.iter().find(|(s, _)| *s == want).map(|(_, t)| *t);
    if let (Some(one), Some(two)) = (of(1), of(2)) {
        println!("\nscaleup 2/1: {:.2}x aggregate binary-ingest throughput", two / one);
        report.metric("scaleup_2_over_1", two / one);
    }
    if let Some(path) = arg_opt("--json") {
        report.write(&path);
    }
}
