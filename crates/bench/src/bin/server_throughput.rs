//! End-to-end throughput through the `datacelld` server.
//!
//! Boots the daemon in-process on ephemeral ports, registers a
//! passthrough continuous query and a selective (10%) one, then measures
//! tuples/sec for the full §3.1 loop: client → receptor socket → basket →
//! factory → emitter socket → client. The "wire only" row pumps the same
//! tuples through a bare TCP echo to isolate protocol + loopback cost
//! from engine cost.
//!
//! `cargo run -p dc_bench --release --bin server_throughput [--tuples N]`

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use dc_bench::{arg, Figure};
use dcserver::client::Client;
use dcserver::{bind, ServerConfig};
use monet::prelude::*;

/// Bare TCP loopback echo of n wire tuples (no engine).
fn wire_only(n: usize) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let echo = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut writer = BufWriter::new(sock);
        let mut line = String::new();
        for _ in 0..n {
            line.clear();
            reader.read_line(&mut line).unwrap();
            writer.write_all(line.as_bytes()).unwrap();
        }
        writer.flush().unwrap();
    });
    let sock = TcpStream::connect(addr).unwrap();
    let mut writer = BufWriter::new(sock.try_clone().unwrap());
    let reader_thread = std::thread::spawn(move || {
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        for _ in 0..n {
            line.clear();
            reader.read_line(&mut line).unwrap();
        }
    });
    let start = Instant::now();
    for i in 0..n as i64 {
        writeln!(writer, "{}|{}", i, i % 1000).unwrap();
    }
    writer.flush().unwrap();
    reader_thread.join().unwrap();
    echo.join().unwrap();
    start.elapsed().as_secs_f64()
}

/// n tuples through the daemon; `selectivity_pct` of them reach the
/// emitter. Returns elapsed seconds (send-first-tuple → last result).
fn through_server(n: usize, selectivity_pct: i64) -> f64 {
    let server = bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let daemon = std::thread::spawn(move || server.serve());

    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, v int)").unwrap();
    let sql = format!(
        "select id, v from [select * from S] as Z where Z.v < {}",
        selectivity_pct * 10 // v is uniform over 0..1000
    );
    c.register_query("q", &sql).unwrap();
    let rport = c.attach_receptor("S", 0).unwrap();
    let eport = c.attach_emitter("q", 0).unwrap();

    let expected: usize = (0..n as i64)
        .filter(|i| i % 1000 < selectivity_pct * 10)
        .count();

    let mut sink = c.open_receptor(rport).unwrap();
    let mut tap = c.open_emitter(eport).unwrap();
    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);

    let reader = std::thread::spawn(move || {
        let mut got = 0usize;
        while got < expected {
            match tap.next_row(&schema).unwrap() {
                Some(_) => got += 1,
                None => break,
            }
        }
        got
    });

    let start = Instant::now();
    for i in 0..n as i64 {
        sink.send_row(&[Value::Int(i), Value::Int(i % 1000)]).unwrap();
    }
    sink.flush().unwrap();
    let got = reader.join().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(got, expected, "all matching tuples must arrive");

    c.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    elapsed
}

fn main() {
    let n: usize = arg("--tuples", 100_000);
    let mut fig = Figure::new(
        "server_throughput",
        &["path", "tuples", "elapsed_s", "tuples_per_s"],
    );
    let wire = wire_only(n);
    fig.row(vec![
        "wire only".into(),
        n.to_string(),
        format!("{wire:.3}"),
        format!("{:.0}", n as f64 / wire),
    ]);
    for (label, pct) in [("passthrough (100%)", 100i64), ("selective (10%)", 10)] {
        let elapsed = through_server(n, pct);
        fig.row(vec![
            format!("datacelld {label}"),
            n.to_string(),
            format!("{elapsed:.3}"),
            format!("{:.0}", n as f64 / elapsed),
        ]);
    }
    fig.finish();
}
