//! End-to-end throughput through the `datacelld` server.
//!
//! Boots the daemon in-process on ephemeral ports, registers a
//! passthrough continuous query and a selective (10%) one, then measures
//! tuples/sec for the full §3.1 loop: client → receptor socket → basket →
//! factory → emitter socket → client. The "wire only" row pumps the same
//! tuples through a bare TCP echo to isolate protocol + loopback cost
//! from engine cost.
//!
//! The data plane runs in both wire formats so the text-vs-binary gap is
//! a tracked number: `--format text|binary|both` (default `both`).
//! Clients move batches of `--batch` tuples (default 4096) through
//! `send_batch`/`next_batch` in either format, so the comparison
//! isolates the codec, not the batching.
//!
//! `cargo run -p dc_bench --release --bin server_throughput
//!     [--tuples N] [--batch B] [--format text|binary|both]
//!     [--telemetry on|off] [--overhead-guard PCT] [--json PATH]`
//!
//! `--overhead-guard PCT` additionally measures the binary passthrough
//! with telemetry off and on (best of 3 each) and exits nonzero if the
//! dctrace instrumentation — histograms, probes, and batch-trace
//! sampling at the default 1/256 rate — costs more than PCT percent
//! throughput: the CI gate on "telemetry is effectively free". `--json
//! PATH` mirrors all measured numbers to a machine-readable report.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use datacell::frame::WireFormat;
use dc_bench::{arg, arg_opt, Figure, JsonReport};
use dcserver::client::Client;
use dcserver::{bind, ServerConfig};
use monet::prelude::*;

/// Bare TCP loopback echo of n wire tuples (no engine).
fn wire_only(n: usize) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let echo = std::thread::spawn(move || {
        let (sock, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let mut writer = BufWriter::new(sock);
        let mut line = String::new();
        for _ in 0..n {
            line.clear();
            reader.read_line(&mut line).unwrap();
            writer.write_all(line.as_bytes()).unwrap();
        }
        writer.flush().unwrap();
    });
    let sock = TcpStream::connect(addr).unwrap();
    let mut writer = BufWriter::new(sock.try_clone().unwrap());
    let reader_thread = std::thread::spawn(move || {
        let mut reader = BufReader::new(sock);
        let mut line = String::new();
        for _ in 0..n {
            line.clear();
            reader.read_line(&mut line).unwrap();
        }
    });
    let start = Instant::now();
    for i in 0..n as i64 {
        writeln!(writer, "{}|{}", i, i % 1000).unwrap();
    }
    writer.flush().unwrap();
    reader_thread.join().unwrap();
    echo.join().unwrap();
    start.elapsed().as_secs_f64()
}

/// n tuples through the daemon in `format`; `selectivity_pct` of them
/// reach the emitter. Returns elapsed seconds (send-first-batch → last
/// result).
fn through_server(
    n: usize,
    selectivity_pct: i64,
    format: WireFormat,
    batch: usize,
    telemetry: bool,
) -> f64 {
    let config = ServerConfig {
        telemetry_enabled: telemetry,
        // the on-leg prices the full observability stack: the default
        // 1/256 batch-trace sampling stays enabled, so the overhead
        // guard also gates the trace-header stamp, receptor span and
        // flight-recorder writes at the shipped sampling rate
        trace_sample: 256,
        ..ServerConfig::default()
    };
    let server = bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap();
    let daemon = std::thread::spawn(move || server.serve());

    let mut c = Client::connect(addr).unwrap();
    c.create_stream("S", "(id int, v int)").unwrap();
    let sql = format!(
        "select id, v from [select * from S] as Z where Z.v < {}",
        selectivity_pct * 10 // v is uniform over 0..1000
    );
    c.register_query("q", &sql).unwrap();
    let rport = c.attach_receptor_fmt("S", 0, format).unwrap();
    let eport = c.attach_emitter_fmt("q", 0, format).unwrap();

    let expected: usize = (0..n as i64)
        .filter(|i| i % 1000 < selectivity_pct * 10)
        .count();

    let schema = Schema::from_pairs(&[("id", ValueType::Int), ("v", ValueType::Int)]);
    let mut sink = c.open_receptor_with(rport, format, &schema).unwrap();
    let mut tap = c.open_emitter_with(eport, format).unwrap();
    // CI runs this binary as a codec regression gate: a lost tuple must
    // fail loudly via this timeout, not hang the job
    tap.set_timeout(Some(std::time::Duration::from_secs(60))).unwrap();

    let reader = std::thread::spawn(move || {
        let mut got = 0usize;
        while got < expected {
            match tap.next_batch(&schema).expect("results stalled >60s (lost tuples?)") {
                Some(b) => got += b.len(),
                None => break,
            }
        }
        got
    });

    let start = Instant::now();
    let mut at = 0i64;
    while (at as usize) < n {
        let hi = (at + batch as i64).min(n as i64);
        let rel = Relation::from_columns(vec![
            ("id".into(), Column::from_ints((at..hi).collect())),
            ("v".into(), Column::from_ints((at..hi).map(|i| i % 1000).collect())),
        ])
        .unwrap();
        sink.send_batch(&rel).unwrap();
        at = hi;
    }
    sink.flush().unwrap();
    let got = reader.join().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(got, expected, "all matching tuples must arrive");

    c.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    elapsed
}

/// Best-of-`runs` passthrough throughput (tuples/s) for one telemetry
/// setting — min elapsed, to shave scheduler noise off the comparison.
fn best_passthrough(n: usize, batch: usize, runs: usize, telemetry: bool) -> f64 {
    (0..runs)
        .map(|_| through_server(n, 100, WireFormat::Binary, batch, telemetry))
        .fold(f64::INFINITY, f64::min)
        .recip()
        * n as f64
}

fn main() {
    let n: usize = arg("--tuples", 100_000);
    let batch: usize = arg("--batch", 4096);
    let which: String = arg("--format", "both".to_string());
    let telemetry = match arg("--telemetry", "on".to_string()).as_str() {
        "on" => true,
        "off" => false,
        other => {
            eprintln!("unknown --telemetry {other:?} (expected on|off)");
            std::process::exit(2);
        }
    };
    let formats: Vec<WireFormat> = match which.as_str() {
        "text" => vec![WireFormat::Text],
        "binary" => vec![WireFormat::Binary],
        "both" => vec![WireFormat::Text, WireFormat::Binary],
        other => {
            eprintln!("unknown --format {other:?} (expected text|binary|both)");
            std::process::exit(2);
        }
    };
    let mut report = JsonReport::new("server_throughput");
    report.param("tuples", n);
    report.param("batch", batch);
    report.param("format", &which);
    report.param("telemetry", if telemetry { "on" } else { "off" });
    let mut fig = Figure::new(
        "server_throughput",
        &["path", "format", "tuples", "elapsed_s", "tuples_per_s"],
    );
    let wire = wire_only(n);
    fig.row(vec![
        "wire only".into(),
        "text".into(),
        n.to_string(),
        format!("{wire:.3}"),
        format!("{:.0}", n as f64 / wire),
    ]);
    report.metric("wire_only_tuples_per_s", n as f64 / wire);
    let mut per_format = std::collections::HashMap::new();
    for &format in &formats {
        for (label, key, pct) in [
            ("passthrough (100%)", "passthrough", 100i64),
            ("selective (10%)", "selective", 10),
        ] {
            let elapsed = through_server(n, pct, format, batch, telemetry);
            let tput = n as f64 / elapsed;
            if pct == 100 {
                per_format.insert(format.as_str(), tput);
            }
            report.metric(&format!("{}_{key}_tuples_per_s", format.as_str()), tput);
            fig.row(vec![
                format!("datacelld {label}"),
                format.to_string(),
                n.to_string(),
                format!("{elapsed:.3}"),
                format!("{tput:.0}"),
            ]);
        }
    }
    fig.finish();
    if let (Some(t), Some(b)) = (per_format.get("text"), per_format.get("binary")) {
        println!("\nbinary/text passthrough speedup: {:.2}x", b / t);
        report.metric("binary_over_text_speedup", b / t);
    }

    // ---- telemetry overhead gate -----------------------------------------
    let mut guard_failed = false;
    if let Some(max_pct) = arg_opt("--overhead-guard") {
        let max_pct: f64 = max_pct.parse().expect("--overhead-guard takes a percentage");
        let off = best_passthrough(n, batch, 3, false);
        let on = best_passthrough(n, batch, 3, true);
        let overhead_pct = (off / on - 1.0) * 100.0;
        println!(
            "\ntelemetry overhead (binary passthrough, best of 3): \
             off {off:.0} t/s vs on {on:.0} t/s → {overhead_pct:.2}%"
        );
        report.metric("telemetry_off_tuples_per_s", off);
        report.metric("telemetry_on_tuples_per_s", on);
        report.metric("telemetry_overhead_pct", overhead_pct);
        if overhead_pct > max_pct {
            eprintln!(
                "FAIL: telemetry overhead {overhead_pct:.2}% exceeds the {max_pct}% budget"
            );
            guard_failed = true;
        }
    }
    if let Some(path) = arg_opt("--json") {
        report.write(&path);
    }
    if guard_failed {
        std::process::exit(1);
    }
}
