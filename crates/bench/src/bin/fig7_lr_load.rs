//! Figure 7 — Linear Road system load per query collection over the run.
//!
//! Panel (a) is the cumulative input count; panels (b)–(h) are the
//! per-activation processing times of collections Q1–Q7. We print one row
//! per sample window with every collection's busy time in that window.
//!
//! `cargo run -p dc-bench --release --bin fig7_lr_load \
//!     [--scale 0.05] [--duration 10800] [--window 60]`

use dc_bench::{arg, Figure};
use linearroad::driver::{run, DriverConfig};
use linearroad::gen::GenConfig;
use linearroad::validate::validate;

fn main() {
    let scale: f64 = arg("--scale", 0.05);
    let duration: i64 = arg("--duration", 10_800);
    let window: i64 = arg("--window", 60);

    let cfg = DriverConfig {
        gen: GenConfig {
            scale,
            duration_secs: duration,
            seed: 42,
            xways: 1,
            query_fraction: 0.01,
        },
        sample_every_secs: window,
    };
    let result = run(&cfg);
    println!(
        "replayed {} tuples in {:.1}s wall (scale {scale})",
        result.total_input, result.wall_secs
    );

    let mut fig = Figure::new(
        "fig7_lr_load",
        &[
            "minute",
            "tuples_in",
            "q1_ms",
            "q2_ms",
            "q3_ms",
            "q4_ms",
            "q5_ms",
            "q6_ms",
            "q7_ms",
        ],
    );
    let nsamples = result.load[0].1.len();
    let mut cumulative_in = 0usize;
    for s in 0..nsamples {
        let t = result.load[0].1[s].time_sec;
        let start = (t - window).max(0) as usize;
        let end = (t as usize).min(result.arrivals.len());
        cumulative_in += result.arrivals[start..end].iter().sum::<usize>();
        let mut row = vec![(t / 60).to_string(), cumulative_in.to_string()];
        for c in 0..7 {
            row.push(format!("{:.2}", result.load[c].1[s].busy_ms));
        }
        fig.row(row);
    }
    fig.finish();

    // per-collection totals — who dominates?
    println!("\ncollection totals:");
    for (name, samples) in &result.load {
        let total_ms: f64 = samples.iter().map(|s| s.busy_ms).sum();
        let firings: u64 = samples.iter().map(|s| s.firings).sum();
        println!("  {name}: {total_ms:9.1} ms over {firings} activations");
    }

    let report = validate(&result);
    println!("\nvalidation:\n{}", report.render());
    println!(
        "Paper shape: response times stay well under the deadlines; load \
         grows as data accumulates; Q7 (18 queries) is the most resource \
         consuming collection."
    );
}
