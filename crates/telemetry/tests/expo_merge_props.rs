//! Property tests for the exposition algebra the shard router relies
//! on. `merge_expositions` must be a commutative, associative fold over
//! per-shard expositions — the router merges shards in arbitrary order,
//! and `dccluster` chains merges when it re-merges a cached partial —
//! and everything the registry renders (histograms with overflow
//! samples, counters, plain and pre-rendered gauges, the derived
//! history gauges) must survive `parse_exposition(render(..))`.
//!
//! Only integer-valued samples are generated for the merge laws:
//! histogram bucket counts, sums and counter values are integers, and
//! f64 addition over integers this small is exact, which is what makes
//! the associativity law testable bit-for-bit.
//!
//! The vendored proptest shim has no tuple composition, so each case
//! generates one seed and derives everything from it with `StdRng`.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use dctrace::{
    merge_expositions, parse_exposition, windowed_gauges, MetricsHistory, Telemetry,
};
use proptest::prelude::*;
use proptest::{Rng, SeedableRng, StdRng};

const HISTS: [&str; 3] = ["dc_fire_micros", "dc_wal_fsync_micros", "dc_forward_dwell_micros"];
const NAMES: [&str; 3] = ["q0", "q1", "q2"];

/// One randomized shard exposition, built through the real registry so
/// the tests cover exactly the lines the daemons emit. Small name/label
/// pools force key collisions across parts — the interesting merge case.
fn exposition(rng: &mut StdRng) -> Vec<String> {
    let t = Telemetry::enabled();
    for _ in 0..rng.gen_range(0usize..6) {
        let name = HISTS[rng.gen_range(0usize..HISTS.len())];
        let q = NAMES[rng.gen_range(0usize..NAMES.len())];
        let h = t.histogram(name, &[("query", q)]).unwrap();
        for _ in 0..rng.gen_range(1usize..20) {
            h.record(rng.gen_range(0u64..1 << 30));
        }
        if rng.gen_bool(0.4) {
            // land a sample in the overflow bucket (above the highest
            // finite bound, 2^63): the render then emits every finite
            // bucket plus a +Inf count that exceeds the finite tail,
            // the shape most likely to trip a cumulative-merge bug
            h.record((1u64 << 63) + 2);
        }
    }
    for _ in 0..rng.gen_range(0usize..4) {
        let s = NAMES[rng.gen_range(0usize..NAMES.len())];
        t.counter("dc_ingest_rows_total", &[("stream", s)])
            .unwrap()
            .fetch_add(rng.gen_range(0u64..1 << 20), Ordering::Relaxed);
    }
    for _ in 0..rng.gen_range(0usize..3) {
        let s = NAMES[rng.gen_range(0usize..NAMES.len())];
        t.set_gauge("dc_basket_rows", &[("stream", s)], rng.gen_range(0u64..1 << 20) as f64);
    }
    t.render()
}

/// Parse an exposition into its `key -> value` map; order and comments
/// are presentation, the map is the meaning the laws quantify over.
fn sample_map(lines: &[String]) -> BTreeMap<String, f64> {
    parse_exposition(lines)
        .expect("merged exposition must stay parseable")
        .into_iter()
        .map(|s| (s.key(), s.value))
        .collect()
}

/// Same keys, same values — exactly while both sides fit f64's exact
/// integer range (all bucket/count/gauge values do), within 1e-12
/// relative error beyond it: an overflow-bucket sample pushes a
/// histogram `_sum` past 2^53, where f64 addition rounds and the
/// rounding direction legitimately depends on summation order.
fn equiv(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> Result<(), String> {
    if !a.keys().eq(b.keys()) {
        return Err(format!(
            "key sets differ: {:?}",
            a.keys().filter(|k| !b.contains_key(*k)).chain(
                b.keys().filter(|k| !a.contains_key(*k))
            ).collect::<Vec<_>>()
        ));
    }
    for (k, &va) in a {
        let vb = b[k];
        let ok = if va.abs() < 9.0e15 && vb.abs() < 9.0e15 {
            va == vb
        } else {
            (va - vb).abs() <= va.abs() * 1e-12
        };
        if !ok {
            return Err(format!("{k}: {va} vs {vb}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let parts: Vec<Vec<String>> = (0..3).map(|_| exposition(&mut rng)).collect();
        let forward = sample_map(&merge_expositions(&parts));
        let reversed: Vec<Vec<String>> = parts.iter().rev().cloned().collect();
        let rotated: Vec<Vec<String>> =
            vec![parts[1].clone(), parts[2].clone(), parts[0].clone()];
        let r = equiv(&forward, &sample_map(&merge_expositions(&reversed)));
        prop_assert!(r.is_ok(), "reversed merge differs: {r:?}");
        let r = equiv(&forward, &sample_map(&merge_expositions(&rotated)));
        prop_assert!(r.is_ok(), "rotated merge differs: {r:?}");
    }

    #[test]
    fn merge_is_associative(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = exposition(&mut rng);
        let b = exposition(&mut rng);
        let c = exposition(&mut rng);
        let left = merge_expositions(&[
            merge_expositions(&[a.clone(), b.clone()]),
            c.clone(),
        ]);
        let right = merge_expositions(&[
            a.clone(),
            merge_expositions(&[b.clone(), c.clone()]),
        ]);
        let flat = sample_map(&merge_expositions(&[a, b, c]));
        let r = equiv(&flat, &sample_map(&left));
        prop_assert!(r.is_ok(), "((a+b)+c) differs from (a+b+c): {r:?}");
        let r = equiv(&flat, &sample_map(&right));
        prop_assert!(r.is_ok(), "(a+(b+c)) differs from (a+b+c): {r:?}");
    }

    #[test]
    fn render_parse_roundtrips_gauge_and_history_series(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Telemetry::enabled();

        // the new process gauges, including fractional values
        let uptime = rng.gen_range(0u64..1 << 30) as f64 / 1e3;
        t.set_gauge("dc_uptime_seconds", &[], uptime);
        let rows = rng.gen_range(0u64..1 << 30) as f64;
        t.set_gauge("dc_basket_rows", &[("stream", "s")], rows);
        let score = rng.gen_range(0u64..101) as f64;
        t.set_gauge("dc_health_score", &[("shard", "0")], score);

        // the history-derived series, through the same path the
        // snapshotters use: two captured snapshots -> windowed_gauges
        // -> set_gauge_rendered with the pre-rendered label list
        let h = MetricsHistory::new(8);
        let base = rng.gen_range(0u64..1 << 20);
        let delta = rng.gen_range(1u64..1 << 20);
        h.capture(
            &[format!("dc_ingest_rows_total{{stream=\"s\"}} {base}")],
            1_000_000,
        );
        h.capture(
            &[format!("dc_ingest_rows_total{{stream=\"s\"}} {}", base + delta)],
            2_000_000,
        );
        let (prev, curr) = h.last_two().expect("two snapshots captured");
        let derived = windowed_gauges(&prev, &curr);
        prop_assert_eq!(derived.len(), 1, "one ingest-rate series expected");
        for s in &derived {
            t.set_gauge_rendered("dc_ingest_rate", s.labels.clone(), s.value);
        }

        // a histogram with an overflow sample rides along so the full
        // render (not just the gauge section) must stay parseable
        let fire = t.histogram("dc_fire_micros", &[("query", "q")]).unwrap();
        fire.record(rng.gen_range(0u64..1 << 20));
        fire.record((1u64 << 63) + 2);

        let rendered = t.render();
        let map = sample_map(&rendered);
        prop_assert_eq!(map.get("dc_uptime_seconds").copied(), Some(uptime));
        prop_assert_eq!(
            map.get("dc_basket_rows{stream=\"s\"}").copied(),
            Some(rows)
        );
        prop_assert_eq!(
            map.get("dc_health_score{shard=\"0\"}").copied(),
            Some(score)
        );
        prop_assert_eq!(
            map.get("dc_ingest_rate{stream=\"s\"}").copied(),
            Some(derived[0].value),
            "derived rate must survive render->parse exactly"
        );
        prop_assert_eq!(
            map.get("dc_fire_micros_count{query=\"q\"}").copied(),
            Some(2.0)
        );

        // and the rendered body must itself merge cleanly (the router
        // feeds shard renders straight into merge_expositions)
        let doubled = sample_map(&merge_expositions(&[rendered.clone(), rendered]));
        prop_assert_eq!(
            doubled.get("dc_fire_micros_count{query=\"q\"}").copied(),
            Some(4.0)
        );
    }
}
