//! The query flight recorder — a bounded ring of recent structured
//! events, dumpable and live-streamable.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use crate::now_micros;

/// Events the ring holds before dropping oldest.
pub const TRACE_RING_CAP: usize = 1024;

/// One recorded pipeline event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic per-recorder sequence number.
    pub seq: u64,
    /// Process-relative timestamp, microseconds ([`now_micros`]).
    pub t_micros: u64,
    /// Event kind — `fire_start`, `fire_end`, `reexecute`,
    /// `backpressure_wait`, `compaction`, `coalesce`,
    /// `forward_saturation`, ...
    pub kind: &'static str,
    /// The continuous query involved, when the event has one (the
    /// `TRACE DUMP QUERY <name>` / `TRACE QUERY <name> ON` filter key).
    pub query: Option<String>,
    /// Free-form `k=v` detail payload (single line).
    pub detail: String,
}

impl TraceEvent {
    /// One-line wire rendering: `seq=.. t_micros=.. kind=.. [query=..] <detail>`.
    pub fn render(&self) -> String {
        let mut line = format!("seq={} t_micros={} kind={}", self.seq, self.t_micros, self.kind);
        if let Some(q) = &self.query {
            line.push_str(&format!(" query={q}"));
        }
        if !self.detail.is_empty() {
            line.push(' ');
            line.push_str(&self.detail);
        }
        line
    }

    fn matches(&self, query: Option<&str>) -> bool {
        match query {
            None => true,
            Some(q) => self.query.as_deref() == Some(q),
        }
    }
}

/// A live subscriber: rendered events matching `filter` are pushed into
/// `tx` as they are recorded.
struct Tap {
    filter: Option<String>,
    tx: Sender<String>,
}

/// Fixed-size ring buffer of [`TraceEvent`]s plus a dynamic set of live
/// taps. `record` takes one short mutex — events are per-firing /
/// per-backpressure-wait, not per-tuple, so this is far off the hot
/// path.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<TraceEvent>>,
    cap: usize,
    seq: AtomicU64,
    taps: Mutex<Vec<Tap>>,
}

impl FlightRecorder {
    pub fn new(cap: usize) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(cap.min(TRACE_RING_CAP))),
            cap: cap.max(1),
            seq: AtomicU64::new(0),
            taps: Mutex::new(Vec::new()),
        })
    }

    /// Record one event (oldest dropped beyond the cap); live taps with
    /// a matching filter receive the rendered line, dead taps are
    /// reaped.
    pub fn record(&self, kind: &'static str, query: Option<&str>, detail: String) {
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_micros: now_micros(),
            kind,
            query: query.map(str::to_string),
            detail,
        };
        {
            let mut taps = self.taps.lock().unwrap();
            if !taps.is_empty() {
                let mut line: Option<String> = None;
                taps.retain(|tap| {
                    if !event.matches(tap.filter.as_deref()) {
                        return true;
                    }
                    let rendered = line.get_or_insert_with(|| event.render()).clone();
                    tap.tx.send(rendered).is_ok()
                });
            }
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Rendered events currently in the ring, oldest first, optionally
    /// filtered to one query.
    pub fn dump(&self, query: Option<&str>) -> Vec<String> {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.matches(query))
            .map(TraceEvent::render)
            .collect()
    }

    /// Structured copies of the events currently in the ring, oldest
    /// first — the span-tree reconstruction input.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events recorded so far (lifetime, not ring occupancy).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Attach a live tap: future events matching `filter` (None = all)
    /// arrive rendered on the returned channel.
    pub fn subscribe(&self, filter: Option<String>) -> Receiver<String> {
        let (tx, rx) = channel();
        self.taps.lock().unwrap().push(Tap { filter, tx });
        rx
    }

    /// Drop taps whose filter matches `filter` exactly (None = drop
    /// all) — subscribers drain what they already received, then their
    /// channel ends. Returns how many taps were closed.
    pub fn close_taps(&self, filter: Option<&str>) -> usize {
        let mut taps = self.taps.lock().unwrap();
        let before = taps.len();
        match filter {
            None => taps.clear(),
            Some(f) => taps.retain(|t| t.filter.as_deref() != Some(f)),
        }
        before - taps.len()
    }

    pub fn tap_count(&self) -> usize {
        self.taps.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let r = FlightRecorder::new(4);
        for i in 0..6 {
            r.record("fire_start", Some("q"), format!("i={i}"));
        }
        let dump = r.dump(None);
        assert_eq!(dump.len(), 4);
        assert!(dump[0].contains("seq=2 "), "{:?}", dump[0]);
        assert!(dump[0].contains("i=2"));
        assert!(dump[3].contains("i=5"));
        assert_eq!(r.recorded(), 6);
    }

    #[test]
    fn dump_filters_by_query() {
        let r = FlightRecorder::new(16);
        r.record("fire_end", Some("a"), "rows=1".into());
        r.record("fire_end", Some("b"), "rows=2".into());
        r.record("compaction", None, "rows=3".into());
        assert_eq!(r.dump(Some("a")).len(), 1);
        assert_eq!(r.dump(Some("b")).len(), 1);
        assert_eq!(r.dump(None).len(), 3);
        assert!(r.dump(Some("a"))[0].contains("query=a"));
    }

    #[test]
    fn taps_stream_matching_events_live() {
        let r = FlightRecorder::new(16);
        let all = r.subscribe(None);
        let only_a = r.subscribe(Some("a".into()));
        r.record("fire_start", Some("a"), String::new());
        r.record("fire_start", Some("b"), String::new());
        assert!(all.try_recv().unwrap().contains("query=a"));
        assert!(all.try_recv().unwrap().contains("query=b"));
        assert!(only_a.try_recv().unwrap().contains("query=a"));
        assert!(only_a.try_recv().is_err(), "filtered tap sees only its query");
        assert_eq!(r.tap_count(), 2);
        assert_eq!(r.close_taps(Some("a")), 1);
        assert_eq!(r.tap_count(), 1);
        r.close_taps(None);
        assert_eq!(r.tap_count(), 0);
    }

    #[test]
    fn dead_taps_are_reaped_on_record() {
        let r = FlightRecorder::new(16);
        let rx = r.subscribe(None);
        drop(rx);
        r.record("fire_start", None, String::new());
        assert_eq!(r.tap_count(), 0);
    }
}
