//! Distributed batch-trace spans.
//!
//! A sampled batch carries a trace header (batch id + origin timestamp)
//! on its wire frames; every hop it passes — receptor decode, forwarder
//! queue dwell, WAL append, basket dwell, fire, emitter write — records
//! a `kind=span` event into the process flight recorder with a
//! `batch=<id> hop=<name> dur_micros=<d>` detail. [`render_spans`]
//! regroups those events into the per-batch span trees served by
//! `TRACE SPANS [BATCH <id>]`.
//!
//! Some hops (the WAL append inside the storage crate) sit below layers
//! that know nothing about tracing; they learn the active batch id from
//! a thread-local set by the receptor around the basket append.

use std::cell::Cell;

use crate::recorder::TraceEvent;
use crate::registry::Telemetry;

thread_local! {
    /// Batch id of the traced batch the current thread is appending
    /// (0 = none).
    static CURRENT_BATCH: Cell<u64> = const { Cell::new(0) };
}

/// Mark the current thread as appending traced batch `batch`.
pub fn set_current(batch: u64) {
    CURRENT_BATCH.with(|c| c.set(batch));
}

/// Clear the thread's trace context.
pub fn clear_current() {
    CURRENT_BATCH.with(|c| c.set(0));
}

/// The batch id set by [`set_current`] (0 = no traced batch in flight
/// on this thread).
pub fn current_batch() -> u64 {
    CURRENT_BATCH.with(|c| c.get())
}

impl Telemetry {
    /// Record one span: `hop` of traced batch `batch` took
    /// `dur_micros`. `extra` is appended verbatim to the detail
    /// (`k=v` pairs, may be empty); no-op on a disabled handle.
    pub fn span(
        &self,
        hop: &'static str,
        batch: u64,
        query: Option<&str>,
        dur_micros: u64,
        extra: &str,
    ) {
        let Some(r) = self.recorder() else {
            return;
        };
        let mut detail = format!("batch={batch} hop={hop} dur_micros={dur_micros}");
        if !extra.is_empty() {
            detail.push(' ');
            detail.push_str(extra);
        }
        r.record("span", query, detail);
    }
}

/// Regroup `kind=span` events into per-batch trees: one
/// `batch <id> spans=<n>` header per batch (order of first appearance,
/// i.e. oldest first) followed by its spans in recording order, each as
/// `  t_micros=<t> hop=<hop> dur_micros=<d> [..] [query=<q>]`.
/// `batch` filters to one id.
pub fn render_spans(events: &[TraceEvent], batch: Option<u64>) -> Vec<String> {
    let mut groups: Vec<(u64, Vec<String>)> = Vec::new();
    for e in events {
        if e.kind != "span" {
            continue;
        }
        let Some(rest) = e.detail.strip_prefix("batch=") else {
            continue;
        };
        let (id_str, tail) = rest.split_once(' ').unwrap_or((rest, ""));
        let Ok(id) = id_str.parse::<u64>() else {
            continue;
        };
        if batch.is_some_and(|want| want != id) {
            continue;
        }
        let mut line = format!("  t_micros={} {tail}", e.t_micros);
        if let Some(q) = &e.query {
            line.push_str(&format!(" query={q}"));
        }
        match groups.iter_mut().find(|(b, _)| *b == id) {
            Some((_, lines)) => lines.push(line),
            None => groups.push((id, vec![line])),
        }
    }
    let mut out = Vec::new();
    for (id, lines) in groups {
        out.push(format!("batch {id} spans={}", lines.len()));
        out.extend(lines);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_local_context_round_trips() {
        assert_eq!(current_batch(), 0);
        set_current(42);
        assert_eq!(current_batch(), 42);
        clear_current();
        assert_eq!(current_batch(), 0);
        // per-thread: another thread sees its own context
        set_current(7);
        let other = std::thread::spawn(current_batch).join().unwrap();
        assert_eq!(other, 0);
        clear_current();
    }

    #[test]
    fn spans_group_into_per_batch_trees() {
        let t = Telemetry::enabled();
        t.span("receptor", 10, None, 5, "stream=s");
        t.span("basket_dwell", 10, Some("q"), 100, "");
        t.span("receptor", 11, None, 6, "stream=s");
        t.span("fire", 10, Some("q"), 40, "");
        let r = t.recorder().unwrap();
        // non-span events are ignored by the reconstruction
        r.record("fire_end", Some("q"), "rows_out=1".into());

        let all = render_spans(&r.events(), None);
        assert_eq!(all[0], "batch 10 spans=3");
        assert!(all[1].contains("hop=receptor") && all[1].contains("dur_micros=5"));
        assert!(all[1].contains("stream=s"));
        assert!(all[2].contains("hop=basket_dwell") && all[2].contains("query=q"));
        assert!(all[3].contains("hop=fire"));
        assert_eq!(all[4], "batch 11 spans=1");
        assert_eq!(all.len(), 6);

        let one = render_spans(&r.events(), Some(11));
        assert_eq!(one.len(), 2);
        assert_eq!(one[0], "batch 11 spans=1");

        assert!(render_spans(&r.events(), Some(999)).is_empty());
    }

    #[test]
    fn span_on_disabled_handle_is_a_noop() {
        Telemetry::disabled().span("receptor", 1, None, 1, "");
    }
}
