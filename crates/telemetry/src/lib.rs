//! # dctrace — latency telemetry for the DataCell pipeline
//!
//! A low-overhead, lock-light metrics and tracing layer. Three pieces:
//!
//! * **[`Histogram`]** — a fixed-layout log-bucketed (HDR-style)
//!   latency histogram: 64 power-of-two buckets plus an overflow
//!   bucket, all plain atomic counters. `record` is one index
//!   computation and three relaxed atomic adds — cheap enough for the
//!   firing hot path. Snapshots quantile (p50/p99), merge bucket-wise
//!   (the cluster aggregation primitive) and render as Prometheus
//!   `_bucket`/`_sum`/`_count` series.
//! * **[`Telemetry`]** — the handle threaded through the engine. A
//!   disabled handle is a `None` and every probe constructor
//!   short-circuits, so the hot path pays one branch when telemetry is
//!   off and one atomic add per event when on. The handle owns a
//!   registry of named metrics ([`Telemetry::render`] emits the whole
//!   exposition) and the process [`FlightRecorder`].
//! * **[`FlightRecorder`]** — a fixed-size ring of recent structured
//!   [`TraceEvent`]s (firing start/end, backpressure waits,
//!   compactions, re-executes, coalescing, forwarder saturation),
//!   dumpable (`TRACE DUMP`) and streamable live to subscriber taps
//!   (`TRACE QUERY <name> ON`).
//!
//! Probes ([`BasketProbe`], [`FireProbe`], [`EmitterProbe`]) bundle the
//! histograms + counters one instrumented object needs, so the engine
//! stores a single `Option<Arc<...>>` per basket/factory/emitter.
//!
//! The exposition side includes a tiny parser ([`parse_exposition`])
//! and a series-wise merge ([`merge_expositions`]) — summing
//! `_bucket` samples of identical label sets is exactly the bucket-wise
//! histogram add the shard router needs.
//!
//! On top of those primitives sit three cluster-observability layers:
//! [`span`] (distributed batch tracing — sampled batches carry a trace
//! header on the wire and every hop records a `span` event,
//! reconstructable via `TRACE SPANS`), [`tsdb`] (a bounded ring of
//! metrics snapshots powering `METRICS HISTORY` and windowed derived
//! gauges), and [`health`] (per-node health scoring from windowed
//! signals, the substrate for the router's `dc_health_score{shard}`).

mod expo;
pub mod health;
mod hist;
mod probe;
mod recorder;
mod registry;
pub mod span;
pub mod tsdb;

pub use expo::{merge_expositions, parse_exposition, Sample};
pub use health::HealthReport;
pub use hist::{bucket_bound, bucket_index, HistSnapshot, Histogram, BUCKETS};
pub use probe::{BasketProbe, EmitterProbe, FireProbe, DELTA_FALLBACK_REASONS};
pub use recorder::{FlightRecorder, TraceEvent, TRACE_RING_CAP};
pub use registry::Telemetry;
pub use span::render_spans;
pub use tsdb::{windowed_gauges, MetricsHistory, Snapshot};

use std::sync::OnceLock;
use std::time::Instant;

/// Process-relative monotonic clock, microseconds. Never returns 0, so
/// `0` can mean "unset" in watermark slots.
pub fn now_micros() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    (START.get_or_init(Instant::now).elapsed().as_micros() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_micros_is_monotonic_and_nonzero() {
        let a = now_micros();
        let b = now_micros();
        assert!(a >= 1);
        assert!(b >= a);
    }
}
