//! The `Telemetry` handle and metric registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::recorder::{FlightRecorder, TRACE_RING_CAP};

/// A registered series: metric name plus rendered label list (without
/// braces), e.g. `("dc_fire_micros", "query=\"hot\"")`.
type Key = (&'static str, String);

struct Inner {
    hists: Mutex<Vec<(Key, Arc<Histogram>)>>,
    counters: Mutex<Vec<(Key, Arc<AtomicU64>)>>,
    recorder: Arc<FlightRecorder>,
}

/// The handle threaded through the pipeline. Cloning shares the
/// registry. A disabled handle carries no state: every accessor returns
/// `None`, so instrumented code pays one branch (`Option` check on a
/// stored probe) when telemetry is off.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

/// Render a label set as Prometheus `k="v"` pairs joined by commas.
/// Label values are escaped per the exposition format.
pub(crate) fn render_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| {
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect::<Vec<_>>()
        .join(",")
}

impl Telemetry {
    /// A live handle with an empty registry and a fresh flight
    /// recorder.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                hists: Mutex::new(Vec::new()),
                counters: Mutex::new(Vec::new()),
                recorder: FlightRecorder::new(TRACE_RING_CAP),
            })),
        }
    }

    /// The no-op handle: every accessor returns `None`.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or fetch) the histogram for `name{labels}`. `None`
    /// when disabled — callers keep the `Arc` and record lock-free.
    pub fn histogram(&self, name: &'static str, labels: &[(&str, &str)]) -> Option<Arc<Histogram>> {
        let inner = self.inner.as_ref()?;
        let key = (name, render_labels(labels));
        let mut hists = inner.hists.lock().unwrap();
        if let Some((_, h)) = hists.iter().find(|(k, _)| *k == key) {
            return Some(Arc::clone(h));
        }
        let h = Histogram::new();
        hists.push((key, Arc::clone(&h)));
        Some(h)
    }

    /// Register (or fetch) the counter for `name{labels}`.
    pub fn counter(&self, name: &'static str, labels: &[(&str, &str)]) -> Option<Arc<AtomicU64>> {
        let inner = self.inner.as_ref()?;
        let key = (name, render_labels(labels));
        let mut counters = inner.counters.lock().unwrap();
        if let Some((_, c)) = counters.iter().find(|(k, _)| *k == key) {
            return Some(Arc::clone(c));
        }
        let c = Arc::new(AtomicU64::new(0));
        counters.push((key, Arc::clone(&c)));
        Some(c)
    }

    /// The process flight recorder (`None` when disabled).
    pub fn recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.recorder))
    }

    /// Snapshot of one histogram's state by name + label subset match
    /// (every pair in `labels` must appear in the series). Used by
    /// `STATS` to summarize p50/p99/max without re-parsing exposition.
    pub fn hist_snapshot(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
    ) -> Option<crate::HistSnapshot> {
        let inner = self.inner.as_ref()?;
        let want = render_labels(labels);
        let hists = inner.hists.lock().unwrap();
        let (_, h) = hists.iter().find(|((n, l), _)| *n == name && *l == want)?;
        Some(h.snapshot())
    }

    /// Render the whole registry as Prometheus text exposition:
    /// `# TYPE` comment per metric name, histogram series
    /// (`_bucket`/`_sum`/`_count`), then counters. Deterministic order:
    /// registration order grouped by metric name.
    pub fn render(&self) -> Vec<String> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let hists = inner.hists.lock().unwrap();
        let mut typed: Vec<&'static str> = Vec::new();
        for ((name, labels), h) in hists.iter() {
            if !typed.contains(name) {
                typed.push(name);
                out.push(format!("# TYPE {name} histogram"));
            }
            h.snapshot().render_into(&mut out, name, labels);
        }
        drop(hists);
        let counters = inner.counters.lock().unwrap();
        let mut typed: Vec<&'static str> = Vec::new();
        for ((name, labels), c) in counters.iter() {
            if !typed.contains(name) {
                typed.push(name);
                out.push(format!("# TYPE {name} counter"));
            }
            let suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            out.push(format!("{name}{suffix} {}", c.load(Ordering::Relaxed)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_returns_none_everywhere() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(t.histogram("m", &[]).is_none());
        assert!(t.counter("c", &[]).is_none());
        assert!(t.recorder().is_none());
        assert!(t.render().is_empty());
    }

    #[test]
    fn registry_dedups_series_and_renders() {
        let t = Telemetry::enabled();
        let h1 = t.histogram("dc_fire_micros", &[("query", "hot")]).unwrap();
        let h2 = t.histogram("dc_fire_micros", &[("query", "hot")]).unwrap();
        assert!(Arc::ptr_eq(&h1, &h2), "same series, same histogram");
        h1.record(3);
        let c = t.counter("dc_reexecutes_total", &[("query", "hot")]).unwrap();
        c.fetch_add(2, Ordering::Relaxed);
        let body = t.render();
        assert!(body.contains(&"# TYPE dc_fire_micros histogram".to_string()), "{body:?}");
        assert!(
            body.contains(&"dc_fire_micros_count{query=\"hot\"} 1".to_string()),
            "{body:?}"
        );
        assert!(
            body.contains(&"dc_reexecutes_total{query=\"hot\"} 2".to_string()),
            "{body:?}"
        );
        let snap = t.hist_snapshot("dc_fire_micros", &[("query", "hot")]).unwrap();
        assert_eq!(snap.count, 1);
        assert!(t.hist_snapshot("dc_fire_micros", &[("query", "cold")]).is_none());
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(render_labels(&[("k", "a\"b\\c")]), "k=\"a\\\"b\\\\c\"");
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.counter("c", &[]).unwrap().fetch_add(1, Ordering::Relaxed);
        assert_eq!(u.render().last().unwrap(), "c 1");
    }
}
