//! The `Telemetry` handle and metric registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::recorder::{FlightRecorder, TRACE_RING_CAP};

/// A registered series: metric name plus rendered label list (without
/// braces), e.g. `("dc_fire_micros", "query=\"hot\"")`.
type Key = (&'static str, String);

struct Inner {
    hists: Mutex<Vec<(Key, Arc<Histogram>)>>,
    counters: Mutex<Vec<(Key, Arc<AtomicU64>)>>,
    /// Gauges store `f64::to_bits` so they stay plain atomics.
    gauges: Mutex<Vec<(Key, Arc<AtomicU64>)>>,
    /// Per-query emit marks: the batch id of the last traced firing,
    /// shared between the fire probe (producer) and emitter probes
    /// (consumer) so a trace follows a batch across the pump thread.
    marks: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    recorder: Arc<FlightRecorder>,
    /// Stamp every Nth ingested batch with a trace header (0 = off).
    sample_every: AtomicU64,
    sample_counter: AtomicU64,
}

/// Process-wide batch-id allocator: the low 32 bits count up, the high
/// 32 bits carry the pid, so ids from different processes (router vs
/// remote shard) never collide and `0` is never issued.
static NEXT_BATCH: AtomicU64 = AtomicU64::new(1);

fn alloc_batch_id() -> u64 {
    ((std::process::id() as u64) << 32) | (NEXT_BATCH.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff)
}

/// The handle threaded through the pipeline. Cloning shares the
/// registry. A disabled handle carries no state: every accessor returns
/// `None`, so instrumented code pays one branch (`Option` check on a
/// stored probe) when telemetry is off.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

/// Render a label set as Prometheus `k="v"` pairs joined by commas.
/// Label values are escaped per the exposition format.
pub(crate) fn render_labels(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| {
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect::<Vec<_>>()
        .join(",")
}

impl Telemetry {
    /// A live handle with an empty registry and a fresh flight
    /// recorder of the default [`TRACE_RING_CAP`].
    pub fn enabled() -> Telemetry {
        Telemetry::enabled_with_ring(TRACE_RING_CAP)
    }

    /// [`Telemetry::enabled`] with an explicit flight-recorder ring
    /// capacity (the `--trace-ring` knob).
    pub fn enabled_with_ring(ring_cap: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                hists: Mutex::new(Vec::new()),
                counters: Mutex::new(Vec::new()),
                gauges: Mutex::new(Vec::new()),
                marks: Mutex::new(Vec::new()),
                recorder: FlightRecorder::new(ring_cap),
                sample_every: AtomicU64::new(0),
                sample_counter: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op handle: every accessor returns `None`.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or fetch) the histogram for `name{labels}`. `None`
    /// when disabled — callers keep the `Arc` and record lock-free.
    pub fn histogram(&self, name: &'static str, labels: &[(&str, &str)]) -> Option<Arc<Histogram>> {
        let inner = self.inner.as_ref()?;
        let key = (name, render_labels(labels));
        let mut hists = inner.hists.lock().unwrap();
        if let Some((_, h)) = hists.iter().find(|(k, _)| *k == key) {
            return Some(Arc::clone(h));
        }
        let h = Histogram::new();
        hists.push((key, Arc::clone(&h)));
        Some(h)
    }

    /// Register (or fetch) the counter for `name{labels}`.
    pub fn counter(&self, name: &'static str, labels: &[(&str, &str)]) -> Option<Arc<AtomicU64>> {
        let inner = self.inner.as_ref()?;
        let key = (name, render_labels(labels));
        let mut counters = inner.counters.lock().unwrap();
        if let Some((_, c)) = counters.iter().find(|(k, _)| *k == key) {
            return Some(Arc::clone(c));
        }
        let c = Arc::new(AtomicU64::new(0));
        counters.push((key, Arc::clone(&c)));
        Some(c)
    }

    /// Register (or fetch) the gauge for `name{labels}`. The atomic
    /// holds `f64::to_bits` of the gauge value.
    pub fn gauge(&self, name: &'static str, labels: &[(&str, &str)]) -> Option<Arc<AtomicU64>> {
        self.gauge_rendered(name, render_labels(labels))
    }

    /// [`Telemetry::gauge`] with a pre-rendered label list (as produced
    /// by the exposition parser) — the snapshotter uses this to set
    /// derived series whose labels come back out of parsed samples.
    pub fn gauge_rendered(&self, name: &'static str, labels: String) -> Option<Arc<AtomicU64>> {
        let inner = self.inner.as_ref()?;
        let key = (name, labels);
        let mut gauges = inner.gauges.lock().unwrap();
        if let Some((_, g)) = gauges.iter().find(|(k, _)| *k == key) {
            return Some(Arc::clone(g));
        }
        let g = Arc::new(AtomicU64::new(0f64.to_bits()));
        gauges.push((key, Arc::clone(&g)));
        Some(g)
    }

    /// Set a gauge to `v` (registering it on first use).
    pub fn set_gauge(&self, name: &'static str, labels: &[(&str, &str)], v: f64) {
        if let Some(g) = self.gauge(name, labels) {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// [`Telemetry::set_gauge`] with a pre-rendered label list.
    pub fn set_gauge_rendered(&self, name: &'static str, labels: String, v: f64) {
        if let Some(g) = self.gauge_rendered(name, labels) {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Per-query emit mark — the shared slot carrying a traced batch id
    /// from the firing to the emitter write (`None` when disabled).
    pub fn emit_mark(&self, query: &str) -> Option<Arc<AtomicU64>> {
        let inner = self.inner.as_ref()?;
        let mut marks = inner.marks.lock().unwrap();
        if let Some((_, m)) = marks.iter().find(|(q, _)| q == query) {
            return Some(Arc::clone(m));
        }
        let m = Arc::new(AtomicU64::new(0));
        marks.push((query.to_string(), Arc::clone(&m)));
        Some(m)
    }

    /// Stamp every `every`th ingested batch with a trace header
    /// (0 disables sampling).
    pub fn set_trace_sampling(&self, every: u64) {
        if let Some(inner) = self.inner.as_ref() {
            inner.sample_every.store(every, Ordering::Relaxed);
        }
    }

    /// The configured sampling rate (0 = off / disabled handle).
    pub fn trace_sampling(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.sample_every.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Count one ingested batch against the sampling rate; returns a
    /// fresh process-unique batch id when this batch should be traced.
    /// One relaxed add on the untraced path.
    #[inline]
    pub fn maybe_sample(&self) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let every = inner.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return None;
        }
        let n = inner.sample_counter.fetch_add(1, Ordering::Relaxed);
        if n % every == 0 {
            Some(alloc_batch_id())
        } else {
            None
        }
    }

    /// The process flight recorder (`None` when disabled).
    pub fn recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.recorder))
    }

    /// Snapshot of one histogram's state by name + label subset match
    /// (every pair in `labels` must appear in the series). Used by
    /// `STATS` to summarize p50/p99/max without re-parsing exposition.
    pub fn hist_snapshot(
        &self,
        name: &'static str,
        labels: &[(&str, &str)],
    ) -> Option<crate::HistSnapshot> {
        let inner = self.inner.as_ref()?;
        let want = render_labels(labels);
        let hists = inner.hists.lock().unwrap();
        let (_, h) = hists.iter().find(|((n, l), _)| *n == name && *l == want)?;
        Some(h.snapshot())
    }

    /// Render the whole registry as Prometheus text exposition:
    /// `# TYPE` comment per metric name, histogram series
    /// (`_bucket`/`_sum`/`_count`), then counters. Deterministic order:
    /// registration order grouped by metric name.
    pub fn render(&self) -> Vec<String> {
        let Some(inner) = self.inner.as_ref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let hists = inner.hists.lock().unwrap();
        let mut typed: Vec<&'static str> = Vec::new();
        for ((name, labels), h) in hists.iter() {
            if !typed.contains(name) {
                typed.push(name);
                out.push(format!("# TYPE {name} histogram"));
            }
            h.snapshot().render_into(&mut out, name, labels);
        }
        drop(hists);
        let counters = inner.counters.lock().unwrap();
        let mut typed: Vec<&'static str> = Vec::new();
        for ((name, labels), c) in counters.iter() {
            if !typed.contains(name) {
                typed.push(name);
                out.push(format!("# TYPE {name} counter"));
            }
            let suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            out.push(format!("{name}{suffix} {}", c.load(Ordering::Relaxed)));
        }
        drop(counters);
        let gauges = inner.gauges.lock().unwrap();
        let mut typed: Vec<&'static str> = Vec::new();
        for ((name, labels), g) in gauges.iter() {
            if !typed.contains(name) {
                typed.push(name);
                out.push(format!("# TYPE {name} gauge"));
            }
            let suffix = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{labels}}}")
            };
            let v = f64::from_bits(g.load(Ordering::Relaxed));
            if v == v.trunc() && v.abs() < 9e15 {
                out.push(format!("{name}{suffix} {}", v as i64));
            } else {
                out.push(format!("{name}{suffix} {v}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_returns_none_everywhere() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(t.histogram("m", &[]).is_none());
        assert!(t.counter("c", &[]).is_none());
        assert!(t.gauge("g", &[]).is_none());
        assert!(t.emit_mark("q").is_none());
        assert!(t.recorder().is_none());
        assert!(t.maybe_sample().is_none());
        assert!(t.render().is_empty());
    }

    #[test]
    fn gauges_render_after_counters_with_type_comment() {
        let t = Telemetry::enabled();
        t.counter("c_total", &[]).unwrap().fetch_add(1, Ordering::Relaxed);
        t.set_gauge("dc_health_score", &[("shard", "0")], 80.0);
        t.set_gauge("dc_ingest_rate", &[("stream", "s")], 12.5);
        let body = t.render();
        assert!(body.contains(&"# TYPE dc_health_score gauge".to_string()), "{body:?}");
        assert!(body.contains(&"dc_health_score{shard=\"0\"} 80".to_string()), "{body:?}");
        assert!(body.contains(&"dc_ingest_rate{stream=\"s\"} 12.5".to_string()), "{body:?}");
        let ci = body.iter().position(|l| l == "c_total 1").unwrap();
        let gi = body.iter().position(|l| l.starts_with("dc_health_score{")).unwrap();
        assert!(ci < gi, "gauges render after counters");
        // gauges are register-or-fetch like the other kinds
        let g1 = t.gauge("dc_health_score", &[("shard", "0")]).unwrap();
        let g2 = t.gauge_rendered("dc_health_score", "shard=\"0\"".into()).unwrap();
        assert!(Arc::ptr_eq(&g1, &g2));
    }

    #[test]
    fn sampling_stamps_every_nth_batch_with_unique_ids() {
        let t = Telemetry::enabled();
        assert!(t.maybe_sample().is_none(), "sampling starts off");
        t.set_trace_sampling(4);
        assert_eq!(t.trace_sampling(), 4);
        let ids: Vec<Option<u64>> = (0..8).map(|_| t.maybe_sample()).collect();
        let hits: Vec<u64> = ids.iter().flatten().copied().collect();
        assert_eq!(hits.len(), 2, "{ids:?}");
        assert_ne!(hits[0], hits[1], "batch ids are unique");
        assert!(hits.iter().all(|&id| id != 0), "0 is never a batch id");
        t.set_trace_sampling(0);
        assert!(t.maybe_sample().is_none());
    }

    #[test]
    fn emit_marks_are_shared_per_query() {
        let t = Telemetry::enabled();
        let a = t.emit_mark("q").unwrap();
        let b = t.emit_mark("q").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = t.emit_mark("other").unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn registry_dedups_series_and_renders() {
        let t = Telemetry::enabled();
        let h1 = t.histogram("dc_fire_micros", &[("query", "hot")]).unwrap();
        let h2 = t.histogram("dc_fire_micros", &[("query", "hot")]).unwrap();
        assert!(Arc::ptr_eq(&h1, &h2), "same series, same histogram");
        h1.record(3);
        let c = t.counter("dc_reexecutes_total", &[("query", "hot")]).unwrap();
        c.fetch_add(2, Ordering::Relaxed);
        let body = t.render();
        assert!(body.contains(&"# TYPE dc_fire_micros histogram".to_string()), "{body:?}");
        assert!(
            body.contains(&"dc_fire_micros_count{query=\"hot\"} 1".to_string()),
            "{body:?}"
        );
        assert!(
            body.contains(&"dc_reexecutes_total{query=\"hot\"} 2".to_string()),
            "{body:?}"
        );
        let snap = t.hist_snapshot("dc_fire_micros", &[("query", "hot")]).unwrap();
        assert_eq!(snap.count, 1);
        assert!(t.hist_snapshot("dc_fire_micros", &[("query", "cold")]).is_none());
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(render_labels(&[("k", "a\"b\\c")]), "k=\"a\\\"b\\\\c\"");
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.counter("c", &[]).unwrap().fetch_add(1, Ordering::Relaxed);
        assert_eq!(u.render().last().unwrap(), "c 1");
    }
}
