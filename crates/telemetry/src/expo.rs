//! Prometheus text-exposition utilities: a small parser (enough to
//! validate and merge the format this crate emits) and a series-wise
//! merge used by the shard router to aggregate per-shard expositions.

/// One parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// Raw label list without braces (exactly as rendered), empty when
    /// the series has no labels.
    pub labels: String,
    pub value: f64,
}

impl Sample {
    /// The merge key: `name{labels}`.
    pub fn key(&self) -> String {
        if self.labels.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, self.labels)
        }
    }
}

/// Parse exposition lines into samples. `#` comment lines and blank
/// lines are skipped; any other malformed line is an error (this is the
/// validity check the smoke tests rely on).
pub fn parse_exposition<S: AsRef<str>>(lines: &[S]) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for line in lines {
        let line = line.as_ref().trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line)?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (series, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value separator: {line:?}"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("bad value in {line:?}"))?;
    let series = series.trim_end();
    let (name, labels) = match series.split_once('{') {
        None => (series, ""),
        Some((name, rest)) => {
            let labels = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated labels: {line:?}"))?;
            (name, labels)
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name: {line:?}"));
    }
    // Labels must be a comma-joined list of k="v" pairs; quotes inside
    // values are backslash-escaped by the renderer.
    if !labels.is_empty() {
        let mut rest = labels;
        loop {
            let (_k, after_eq) = rest
                .split_once("=\"")
                .ok_or_else(|| format!("bad label pair: {line:?}"))?;
            let close = find_unescaped_quote(after_eq)
                .ok_or_else(|| format!("unterminated label value: {line:?}"))?;
            rest = &after_eq[close + 1..];
            if rest.is_empty() {
                break;
            }
            rest = rest
                .strip_prefix(',')
                .ok_or_else(|| format!("bad label separator: {line:?}"))?;
        }
    }
    Ok(Sample {
        name: name.to_string(),
        labels: labels.to_string(),
        value,
    })
}

fn find_unescaped_quote(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

/// Merge expositions from several shards by summing samples that share
/// a `name{labels}` key. `# TYPE` lines are deduplicated and kept ahead
/// of the first sample of their metric; sample order follows first
/// occurrence. Summing `_bucket`/`_sum`/`_count` series is exactly the
/// bucket-wise histogram merge. Malformed lines are passed through
/// untouched (the router must not drop a shard's data on a parse
/// hiccup).
pub fn merge_expositions(parts: &[Vec<String>]) -> Vec<String> {
    // key -> (order index, line prefix i.e. series text, summed value)
    let mut order: Vec<String> = Vec::new();
    let mut merged: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut passthrough: Vec<String> = Vec::new();
    let mut comments: Vec<String> = Vec::new();
    // comment key -> insert before this sample key
    let mut comment_before: std::collections::HashMap<String, Vec<String>> =
        std::collections::HashMap::new();
    let mut pending_comments: Vec<String> = Vec::new();

    for part in parts {
        for line in part {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if trimmed.starts_with('#') {
                if !comments.contains(&trimmed.to_string()) {
                    comments.push(trimmed.to_string());
                    pending_comments.push(trimmed.to_string());
                }
                continue;
            }
            match parse_sample(trimmed) {
                Ok(s) => {
                    let key = s.key();
                    if let Some(v) = merged.get_mut(&key) {
                        *v += s.value;
                    } else {
                        order.push(key.clone());
                        merged.insert(key.clone(), s.value);
                        if !pending_comments.is_empty() {
                            comment_before.insert(key, std::mem::take(&mut pending_comments));
                        }
                    }
                    pending_comments.clear();
                }
                Err(_) => passthrough.push(trimmed.to_string()),
            }
        }
        pending_comments.clear();
    }

    let mut out = Vec::new();
    for key in order {
        if let Some(cs) = comment_before.remove(&key) {
            out.extend(cs);
        }
        let v = merged[&key];
        if v == v.trunc() && v.abs() < 9e15 {
            out.push(format!("{key} {}", v as i64));
        } else {
            out.push(format!("{key} {v}"));
        }
    }
    out.extend(passthrough);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_samples_with_and_without_labels() {
        let lines = [
            "# TYPE dc_fire_micros histogram",
            "dc_fire_micros_bucket{query=\"hot\",le=\"1\"} 2",
            "dc_fire_micros_sum{query=\"hot\"} 42",
            "dc_uptime_micros 1234",
            "",
        ];
        let samples = parse_exposition(&lines).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "dc_fire_micros_bucket");
        assert_eq!(samples[0].labels, "query=\"hot\",le=\"1\"");
        assert_eq!(samples[0].value, 2.0);
        assert_eq!(samples[2].key(), "dc_uptime_micros");
        assert_eq!(
            samples[1].key(),
            "dc_fire_micros_sum{query=\"hot\"}"
        );
    }

    #[test]
    fn parses_escaped_quotes_in_label_values() {
        let s = parse_sample("m{k=\"a\\\"b\"} 1").unwrap();
        assert_eq!(s.labels, "k=\"a\\\"b\"");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_exposition(&["no_value"]).is_err());
        assert!(parse_exposition(&["m{unterminated 1"]).is_err());
        assert!(parse_exposition(&["m{k=\"v\"} notanumber"]).is_err());
        assert!(parse_exposition(&["bad name{} 1"]).is_err());
        assert!(parse_exposition(&["m{k=v} 1"]).is_err());
    }

    #[test]
    fn merge_sums_identical_series_and_dedups_comments() {
        let a = vec![
            "# TYPE dc_fire_micros histogram".to_string(),
            "dc_fire_micros_bucket{query=\"q\",le=\"1\"} 1".to_string(),
            "dc_fire_micros_count{query=\"q\"} 1".to_string(),
        ];
        let b = vec![
            "# TYPE dc_fire_micros histogram".to_string(),
            "dc_fire_micros_bucket{query=\"q\",le=\"1\"} 2".to_string(),
            "dc_fire_micros_count{query=\"q\"} 2".to_string(),
            "dc_shard_only_total 5".to_string(),
        ];
        let merged = merge_expositions(&[a, b]);
        assert_eq!(
            merged,
            vec![
                "# TYPE dc_fire_micros histogram",
                "dc_fire_micros_bucket{query=\"q\",le=\"1\"} 3",
                "dc_fire_micros_count{query=\"q\"} 3",
                "dc_shard_only_total 5",
            ]
        );
    }

    #[test]
    fn merged_output_reparses() {
        let a = vec!["m{k=\"v\"} 1.5".to_string()];
        let b = vec!["m{k=\"v\"} 1.25".to_string()];
        let merged = merge_expositions(&[a, b]);
        let samples = parse_exposition(&merged).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].value, 2.75);
    }
}
