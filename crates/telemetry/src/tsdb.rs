//! Metrics history: a bounded ring of parsed exposition snapshots plus
//! the windowed series derived from consecutive snapshots.
//!
//! A background snapshotter on each daemon captures `METRICS` output
//! into a [`MetricsHistory`] every `--metrics-interval-ms`; the ring
//! powers `METRICS HISTORY [<series>] [LAST <n>]` and the derived
//! windowed gauges (`dc_ingest_rate{stream}`,
//! `dc_fire_p99_window_micros{query}`) that turn lifetime counters into
//! the rates the health engine and the self-tuning work need.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::expo::{parse_exposition, Sample};

/// One captured exposition: parsed samples at a point in time
/// ([`crate::now_micros`] clock).
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub at_micros: u64,
    pub samples: Vec<Sample>,
}

impl Snapshot {
    /// Value of the series with exactly this `name{labels}` key.
    pub fn value(&self, key: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.key() == key).map(|s| s.value)
    }

    /// Sum of every sample named `name` (any labels).
    pub fn sum_of(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }
}

/// The bounded snapshot ring (oldest dropped beyond `depth`).
pub struct MetricsHistory {
    ring: Mutex<VecDeque<Arc<Snapshot>>>,
    depth: usize,
}

impl MetricsHistory {
    pub fn new(depth: usize) -> MetricsHistory {
        MetricsHistory {
            ring: Mutex::new(VecDeque::new()),
            depth: depth.max(2),
        }
    }

    /// Parse one exposition and push it. Unparseable lines are skipped
    /// by the parser contract (comments/blanks); a wholly malformed
    /// exposition is dropped rather than poisoning the ring.
    pub fn capture(&self, lines: &[String], at_micros: u64) {
        let Ok(samples) = parse_exposition(lines) else {
            return;
        };
        let snap = Arc::new(Snapshot { at_micros, samples });
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.depth {
            ring.pop_front();
        }
        ring.push_back(snap);
    }

    /// Snapshots currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The two most recent snapshots (previous, current), when at least
    /// two have been captured — the windowing input.
    pub fn last_two(&self) -> Option<(Arc<Snapshot>, Arc<Snapshot>)> {
        let ring = self.ring.lock().unwrap();
        let n = ring.len();
        if n < 2 {
            return None;
        }
        Some((Arc::clone(&ring[n - 2]), Arc::clone(&ring[n - 1])))
    }

    /// Render history lines, oldest snapshot first:
    /// `t_micros=<at> <name{labels}> <value>`. `series` filters by
    /// metric name (exact) or full `name{labels}` key prefix; `last`
    /// keeps only the most recent `n` snapshots.
    pub fn render(&self, series: Option<&str>, last: Option<usize>) -> Vec<String> {
        let ring = self.ring.lock().unwrap();
        let skip = last.map_or(0, |n| ring.len().saturating_sub(n));
        let mut out = Vec::new();
        for snap in ring.iter().skip(skip) {
            for s in &snap.samples {
                if let Some(want) = series {
                    if s.name != want && !s.key().starts_with(want) {
                        continue;
                    }
                }
                let v = s.value;
                if v == v.trunc() && v.abs() < 9e15 {
                    out.push(format!("t_micros={} {} {}", snap.at_micros, s.key(), v as i64));
                } else {
                    out.push(format!("t_micros={} {} {}", snap.at_micros, s.key(), v));
                }
            }
        }
        out
    }
}

/// Strip the `le="..."` pair from a rendered label list.
fn labels_without_le(labels: &str) -> String {
    labels
        .split(',')
        .filter(|p| !p.starts_with("le=\""))
        .collect::<Vec<_>>()
        .join(",")
}

/// Numeric value of an `le` bound (`+Inf` → `u64::MAX`).
fn le_bound(labels: &str) -> Option<u64> {
    let le = labels
        .split(',')
        .find_map(|p| p.strip_prefix("le=\""))?
        .strip_suffix('"')?;
    if le == "+Inf" {
        Some(u64::MAX)
    } else {
        le.parse().ok()
    }
}

/// Windowed p99 estimates for histogram `name` between two snapshots:
/// one `(labels-without-le, p99_micros)` per label set with samples in
/// the window, from the deltas of the cumulative `_bucket` counts.
pub fn window_p99(prev: &Snapshot, curr: &Snapshot, name: &str) -> Vec<(String, u64)> {
    let bucket = format!("{name}_bucket");
    // (series labels, sorted (bound, windowed cumulative count))
    let mut groups: Vec<(String, Vec<(u64, f64)>)> = Vec::new();
    for s in curr.samples.iter().filter(|s| s.name == bucket) {
        let Some(bound) = le_bound(&s.labels) else {
            continue;
        };
        let delta = (s.value - prev.value(&s.key()).unwrap_or(0.0)).max(0.0);
        let key = labels_without_le(&s.labels);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push((bound, delta)),
            None => groups.push((key, vec![(bound, delta)])),
        }
    }
    let mut out = Vec::new();
    for (labels, mut buckets) in groups {
        buckets.sort_by_key(|&(b, _)| b);
        let Some(&(_, total)) = buckets.iter().find(|&&(b, _)| b == u64::MAX) else {
            continue;
        };
        if total <= 0.0 {
            continue;
        }
        let rank = (0.99 * total).ceil().max(1.0);
        let mut p99 = buckets.iter().rev().find(|&&(b, _)| b != u64::MAX).map_or(0, |&(b, _)| b);
        for &(bound, cum) in &buckets {
            if cum >= rank {
                p99 = if bound == u64::MAX {
                    // everything landed above the rendered finite
                    // buckets; the highest finite bound is the best
                    // available estimate
                    p99
                } else {
                    bound
                };
                break;
            }
        }
        out.push((labels, p99));
    }
    out
}

/// The derived windowed series between two consecutive snapshots:
/// `dc_ingest_rate{stream}` (rows/s from `dc_ingest_rows_total` deltas)
/// and `dc_fire_p99_window_micros{query}` (from `dc_fire_micros` bucket
/// deltas). Empty when the window is zero-width.
pub fn windowed_gauges(prev: &Snapshot, curr: &Snapshot) -> Vec<Sample> {
    let dt_secs = curr.at_micros.saturating_sub(prev.at_micros) as f64 / 1e6;
    if dt_secs <= 0.0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for s in curr.samples.iter().filter(|s| s.name == "dc_ingest_rows_total") {
        let delta = (s.value - prev.value(&s.key()).unwrap_or(0.0)).max(0.0);
        out.push(Sample {
            name: "dc_ingest_rate".to_string(),
            labels: s.labels.clone(),
            value: delta / dt_secs,
        });
    }
    for (labels, p99) in window_p99(prev, curr, "dc_fire_micros") {
        out.push(Sample {
            name: "dc_fire_p99_window_micros".to_string(),
            labels,
            value: p99 as f64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_micros: u64, lines: &[&str]) -> Snapshot {
        Snapshot {
            at_micros,
            samples: parse_exposition(lines).unwrap(),
        }
    }

    #[test]
    fn ring_is_bounded_and_renders_filtered() {
        let h = MetricsHistory::new(3);
        for i in 0..5u64 {
            h.capture(
                &[format!("dc_ingest_rows_total{{stream=\"s\"}} {}", i * 10), "other 1".to_string()],
                (i + 1) * 1_000_000,
            );
        }
        assert_eq!(h.len(), 3);
        let all = h.render(None, None);
        assert_eq!(all.len(), 6, "{all:?}");
        assert!(all[0].starts_with("t_micros=3000000 "), "oldest kept first: {all:?}");
        let filtered = h.render(Some("dc_ingest_rows_total"), Some(2));
        assert_eq!(
            filtered,
            vec![
                "t_micros=4000000 dc_ingest_rows_total{stream=\"s\"} 30",
                "t_micros=5000000 dc_ingest_rows_total{stream=\"s\"} 40",
            ]
        );
        // full-key prefix also matches
        assert_eq!(h.render(Some("dc_ingest_rows_total{stream=\"s\"}"), Some(1)).len(), 1);
        assert!(h.render(Some("nope"), None).is_empty());
    }

    #[test]
    fn malformed_exposition_is_dropped_not_poisoning() {
        let h = MetricsHistory::new(4);
        h.capture(&["not a sample at all {".to_string()], 1);
        assert_eq!(h.len(), 0);
        h.capture(&["ok 1".to_string()], 2);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn windowed_ingest_rate_from_counter_deltas() {
        let prev = snap(1_000_000, &["dc_ingest_rows_total{stream=\"s\"} 100"]);
        let curr = snap(3_000_000, &["dc_ingest_rows_total{stream=\"s\"} 400"]);
        let g = windowed_gauges(&prev, &curr);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].name, "dc_ingest_rate");
        assert_eq!(g[0].labels, "stream=\"s\"");
        assert_eq!(g[0].value, 150.0, "300 rows over 2s");
        // zero-width window → nothing
        assert!(windowed_gauges(&curr, &curr).is_empty());
    }

    #[test]
    fn windowed_fire_p99_from_bucket_deltas() {
        let prev = snap(
            1_000_000,
            &[
                "dc_fire_micros_bucket{query=\"q\",le=\"1\"} 100",
                "dc_fire_micros_bucket{query=\"q\",le=\"2\"} 100",
                "dc_fire_micros_bucket{query=\"q\",le=\"+Inf\"} 100",
                "dc_fire_micros_count{query=\"q\"} 100",
            ],
        );
        // in the window: 99 firings at ≤1µs, 1 at ≤2µs → p99 = 1
        let curr = snap(
            2_000_000,
            &[
                "dc_fire_micros_bucket{query=\"q\",le=\"1\"} 199",
                "dc_fire_micros_bucket{query=\"q\",le=\"2\"} 200",
                "dc_fire_micros_bucket{query=\"q\",le=\"+Inf\"} 200",
                "dc_fire_micros_count{query=\"q\"} 200",
            ],
        );
        let p99 = window_p99(&prev, &curr, "dc_fire_micros");
        assert_eq!(p99, vec![("query=\"q\"".to_string(), 1)]);
        // the lifetime p99 would be dominated by history; windowed one
        // is also surfaced as a derived gauge
        let g = windowed_gauges(&prev, &curr);
        assert!(g
            .iter()
            .any(|s| s.name == "dc_fire_p99_window_micros" && s.value == 1.0));
        // no firings in the window → no sample
        let same = Snapshot { at_micros: 3_000_000, samples: curr.samples.clone() };
        assert!(window_p99(&curr, &same, "dc_fire_micros").is_empty());
    }
}
