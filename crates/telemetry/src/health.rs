//! The health engine: per-node scoring from windowed metrics snapshots.
//!
//! A node starts at score 100 and loses points for degradation signals
//! computed between the two most recent metrics snapshots:
//!
//! * **ingest_stalled** (−30): the node has ingested rows before but
//!   accepted none in the current window.
//! * **reexecute_rate** (−20): more than 10% of the window's firings
//!   re-executed (snapshot churn under contention).
//! * **forward_saturation** (−20): a forwarder queue saturated during
//!   the window (router-side signal).
//! * **wal_fsync_slow** (−20): windowed WAL fsync p99 above 50ms.
//!
//! The router overlays **unreachable** (score 0) for shards whose
//! control connection fails, and republishes every shard's score as
//! `dc_health_score{shard}` gauges — the liveness substrate shard
//! failover will key on.

use crate::tsdb::{window_p99, Snapshot};

/// Score penalty and threshold constants (documented in README).
pub const PENALTY_INGEST_STALL: u64 = 30;
pub const PENALTY_REEXECUTE: u64 = 20;
pub const PENALTY_FORWARD_SATURATION: u64 = 20;
pub const PENALTY_WAL_FSYNC: u64 = 20;
/// Windowed re-execute/firing ratio above this degrades the score.
pub const REEXECUTE_RATIO_MAX: f64 = 0.10;
/// Windowed WAL fsync p99 above this (µs) degrades the score.
pub const WAL_FSYNC_P99_MAX_MICROS: u64 = 50_000;

/// One node's health: score (0..=100), degradation reasons, and the
/// raw windowed signals behind them.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    pub score: u64,
    pub reasons: Vec<&'static str>,
    /// `(name, value)` signal pairs, rendered as `signal name=value`.
    pub signals: Vec<(String, String)>,
}

impl HealthReport {
    /// The warm-up report (fewer than two snapshots yet).
    pub fn healthy() -> HealthReport {
        HealthReport {
            score: 100,
            reasons: Vec::new(),
            signals: Vec::new(),
        }
    }

    /// Wire rendering: `score=<n>`, `reasons=<csv|->`, then one
    /// `signal <name>=<value>` line per signal.
    pub fn render(&self) -> Vec<String> {
        let mut out = vec![
            format!("score={}", self.score),
            format!(
                "reasons={}",
                if self.reasons.is_empty() {
                    "-".to_string()
                } else {
                    self.reasons.join(",")
                }
            ),
        ];
        for (name, value) in &self.signals {
            out.push(format!("signal {name}={value}"));
        }
        out
    }

    /// Parse the `score=` / `reasons=` head of a rendered report — what
    /// the router needs from a shard's `HEALTH` response.
    pub fn parse_head(lines: &[String]) -> Option<(u64, String)> {
        let score = lines.iter().find_map(|l| l.strip_prefix("score="))?.parse().ok()?;
        let reasons = lines
            .iter()
            .find_map(|l| l.strip_prefix("reasons="))
            .unwrap_or("-")
            .to_string();
        Some((score, reasons))
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    num / den.max(1.0)
}

/// Score the window between two consecutive metrics snapshots.
pub fn evaluate(prev: &Snapshot, curr: &Snapshot) -> HealthReport {
    let mut score: u64 = 100;
    let mut reasons = Vec::new();
    let mut signals = Vec::new();

    let window = curr.at_micros.saturating_sub(prev.at_micros);
    signals.push(("window_micros".to_string(), window.to_string()));

    let ingest_prev = prev.sum_of("dc_ingest_rows_total");
    let ingest_delta = (curr.sum_of("dc_ingest_rows_total") - ingest_prev).max(0.0);
    signals.push(("ingest_delta_rows".to_string(), format!("{}", ingest_delta as u64)));
    if ingest_prev > 0.0 && ingest_delta == 0.0 {
        score = score.saturating_sub(PENALTY_INGEST_STALL);
        reasons.push("ingest_stalled");
    }

    let firings_delta =
        (curr.sum_of("dc_fire_micros_count") - prev.sum_of("dc_fire_micros_count")).max(0.0);
    let reexec_delta =
        (curr.sum_of("dc_reexecutes_total") - prev.sum_of("dc_reexecutes_total")).max(0.0);
    signals.push(("firings_delta".to_string(), format!("{}", firings_delta as u64)));
    signals.push(("reexecutes_delta".to_string(), format!("{}", reexec_delta as u64)));
    if ratio(reexec_delta, firings_delta) > REEXECUTE_RATIO_MAX {
        score = score.saturating_sub(PENALTY_REEXECUTE);
        reasons.push("reexecute_rate");
    }

    let saturation_delta = (curr.sum_of("dc_forward_saturation_total")
        - prev.sum_of("dc_forward_saturation_total"))
    .max(0.0);
    signals.push((
        "forward_saturation_delta".to_string(),
        format!("{}", saturation_delta as u64),
    ));
    if saturation_delta > 0.0 {
        score = score.saturating_sub(PENALTY_FORWARD_SATURATION);
        reasons.push("forward_saturation");
    }

    let fsync_p99 = window_p99(prev, curr, "dc_wal_fsync_micros")
        .into_iter()
        .map(|(_, p)| p)
        .max()
        .unwrap_or(0);
    signals.push(("wal_fsync_p99_window_micros".to_string(), fsync_p99.to_string()));
    if fsync_p99 > WAL_FSYNC_P99_MAX_MICROS {
        score = score.saturating_sub(PENALTY_WAL_FSYNC);
        reasons.push("wal_fsync_slow");
    }

    HealthReport { score, reasons, signals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::parse_exposition;

    fn snap(at_micros: u64, lines: &[&str]) -> Snapshot {
        Snapshot {
            at_micros,
            samples: parse_exposition(lines).unwrap(),
        }
    }

    #[test]
    fn steady_ingest_scores_100() {
        let prev = snap(1_000_000, &["dc_ingest_rows_total{stream=\"s\"} 100"]);
        let curr = snap(2_000_000, &["dc_ingest_rows_total{stream=\"s\"} 200"]);
        let r = evaluate(&prev, &curr);
        assert_eq!(r.score, 100);
        assert!(r.reasons.is_empty());
        assert_eq!(r.render()[0], "score=100");
        assert_eq!(r.render()[1], "reasons=-");
    }

    #[test]
    fn stalled_ingest_and_reexecute_churn_stack_penalties() {
        let prev = snap(
            1_000_000,
            &[
                "dc_ingest_rows_total{stream=\"s\"} 100",
                "dc_fire_micros_count{query=\"q\"} 10",
                "dc_reexecutes_total{query=\"q\"} 0",
            ],
        );
        let curr = snap(
            2_000_000,
            &[
                "dc_ingest_rows_total{stream=\"s\"} 100",
                "dc_fire_micros_count{query=\"q\"} 20",
                "dc_reexecutes_total{query=\"q\"} 5",
            ],
        );
        let r = evaluate(&prev, &curr);
        assert_eq!(r.score, 100 - PENALTY_INGEST_STALL - PENALTY_REEXECUTE);
        assert_eq!(r.reasons, vec!["ingest_stalled", "reexecute_rate"]);
        let rendered = r.render();
        assert!(rendered.contains(&"reasons=ingest_stalled,reexecute_rate".to_string()));
        assert!(rendered.iter().any(|l| l == "signal ingest_delta_rows=0"));
        let (score, reasons) = HealthReport::parse_head(&rendered).unwrap();
        assert_eq!(score, r.score);
        assert_eq!(reasons, "ingest_stalled,reexecute_rate");
    }

    #[test]
    fn slow_fsync_and_saturation_degrade() {
        let prev = snap(
            1_000_000,
            &[
                "dc_forward_saturation_total{stream=\"s\",shard=\"0\"} 2",
                "dc_wal_fsync_micros_bucket{stream=\"s\",le=\"65536\"} 0",
                "dc_wal_fsync_micros_bucket{stream=\"s\",le=\"+Inf\"} 0",
            ],
        );
        let curr = snap(
            2_000_000,
            &[
                "dc_forward_saturation_total{stream=\"s\",shard=\"0\"} 3",
                "dc_wal_fsync_micros_bucket{stream=\"s\",le=\"65536\"} 10",
                "dc_wal_fsync_micros_bucket{stream=\"s\",le=\"+Inf\"} 10",
            ],
        );
        let r = evaluate(&prev, &curr);
        assert_eq!(r.score, 100 - PENALTY_FORWARD_SATURATION - PENALTY_WAL_FSYNC);
        assert_eq!(r.reasons, vec!["forward_saturation", "wal_fsync_slow"]);
        assert!(r
            .signals
            .iter()
            .any(|(k, v)| k == "wal_fsync_p99_window_micros" && v == "65536"));
    }

    #[test]
    fn warm_up_report_is_healthy() {
        let r = HealthReport::healthy();
        assert_eq!(r.score, 100);
        assert_eq!(HealthReport::parse_head(&r.render()), Some((100, "-".to_string())));
    }
}
