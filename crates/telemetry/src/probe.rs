//! Probes: the per-object bundles of histograms, counters and recorder
//! handles the engine stores. Constructors take a [`Telemetry`] handle
//! and return `None` when it is disabled, so instrumented code stores
//! one `Option<Arc<...>>` and pays a single branch on the off path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::hist::Histogram;
use crate::recorder::FlightRecorder;
use crate::registry::Telemetry;
use crate::now_micros;

/// Instrumentation for one basket (stream): dwell-time histogram, an
/// ingest watermark for end-to-end latency, and backpressure /
/// compaction counters + events.
pub struct BasketProbe {
    stream: String,
    dwell: Arc<Histogram>,
    append: Arc<Histogram>,
    backpressure_waits: Arc<AtomicU64>,
    compactions: Arc<AtomicU64>,
    rows_in: Arc<AtomicU64>,
    /// Ingest timestamp ([`now_micros`]) of the oldest batch appended
    /// since the basket was last drained; `0` = unset. One CAS per
    /// batch, not per tuple.
    watermark: AtomicU64,
    /// Batch id (+ stamp time) of the most recent *traced* batch
    /// appended and not yet consumed by a firing; `0` = none.
    trace_batch: AtomicU64,
    trace_stamp: AtomicU64,
    recorder: Arc<FlightRecorder>,
}

impl BasketProbe {
    /// `None` when telemetry is disabled.
    pub fn new(t: &Telemetry, stream: &str) -> Option<Arc<BasketProbe>> {
        let labels = &[("stream", stream)][..];
        Some(Arc::new(BasketProbe {
            stream: stream.to_string(),
            dwell: t.histogram("dc_basket_dwell_micros", labels)?,
            append: t.histogram("dc_receptor_append_micros", labels)?,
            backpressure_waits: t.counter("dc_backpressure_waits_total", labels)?,
            compactions: t.counter("dc_compactions_total", labels)?,
            rows_in: t.counter("dc_ingest_rows_total", labels)?,
            watermark: AtomicU64::new(0),
            trace_batch: AtomicU64::new(0),
            trace_stamp: AtomicU64::new(0),
            recorder: t.recorder()?,
        }))
    }

    /// Stamp the ingest watermark if unset and count the appended rows.
    /// Call once per appended batch.
    #[inline]
    pub fn note_append(&self, rows: usize) {
        self.rows_in.fetch_add(rows as u64, Ordering::Relaxed);
        let _ = self.watermark.compare_exchange(
            0,
            now_micros(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// A traced batch was just appended: remember its id and the append
    /// time so the next firing can report the basket-dwell span.
    pub fn set_trace_mark(&self, batch: u64) {
        self.trace_stamp.store(now_micros(), Ordering::Relaxed);
        self.trace_batch.store(batch, Ordering::Relaxed);
    }

    /// Disarm a mark armed for `batch` whose append landed no rows,
    /// leaving any newer mark in place.
    pub fn clear_trace_mark(&self, batch: u64) {
        let _ = self.trace_batch.compare_exchange(
            batch,
            0,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Consume the pending trace mark: `(batch id, append stamp µs)`.
    pub fn take_trace_mark(&self) -> Option<(u64, u64)> {
        let batch = self.trace_batch.swap(0, Ordering::Relaxed);
        if batch == 0 {
            return None;
        }
        Some((batch, self.trace_stamp.load(Ordering::Relaxed)))
    }

    /// Record one hop span of a traced batch against this stream.
    pub fn note_span(&self, hop: &'static str, batch: u64, dur_micros: u64) {
        self.recorder.record(
            "span",
            None,
            format!("batch={batch} hop={hop} dur_micros={dur_micros} stream={}", self.stream),
        );
    }

    /// Time taken by the server to wait for capacity + append one
    /// batch.
    #[inline]
    pub fn note_append_micros(&self, micros: u64) {
        self.append.record(micros);
    }

    /// Consume the watermark (oldest pending ingest timestamp, `0` if
    /// none) and record the dwell time the consumed tuples spent in the
    /// basket. Call when a firing drains/deletes from the basket.
    pub fn take_watermark(&self) -> u64 {
        let w = self.watermark.swap(0, Ordering::Relaxed);
        if w != 0 {
            self.dwell.record(now_micros().saturating_sub(w));
        }
        w
    }

    /// Current watermark without consuming it (`0` = unset).
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Relaxed)
    }

    /// A producer blocked on basket capacity for `micros`.
    pub fn note_backpressure(&self, micros: u64) {
        self.backpressure_waits.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(
            "backpressure_wait",
            None,
            format!("stream={} wait_micros={micros}", self.stream),
        );
    }

    /// The basket compacted away `rows` logically-deleted rows.
    pub fn note_compaction(&self, rows: usize) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(
            "compaction",
            None,
            format!("stream={} rows={rows}", self.stream),
        );
    }
}

/// Fixed vocabulary of delta-execution fallback reasons — must match
/// `dcsql::plan::FALLBACK_REASONS` (pinned by a test in the core crate,
/// which depends on both; this crate deliberately depends on neither).
pub const DELTA_FALLBACK_REASONS: &[&str] = &[
    "first",
    "generation",
    "shrunk",
    "untracked",
    "variable",
    "error",
];

/// Instrumentation for one continuous query factory: per-phase fire
/// histograms, end-to-end tuple latency, re-execute counter, delta
/// fallback counters, and firing events.
pub struct FireProbe {
    query: String,
    lock: Arc<Histogram>,
    snapshot: Arc<Histogram>,
    execute: Arc<Histogram>,
    apply: Arc<Histogram>,
    total: Arc<Histogram>,
    tuple_latency: Arc<Histogram>,
    reexecutes: Arc<AtomicU64>,
    /// One counter per [`DELTA_FALLBACK_REASONS`] entry, same order —
    /// pre-created so every `{query, reason}` series exposes as `0`
    /// before its first fallback.
    delta_fallbacks: Vec<Arc<AtomicU64>>,
    /// Shared per-query slot handing a traced batch id to the emitter.
    emit_mark: Arc<AtomicU64>,
    recorder: Arc<FlightRecorder>,
}

impl FireProbe {
    /// `None` when telemetry is disabled.
    pub fn new(t: &Telemetry, query: &str) -> Option<Arc<FireProbe>> {
        let q = &[("query", query)][..];
        let phase = |p: &str| {
            t.histogram("dc_fire_phase_micros", &[("query", query), ("phase", p)])
        };
        let mut delta_fallbacks = Vec::with_capacity(DELTA_FALLBACK_REASONS.len());
        for reason in DELTA_FALLBACK_REASONS {
            delta_fallbacks.push(t.counter(
                "dc_delta_fallback_total",
                &[("query", query), ("reason", reason)],
            )?);
        }
        Some(Arc::new(FireProbe {
            query: query.to_string(),
            lock: phase("lock")?,
            snapshot: phase("snapshot")?,
            execute: phase("execute")?,
            apply: phase("apply")?,
            total: t.histogram("dc_fire_micros", q)?,
            tuple_latency: t.histogram("dc_tuple_latency_micros", q)?,
            reexecutes: t.counter("dc_reexecutes_total", q)?,
            delta_fallbacks,
            emit_mark: t.emit_mark(query)?,
            recorder: t.recorder()?,
        }))
    }

    /// A delta-capable statement fell back to full re-execution for
    /// `reason` (one of [`DELTA_FALLBACK_REASONS`]; unknown reasons are
    /// dropped rather than minting unbounded label values).
    pub fn note_delta_fallback(&self, reason: &str) {
        if let Some(i) = DELTA_FALLBACK_REASONS.iter().position(|r| *r == reason) {
            self.delta_fallbacks[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A firing consumed a traced batch: record its basket-dwell and
    /// fire spans and hand the id to this query's emitters.
    pub fn note_trace(&self, batch: u64, dwell_micros: u64, fire_micros: u64) {
        self.recorder.record(
            "span",
            Some(&self.query),
            format!("batch={batch} hop=basket_dwell dur_micros={dwell_micros}"),
        );
        self.recorder.record(
            "span",
            Some(&self.query),
            format!("batch={batch} hop=fire dur_micros={fire_micros}"),
        );
        self.emit_mark.store(batch, Ordering::Relaxed);
    }

    /// A firing began.
    pub fn note_fire_start(&self) {
        self.recorder
            .record("fire_start", Some(&self.query), String::new());
    }

    /// Snapshots changed under execution; the factory re-ran the plan.
    pub fn note_reexecute(&self) {
        self.reexecutes.fetch_add(1, Ordering::Relaxed);
        self.recorder
            .record("reexecute", Some(&self.query), String::new());
    }

    /// Record one completed firing: the phase breakdown, the total, the
    /// end-to-end tuple latency (when an ingest `watermark` was
    /// pending), and a `fire_end` event carrying the report.
    #[allow(clippy::too_many_arguments)]
    pub fn note_fire_end(
        &self,
        lock_micros: u64,
        snapshot_micros: u64,
        execute_micros: u64,
        apply_micros: u64,
        total_micros: u64,
        watermark: u64,
        rows_scanned: u64,
        rows_out: u64,
    ) {
        self.lock.record(lock_micros);
        self.snapshot.record(snapshot_micros);
        self.execute.record(execute_micros);
        self.apply.record(apply_micros);
        self.total.record(total_micros);
        if watermark != 0 {
            self.tuple_latency
                .record(now_micros().saturating_sub(watermark));
        }
        self.recorder.record(
            "fire_end",
            Some(&self.query),
            format!(
                "total_micros={total_micros} lock_micros={lock_micros} \
                 snapshot_micros={snapshot_micros} execute_micros={execute_micros} \
                 apply_micros={apply_micros} rows_scanned={rows_scanned} rows_out={rows_out}"
            ),
        );
    }
}

/// Instrumentation for one emitter: encode→socket-write histogram and
/// slow-subscriber coalescing counter + events.
pub struct EmitterProbe {
    query: String,
    write: Arc<Histogram>,
    coalesced: Arc<AtomicU64>,
    /// The fire probe's hand-off slot for traced batch ids.
    emit_mark: Arc<AtomicU64>,
    recorder: Arc<FlightRecorder>,
}

impl EmitterProbe {
    /// `None` when telemetry is disabled.
    pub fn new(t: &Telemetry, query: &str) -> Option<Arc<EmitterProbe>> {
        let q = &[("query", query)][..];
        Some(Arc::new(EmitterProbe {
            query: query.to_string(),
            write: t.histogram("dc_emitter_write_micros", q)?,
            coalesced: t.counter("dc_coalesced_batches_total", q)?,
            emit_mark: t.emit_mark(query)?,
            recorder: t.recorder()?,
        }))
    }

    /// One socket write (encode included) took `micros`. Consumes a
    /// pending traced batch (one atomic swap) into an `emitter` span.
    #[inline]
    pub fn note_write(&self, micros: u64) {
        self.write.record(micros);
        let batch = self.emit_mark.swap(0, Ordering::Relaxed);
        if batch != 0 {
            self.recorder.record(
                "span",
                Some(&self.query),
                format!("batch={batch} hop=emitter dur_micros={micros}"),
            );
        }
    }

    /// A slow subscriber caused `merged` queued batches to coalesce
    /// into one write.
    pub fn note_coalesce(&self, merged: u64) {
        self.coalesced.fetch_add(merged, Ordering::Relaxed);
        self.recorder.record(
            "coalesce",
            Some(&self.query),
            format!("merged_batches={merged}"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_none_when_disabled() {
        let t = Telemetry::disabled();
        assert!(BasketProbe::new(&t, "s").is_none());
        assert!(FireProbe::new(&t, "q").is_none());
        assert!(EmitterProbe::new(&t, "q").is_none());
    }

    #[test]
    fn basket_probe_watermark_and_dwell() {
        let t = Telemetry::enabled();
        let p = BasketProbe::new(&t, "trades").unwrap();
        assert_eq!(p.watermark(), 0);
        assert_eq!(p.take_watermark(), 0, "no dwell sample without appends");
        p.note_append(3);
        let w = p.watermark();
        assert!(w > 0);
        p.note_append(4);
        assert_eq!(p.watermark(), w, "watermark keeps the oldest batch stamp");
        assert_eq!(p.take_watermark(), w);
        assert_eq!(p.watermark(), 0, "consumed");
        let snap = t
            .hist_snapshot("dc_basket_dwell_micros", &[("stream", "trades")])
            .unwrap();
        assert_eq!(snap.count, 1);
        assert!(t
            .render()
            .contains(&"dc_ingest_rows_total{stream=\"trades\"} 7".to_string()));
    }

    #[test]
    fn trace_marks_flow_from_basket_to_emitter() {
        let t = Telemetry::enabled();
        let b = BasketProbe::new(&t, "trades").unwrap();
        let f = FireProbe::new(&t, "hot").unwrap();
        let e = EmitterProbe::new(&t, "hot").unwrap();

        assert!(b.take_trace_mark().is_none());
        b.note_span("receptor", 42, 5);
        b.set_trace_mark(42);
        let (batch, stamp) = b.take_trace_mark().unwrap();
        assert_eq!(batch, 42);
        assert!(stamp > 0);
        assert!(b.take_trace_mark().is_none(), "mark is consumed once");

        f.note_trace(batch, 100, 40);
        e.note_write(9);
        e.note_write(9); // no pending mark → no second emitter span

        let spans = crate::span::render_spans(&t.recorder().unwrap().events(), Some(42));
        assert_eq!(spans[0], "batch 42 spans=4");
        assert!(spans[1].contains("hop=receptor") && spans[1].contains("stream=trades"));
        assert!(spans[2].contains("hop=basket_dwell") && spans[2].contains("dur_micros=100"));
        assert!(spans[3].contains("hop=fire") && spans[3].contains("dur_micros=40"));
        assert!(spans[4].contains("hop=emitter") && spans[4].contains("query=hot"));
        assert_eq!(spans.len(), 5);
    }

    #[test]
    fn basket_probe_counts_and_events() {
        let t = Telemetry::enabled();
        let p = BasketProbe::new(&t, "trades").unwrap();
        p.note_backpressure(120);
        p.note_compaction(64);
        p.note_append_micros(5);
        let body = t.render();
        assert!(body
            .contains(&"dc_backpressure_waits_total{stream=\"trades\"} 1".to_string()));
        assert!(body.contains(&"dc_compactions_total{stream=\"trades\"} 1".to_string()));
        let dump = t.recorder().unwrap().dump(None);
        assert!(dump.iter().any(|l| l.contains("kind=backpressure_wait")
            && l.contains("wait_micros=120")));
        assert!(dump.iter().any(|l| l.contains("kind=compaction") && l.contains("rows=64")));
    }

    #[test]
    fn fire_probe_records_phases_and_events() {
        let t = Telemetry::enabled();
        let p = FireProbe::new(&t, "hot").unwrap();
        p.note_fire_start();
        p.note_reexecute();
        p.note_fire_end(5, 2, 40, 3, 50, now_micros(), 100, 7);
        let total = t.hist_snapshot("dc_fire_micros", &[("query", "hot")]).unwrap();
        assert_eq!(total.count, 1);
        assert_eq!(total.sum, 50);
        let exec = t
            .hist_snapshot("dc_fire_phase_micros", &[("query", "hot"), ("phase", "execute")])
            .unwrap();
        assert_eq!(exec.sum, 40);
        let lat = t
            .hist_snapshot("dc_tuple_latency_micros", &[("query", "hot")])
            .unwrap();
        assert_eq!(lat.count, 1, "watermark present → latency sample");
        let dump = t.recorder().unwrap().dump(Some("hot"));
        assert_eq!(dump.len(), 3);
        assert!(dump[0].contains("kind=fire_start"));
        assert!(dump[1].contains("kind=reexecute"));
        assert!(dump[2].contains("kind=fire_end") && dump[2].contains("rows_out=7"));
        // delta fallback counters: pre-created per reason, unknown dropped
        p.note_delta_fallback("generation");
        p.note_delta_fallback("generation");
        p.note_delta_fallback("no-such-reason");
        let body = t.render();
        assert!(body.contains(
            &"dc_delta_fallback_total{query=\"hot\",reason=\"generation\"} 2".to_string()
        ));
        assert!(body.contains(
            &"dc_delta_fallback_total{query=\"hot\",reason=\"first\"} 0".to_string()
        ));
        // no watermark → no latency sample
        p.note_fire_end(1, 1, 1, 1, 4, 0, 0, 0);
        let lat = t
            .hist_snapshot("dc_tuple_latency_micros", &[("query", "hot")])
            .unwrap();
        assert_eq!(lat.count, 1);
    }

    #[test]
    fn emitter_probe_records_writes_and_coalescing() {
        let t = Telemetry::enabled();
        let p = EmitterProbe::new(&t, "hot").unwrap();
        p.note_write(9);
        p.note_coalesce(3);
        let w = t
            .hist_snapshot("dc_emitter_write_micros", &[("query", "hot")])
            .unwrap();
        assert_eq!(w.sum, 9);
        assert!(t
            .render()
            .contains(&"dc_coalesced_batches_total{query=\"hot\"} 3".to_string()));
        assert!(t.recorder().unwrap().dump(Some("hot"))[0].contains("merged_batches=3"));
    }
}
