//! Probes: the per-object bundles of histograms, counters and recorder
//! handles the engine stores. Constructors take a [`Telemetry`] handle
//! and return `None` when it is disabled, so instrumented code stores
//! one `Option<Arc<...>>` and pays a single branch on the off path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::hist::Histogram;
use crate::recorder::FlightRecorder;
use crate::registry::Telemetry;
use crate::now_micros;

/// Instrumentation for one basket (stream): dwell-time histogram, an
/// ingest watermark for end-to-end latency, and backpressure /
/// compaction counters + events.
pub struct BasketProbe {
    stream: String,
    dwell: Arc<Histogram>,
    append: Arc<Histogram>,
    backpressure_waits: Arc<AtomicU64>,
    compactions: Arc<AtomicU64>,
    /// Ingest timestamp ([`now_micros`]) of the oldest batch appended
    /// since the basket was last drained; `0` = unset. One CAS per
    /// batch, not per tuple.
    watermark: AtomicU64,
    recorder: Arc<FlightRecorder>,
}

impl BasketProbe {
    /// `None` when telemetry is disabled.
    pub fn new(t: &Telemetry, stream: &str) -> Option<Arc<BasketProbe>> {
        let labels = &[("stream", stream)][..];
        Some(Arc::new(BasketProbe {
            stream: stream.to_string(),
            dwell: t.histogram("dc_basket_dwell_micros", labels)?,
            append: t.histogram("dc_receptor_append_micros", labels)?,
            backpressure_waits: t.counter("dc_backpressure_waits_total", labels)?,
            compactions: t.counter("dc_compactions_total", labels)?,
            watermark: AtomicU64::new(0),
            recorder: t.recorder()?,
        }))
    }

    /// Stamp the ingest watermark if unset. Call once per appended
    /// batch.
    #[inline]
    pub fn note_append(&self) {
        let _ = self.watermark.compare_exchange(
            0,
            now_micros(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Time taken by the server to wait for capacity + append one
    /// batch.
    #[inline]
    pub fn note_append_micros(&self, micros: u64) {
        self.append.record(micros);
    }

    /// Consume the watermark (oldest pending ingest timestamp, `0` if
    /// none) and record the dwell time the consumed tuples spent in the
    /// basket. Call when a firing drains/deletes from the basket.
    pub fn take_watermark(&self) -> u64 {
        let w = self.watermark.swap(0, Ordering::Relaxed);
        if w != 0 {
            self.dwell.record(now_micros().saturating_sub(w));
        }
        w
    }

    /// Current watermark without consuming it (`0` = unset).
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Relaxed)
    }

    /// A producer blocked on basket capacity for `micros`.
    pub fn note_backpressure(&self, micros: u64) {
        self.backpressure_waits.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(
            "backpressure_wait",
            None,
            format!("stream={} wait_micros={micros}", self.stream),
        );
    }

    /// The basket compacted away `rows` logically-deleted rows.
    pub fn note_compaction(&self, rows: usize) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(
            "compaction",
            None,
            format!("stream={} rows={rows}", self.stream),
        );
    }
}

/// Instrumentation for one continuous query factory: per-phase fire
/// histograms, end-to-end tuple latency, re-execute counter, and
/// firing events.
pub struct FireProbe {
    query: String,
    lock: Arc<Histogram>,
    snapshot: Arc<Histogram>,
    execute: Arc<Histogram>,
    apply: Arc<Histogram>,
    total: Arc<Histogram>,
    tuple_latency: Arc<Histogram>,
    reexecutes: Arc<AtomicU64>,
    recorder: Arc<FlightRecorder>,
}

impl FireProbe {
    /// `None` when telemetry is disabled.
    pub fn new(t: &Telemetry, query: &str) -> Option<Arc<FireProbe>> {
        let q = &[("query", query)][..];
        let phase = |p: &str| {
            t.histogram("dc_fire_phase_micros", &[("query", query), ("phase", p)])
        };
        Some(Arc::new(FireProbe {
            query: query.to_string(),
            lock: phase("lock")?,
            snapshot: phase("snapshot")?,
            execute: phase("execute")?,
            apply: phase("apply")?,
            total: t.histogram("dc_fire_micros", q)?,
            tuple_latency: t.histogram("dc_tuple_latency_micros", q)?,
            reexecutes: t.counter("dc_reexecutes_total", q)?,
            recorder: t.recorder()?,
        }))
    }

    /// A firing began.
    pub fn note_fire_start(&self) {
        self.recorder
            .record("fire_start", Some(&self.query), String::new());
    }

    /// Snapshots changed under execution; the factory re-ran the plan.
    pub fn note_reexecute(&self) {
        self.reexecutes.fetch_add(1, Ordering::Relaxed);
        self.recorder
            .record("reexecute", Some(&self.query), String::new());
    }

    /// Record one completed firing: the phase breakdown, the total, the
    /// end-to-end tuple latency (when an ingest `watermark` was
    /// pending), and a `fire_end` event carrying the report.
    #[allow(clippy::too_many_arguments)]
    pub fn note_fire_end(
        &self,
        lock_micros: u64,
        snapshot_micros: u64,
        execute_micros: u64,
        apply_micros: u64,
        total_micros: u64,
        watermark: u64,
        rows_scanned: u64,
        rows_out: u64,
    ) {
        self.lock.record(lock_micros);
        self.snapshot.record(snapshot_micros);
        self.execute.record(execute_micros);
        self.apply.record(apply_micros);
        self.total.record(total_micros);
        if watermark != 0 {
            self.tuple_latency
                .record(now_micros().saturating_sub(watermark));
        }
        self.recorder.record(
            "fire_end",
            Some(&self.query),
            format!(
                "total_micros={total_micros} lock_micros={lock_micros} \
                 snapshot_micros={snapshot_micros} execute_micros={execute_micros} \
                 apply_micros={apply_micros} rows_scanned={rows_scanned} rows_out={rows_out}"
            ),
        );
    }
}

/// Instrumentation for one emitter: encode→socket-write histogram and
/// slow-subscriber coalescing counter + events.
pub struct EmitterProbe {
    query: String,
    write: Arc<Histogram>,
    coalesced: Arc<AtomicU64>,
    recorder: Arc<FlightRecorder>,
}

impl EmitterProbe {
    /// `None` when telemetry is disabled.
    pub fn new(t: &Telemetry, query: &str) -> Option<Arc<EmitterProbe>> {
        let q = &[("query", query)][..];
        Some(Arc::new(EmitterProbe {
            query: query.to_string(),
            write: t.histogram("dc_emitter_write_micros", q)?,
            coalesced: t.counter("dc_coalesced_batches_total", q)?,
            recorder: t.recorder()?,
        }))
    }

    /// One socket write (encode included) took `micros`.
    #[inline]
    pub fn note_write(&self, micros: u64) {
        self.write.record(micros);
    }

    /// A slow subscriber caused `merged` queued batches to coalesce
    /// into one write.
    pub fn note_coalesce(&self, merged: u64) {
        self.coalesced.fetch_add(merged, Ordering::Relaxed);
        self.recorder.record(
            "coalesce",
            Some(&self.query),
            format!("merged_batches={merged}"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_none_when_disabled() {
        let t = Telemetry::disabled();
        assert!(BasketProbe::new(&t, "s").is_none());
        assert!(FireProbe::new(&t, "q").is_none());
        assert!(EmitterProbe::new(&t, "q").is_none());
    }

    #[test]
    fn basket_probe_watermark_and_dwell() {
        let t = Telemetry::enabled();
        let p = BasketProbe::new(&t, "trades").unwrap();
        assert_eq!(p.watermark(), 0);
        assert_eq!(p.take_watermark(), 0, "no dwell sample without appends");
        p.note_append();
        let w = p.watermark();
        assert!(w > 0);
        p.note_append();
        assert_eq!(p.watermark(), w, "watermark keeps the oldest batch stamp");
        assert_eq!(p.take_watermark(), w);
        assert_eq!(p.watermark(), 0, "consumed");
        let snap = t
            .hist_snapshot("dc_basket_dwell_micros", &[("stream", "trades")])
            .unwrap();
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn basket_probe_counts_and_events() {
        let t = Telemetry::enabled();
        let p = BasketProbe::new(&t, "trades").unwrap();
        p.note_backpressure(120);
        p.note_compaction(64);
        p.note_append_micros(5);
        let body = t.render();
        assert!(body
            .contains(&"dc_backpressure_waits_total{stream=\"trades\"} 1".to_string()));
        assert!(body.contains(&"dc_compactions_total{stream=\"trades\"} 1".to_string()));
        let dump = t.recorder().unwrap().dump(None);
        assert!(dump.iter().any(|l| l.contains("kind=backpressure_wait")
            && l.contains("wait_micros=120")));
        assert!(dump.iter().any(|l| l.contains("kind=compaction") && l.contains("rows=64")));
    }

    #[test]
    fn fire_probe_records_phases_and_events() {
        let t = Telemetry::enabled();
        let p = FireProbe::new(&t, "hot").unwrap();
        p.note_fire_start();
        p.note_reexecute();
        p.note_fire_end(5, 2, 40, 3, 50, now_micros(), 100, 7);
        let total = t.hist_snapshot("dc_fire_micros", &[("query", "hot")]).unwrap();
        assert_eq!(total.count, 1);
        assert_eq!(total.sum, 50);
        let exec = t
            .hist_snapshot("dc_fire_phase_micros", &[("query", "hot"), ("phase", "execute")])
            .unwrap();
        assert_eq!(exec.sum, 40);
        let lat = t
            .hist_snapshot("dc_tuple_latency_micros", &[("query", "hot")])
            .unwrap();
        assert_eq!(lat.count, 1, "watermark present → latency sample");
        let dump = t.recorder().unwrap().dump(Some("hot"));
        assert_eq!(dump.len(), 3);
        assert!(dump[0].contains("kind=fire_start"));
        assert!(dump[1].contains("kind=reexecute"));
        assert!(dump[2].contains("kind=fire_end") && dump[2].contains("rows_out=7"));
        // no watermark → no latency sample
        p.note_fire_end(1, 1, 1, 1, 4, 0, 0, 0);
        let lat = t
            .hist_snapshot("dc_tuple_latency_micros", &[("query", "hot")])
            .unwrap();
        assert_eq!(lat.count, 1);
    }

    #[test]
    fn emitter_probe_records_writes_and_coalescing() {
        let t = Telemetry::enabled();
        let p = EmitterProbe::new(&t, "hot").unwrap();
        p.note_write(9);
        p.note_coalesce(3);
        let w = t
            .hist_snapshot("dc_emitter_write_micros", &[("query", "hot")])
            .unwrap();
        assert_eq!(w.sum, 9);
        assert!(t
            .render()
            .contains(&"dc_coalesced_batches_total{query=\"hot\"} 3".to_string()));
        assert!(t.recorder().unwrap().dump(Some("hot"))[0].contains("merged_batches=3"));
    }
}
