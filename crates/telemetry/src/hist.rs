//! The log-bucketed latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Finite buckets. Bucket `i` covers `(2^(i-1), 2^i]` microseconds
/// (bucket 0 covers `[0, 1]`); one extra overflow bucket catches
/// anything above `2^(BUCKETS-1)`.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: 0 for `v <= 1`, else the position of the
/// highest set bit of `v - 1` plus one, capped at the overflow bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(BUCKETS)
    }
}

/// Inclusive upper bound of finite bucket `i` (`2^i`; bucket 0 → 1).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    1u64 << i.min(63)
}

/// Fixed-layout log-bucketed histogram of `u64` samples (microseconds
/// by convention). All counters are relaxed atomics: `record` is
/// wait-free and never takes a lock, so many threads can record into
/// one histogram concurrently.
pub struct Histogram {
    /// `BUCKETS` finite buckets plus one overflow bucket.
    buckets: [AtomicU64; BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Arc<Histogram> {
        Arc::new(Histogram::default())
    }

    /// Record one sample. One index computation + four relaxed atomics.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (buckets are read one by
    /// one; a concurrent `record` may straddle the reads, which is fine
    /// for monitoring).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`] — the mergeable, quantilable
/// form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// `BUCKETS + 1` counts (finite buckets then overflow).
    pub buckets: Vec<u64>,
    pub sum: u64,
    pub count: u64,
    pub max: u64,
}

impl HistSnapshot {
    /// Bucket-wise add — the cluster-side histogram aggregation.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket holding quantile `q` (0..=1) — the
    /// usual log-bucket quantile estimate. The top finite estimate is
    /// clamped to the observed max so p99/max stay ordered.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i >= BUCKETS {
                    self.max
                } else {
                    bucket_bound(i).min(self.max)
                };
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Append Prometheus text-format series for this histogram:
    /// cumulative `_bucket{..., le="..."}` lines up to the highest
    /// non-empty bucket plus `+Inf`, then `_sum` and `_count`.
    /// `labels` is the pre-rendered label list without braces (may be
    /// empty).
    pub fn render_into(&self, out: &mut Vec<String>, name: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let highest = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i.min(BUCKETS - 1))
            .unwrap_or(0);
        let mut cum = 0u64;
        for i in 0..=highest {
            cum += self.buckets.get(i).copied().unwrap_or(0);
            out.push(format!(
                "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}",
                bucket_bound(i)
            ));
        }
        out.push(format!(
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
            self.count
        ));
        let plain = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        out.push(format!("{name}_sum{plain} {}", self.sum));
        out.push(format!("{name}_count{plain} {}", self.count));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS);
        // every value lands in the bucket whose bound covers it
        for v in [0u64, 1, 2, 7, 100, 4096, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_bound(i), "v={v} i={i}");
            if i > 0 && i < BUCKETS {
                assert!(v > bucket_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn record_snapshot_quantile() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 6116);
        assert_eq!(s.max, 5000);
        assert!(s.p50() >= 3 && s.p50() <= 16, "{}", s.p50());
        assert!(s.p99() >= 1000, "{}", s.p99());
        assert!(s.p99() <= s.max);
        assert_eq!(s.quantile(1.0), 5000);
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn merge_is_bucket_wise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 100] {
            a.record(v);
        }
        for v in [100u64, 100, 1 << 50] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 5);
        assert_eq!(m.sum, 1 + 100 + 100 + 100 + (1 << 50));
        assert_eq!(m.max, 1 << 50);
        assert_eq!(m.buckets[bucket_index(100)], 3);
    }

    #[test]
    fn render_emits_cumulative_buckets() {
        let h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(3);
        let mut out = Vec::new();
        h.snapshot().render_into(&mut out, "m", "q=\"x\"");
        assert_eq!(
            out,
            vec![
                "m_bucket{q=\"x\",le=\"1\"} 1",
                "m_bucket{q=\"x\",le=\"2\"} 2",
                "m_bucket{q=\"x\",le=\"4\"} 3",
                "m_bucket{q=\"x\",le=\"+Inf\"} 3",
                "m_sum{q=\"x\"} 6",
                "m_count{q=\"x\"} 3",
            ]
        );
    }

    #[test]
    fn render_without_labels() {
        let h = Histogram::new();
        h.record(1);
        let mut out = Vec::new();
        h.snapshot().render_into(&mut out, "m", "");
        assert_eq!(out[0], "m_bucket{le=\"1\"} 1");
        assert_eq!(out[2], "m_sum 1");
    }
}
