//! The router's control-plane listener.
//!
//! Speaks exactly the `datacelld` wire protocol ([`dcserver::protocol`])
//! — same commands, same `OK n`/`ERR` framing — so every existing client
//! (including `dcserver::client::Client`) talks to a cluster unchanged.
//! The accept/read/respond plumbing *is* the engine's
//! ([`dcserver::control::serve_loop`]); only the dispatch differs: DDL
//! places streams on shards, `SHARD BY` is honored instead of rejected,
//! `ATTACH` opens logical ports fronting the whole cluster, and `STATS`
//! aggregates.

use std::net::TcpListener;
use std::sync::Arc;

use dcserver::control::serve_loop;
use dcserver::error::Result;
use dcserver::protocol::{parse_command, Command, Response};

use crate::router::ClusterRuntime;

/// The cluster's control-plane server.
pub struct ClusterControl {
    listener: TcpListener,
    runtime: Arc<ClusterRuntime>,
}

impl ClusterControl {
    /// Bind the router control listener (port 0 for ephemeral).
    pub fn bind(addr: &str, runtime: Arc<ClusterRuntime>) -> Result<ClusterControl> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(ClusterControl { listener, runtime })
    }

    /// The bound control-plane address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    pub fn runtime(&self) -> &Arc<ClusterRuntime> {
        &self.runtime
    }

    /// Serve until `SHUTDOWN` (or an external stop), then tear the whole
    /// cluster down. Blocks the caller.
    pub fn serve(self) -> Result<()> {
        let rt = &self.runtime;
        serve_loop(
            &self.listener,
            &rt.sessions,
            &|| rt.is_stopping(),
            &|request| dispatch(rt, request),
        );
        self.runtime.shutdown();
        Ok(())
    }
}

/// Execute one command; the bool says "close this connection afterwards".
fn dispatch(rt: &Arc<ClusterRuntime>, request: &str) -> (Response, bool) {
    let cmd = match parse_command(request) {
        Ok(c) => c,
        Err(e) => return (Response::Err(e), false),
    };
    let result = match cmd {
        Command::Ping => Ok((Response::one("pong"), false)),
        Command::Ddl(sql) => rt.ddl(&sql).map(|b| (Response::Ok(b), false)),
        Command::DdlPersist { ddl, stream } => rt
            .create_persistent(&ddl, &stream)
            .map(|b| (Response::Ok(b), false)),
        Command::DdlSharded {
            ddl,
            stream,
            key,
            shards,
            persist,
        } => rt
            .create_sharded(&ddl, &stream, &key, shards, persist)
            .map(|b| (Response::Ok(b), false)),
        Command::FlushStream { stream } => rt
            .flush_stream(&stream)
            .map(|n| (Response::one(format!("sealed_rows={n}")), false)),
        Command::Exec(sql) => rt.exec(&sql).map(|b| (Response::Ok(b), false)),
        Command::RegisterQuery { name, sql } => rt
            .register_query(&name, &sql)
            .map(|b| (Response::Ok(b), false)),
        Command::AttachReceptor {
            stream,
            port,
            format,
        } => rt
            .attach_receptor(&stream, port, format)
            .map(|p| (Response::one(format!("port={p}")), false)),
        Command::AttachEmitter {
            query,
            port,
            format,
        } => rt
            .attach_emitter(&query, port, format)
            .map(|p| (Response::one(format!("port={p}")), false)),
        Command::DetachReceptor { stream, port } => rt
            .detach_receptor(&stream, port)
            .map(|n| (Response::one(format!("detached={n}")), false)),
        Command::DetachEmitter { query, port } => rt
            .detach_emitter(&query, port)
            .map(|n| (Response::one(format!("detached={n}")), false)),
        Command::Explain(sql) => rt.explain_sql(&sql).map(|b| (Response::Ok(b), false)),
        Command::ExplainQuery { name } => {
            rt.explain_query(&name).map(|b| (Response::Ok(b), false))
        }
        Command::Stats => Ok((Response::Ok(rt.stats()), false)),
        Command::Metrics => Ok((Response::Ok(rt.metrics()), false)),
        Command::MetricsHistory { series, last } => rt
            .metrics_history(series.as_deref(), last)
            .map(|b| (Response::Ok(b), false)),
        Command::Health => rt.health().map(|b| (Response::Ok(b), false)),
        Command::TraceSpans { batch } => rt
            .trace_spans(batch)
            .map(|b| (Response::Ok(b), false)),
        Command::TraceDump { query } => rt
            .trace_dump(query.as_deref())
            .map(|b| (Response::Ok(b), false)),
        Command::TraceStream { query, on } => {
            if on {
                rt.trace_on(&query)
                    .map(|p| (Response::one(format!("port={p}")), false))
            } else {
                rt.trace_off(&query)
                    .map(|n| (Response::one(format!("closed_shards={n}")), false))
            }
        }
        Command::ReplStatus { stream } => rt
            .repl_status_lines(&stream)
            .map(|b| (Response::Ok(b), false)),
        Command::ReplOpen { .. }
        | Command::ReplExport { .. }
        | Command::ReplSegment { .. }
        | Command::ReplWal { .. }
        | Command::ReplPromote => Ok((
            Response::Err(
                "REPL transfer verbs are shard-engine commands — the router \
                 replicates automatically (see REPL STATUS <stream>)"
                    .to_string(),
            ),
            false,
        )),
        Command::Quit => Ok((Response::ok(), true)),
        Command::Shutdown => {
            rt.request_shutdown();
            Ok((Response::ok(), true))
        }
    };
    result.unwrap_or_else(|e| (Response::Err(e.to_string()), false))
}
