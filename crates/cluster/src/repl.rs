//! Shard replication and automatic failover.
//!
//! Every shard may carry a **follower**: a second `datacelld` that holds
//! a durable copy of the shard's persistent streams but runs no live
//! baskets or queries (a cold standby). The router's replication pump
//! ships the primary's durable state over the ordinary control plane:
//!
//! ```text
//!   follower: REPL OPEN <stream> AS <ddl>      (once, idempotent)
//!   loop:
//!     follower: REPL STATUS <stream>           -> (segs, epoch, offset)
//!     primary:  REPL EXPORT <stream> SEGS .. EPOCH .. OFFSET ..
//!     follower: REPL SEGMENT ...               (each shipped segment)
//!     follower: REPL WAL EPOCH .. FROM .. ..   (the WAL tail chunk)
//! ```
//!
//! The cursor is entirely follower-side state, so replication is
//! restartable from either end at any time: the pump re-reads the
//! cursor every round and the primary exports exactly what lies past
//! it (sealed segments are content-identical files; the WAL tail is
//! shipped at record boundaries and re-framed verbatim).
//!
//! **Failure detection** lives in the router's HEALTH poll: a primary
//! that misses `failover_misses` consecutive polls while a follower
//! exists is failed over. **Promotion** then runs entirely against the
//! follower (the primary is presumed dead and is never contacted):
//!
//! 1. `REPL OPEN` every persistent stream (idempotent — covers streams
//!    created moments before the crash that the pump never reached);
//! 2. `REPL PROMOTE`: the follower replays each replica stream's WAL
//!    tail over its sealed segments into a live basket and attaches
//!    persistence — the acknowledged rows that had been shipped are
//!    live again;
//! 3. re-create non-persistent streams hosted on the shard (their rows
//!    died with the primary — nothing durable existed);
//! 4. re-register the standing queries that resolved on the shard;
//! 5. re-attach the shard-side receptor/emitter ports behind every
//!    logical router port, splice fresh emitter taps into the existing
//!    [`FrameRelay`]s (subscribers keep their sockets), and re-point
//!    the port maps;
//! 6. swap the slot's primary handle — new ingest connections and
//!    control fan-outs now resolve to the promoted engine.
//!
//! Replication is asynchronous: rows acknowledged by the primary but
//! not yet shipped when it dies are lost to the *cluster* until the
//! primary's data dir is recovered (they are still on its disk). The
//! `dc_replication_lag_rows` gauge is exactly that exposure, and an
//! operator (or test) that has observed lag 0 past an acknowledged
//! count knows those rows survive promotion.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use dcserver::error::{Result, ServerError};

use crate::engines::ShardEngine;
use crate::router::{shard_tap, ClusterRuntime, StreamEntry};

/// Pump ticks without progress (while lag is non-zero or the round
/// errors) before a shard is flagged `replication_stalled`.
pub(crate) const STALL_TICKS: u32 = 3;
/// Catch-up rounds one pump tick may run per stream × shard — bounds
/// the time a single tick can monopolize the follower's control plane.
const MAX_ROUNDS_PER_TICK: usize = 16;

/// Replication pump bookkeeping, keyed by `(stream, shard id)`.
#[derive(Default)]
pub struct ReplState {
    /// Pairs whose follower has acknowledged `REPL OPEN`.
    opened: std::collections::HashSet<(String, usize)>,
    /// Last observed replication lag (rows acknowledged by the primary
    /// but not yet on the follower's disk).
    lag: std::collections::HashMap<(String, usize), u64>,
    /// Stall tracking per pair.
    stall: std::collections::HashMap<(String, usize), Stall>,
}

#[derive(Default, Clone, Copy)]
struct Stall {
    last_lag: u64,
    ticks: u32,
}

impl ClusterRuntime {
    /// Run one replication pump tick: for every persistent stream ×
    /// shard with a follower, ship segments + WAL tail until caught up
    /// (bounded), refresh `dc_replication_lag_rows`, and update the
    /// per-shard stall flags. Public so tests can drive replication
    /// deterministically instead of waiting out `repl_interval`.
    pub fn pump_replication_now(&self) {
        let entries: Vec<Arc<StreamEntry>> = self
            .streams
            .lock()
            .values()
            .filter(|e| e.persist)
            .cloned()
            .collect();
        // None = no persistent stream pumped for this shard this tick
        // (leave its stall flag alone — it may be carrying a sticky
        // DDL-fan-out failure)
        let mut slot_stalled: Vec<Option<bool>> = vec![None; self.slots.len()];
        for entry in &entries {
            for &eid in &entry.engines {
                let slot = &self.slots[eid];
                if slot.failing_over.load(Ordering::Acquire) {
                    continue;
                }
                let Some(follower) = slot.follower() else {
                    continue;
                };
                let primary = slot.primary();
                let key = (entry.name.clone(), eid);
                let shard_label = eid.to_string();
                let outcome = self.pump_stream_shard(entry, eid, &primary, &follower);
                let stalled_now;
                {
                    let mut st = self.repl.lock();
                    match outcome {
                        Ok(lag) => {
                            let stall = st.stall.entry(key.clone()).or_default();
                            if lag == 0 || lag < stall.last_lag {
                                stall.ticks = 0;
                            } else {
                                stall.ticks += 1;
                            }
                            stall.last_lag = lag;
                            stalled_now = stall.ticks >= STALL_TICKS;
                            st.lag.insert(key, lag);
                            self.telemetry.set_gauge(
                                "dc_replication_lag_rows",
                                &[("stream", &entry.name), ("shard", &shard_label)],
                                lag as f64,
                            );
                        }
                        Err(_) => {
                            // force a fresh REPL OPEN handshake next tick
                            // (the follower may have restarted)
                            st.opened.remove(&key);
                            let stall = st.stall.entry(key).or_default();
                            stall.ticks = stall.ticks.saturating_add(1);
                            stalled_now = stall.ticks >= STALL_TICKS;
                        }
                    }
                }
                let agg = slot_stalled[eid].unwrap_or(false) || stalled_now;
                slot_stalled[eid] = Some(agg);
            }
        }
        for (eid, stalled) in slot_stalled.into_iter().enumerate() {
            if let Some(s) = stalled {
                self.slots[eid].set_stalled(s);
            }
        }
    }

    /// Ship one stream's durable state from `primary` to `follower`
    /// until caught up or `MAX_ROUNDS_PER_TICK`. Returns the remaining
    /// lag in rows (0 = the follower's disk holds everything the
    /// primary has acknowledged for this stream).
    fn pump_stream_shard(
        &self,
        entry: &StreamEntry,
        eid: usize,
        primary: &ShardEngine,
        follower: &ShardEngine,
    ) -> Result<u64> {
        let key = (entry.name.clone(), eid);
        if !self.repl.lock().opened.contains(&key) {
            follower.control(|c| c.repl_open(&entry.name, &entry.ddl))?;
            self.repl.lock().opened.insert(key);
        }
        let mut lag = 0u64;
        for _ in 0..MAX_ROUNDS_PER_TICK {
            let status = follower.control(|c| c.repl_status(&entry.name))?;
            let chunk = primary.control(|c| {
                c.repl_export(&entry.name, status.segments, status.epoch, status.wal_bytes)
            })?;
            let shipped_segments = !chunk.segments.is_empty();
            for (file, rows, data) in &chunk.segments {
                follower.control(|c| c.repl_segment(&entry.name, file, *rows, data))?;
            }
            let epoch_change = chunk.epoch != status.epoch;
            if epoch_change || !chunk.wal_data.is_empty() {
                follower.control(|c| {
                    c.repl_wal(&entry.name, chunk.epoch, chunk.wal_from, &chunk.wal_data)
                })?;
            }
            lag = chunk.pending_rows;
            if lag == 0 {
                break;
            }
            if !shipped_segments && !epoch_change && chunk.wal_data.is_empty() {
                // lag reported but nothing exportable — don't spin
                break;
            }
        }
        Ok(lag)
    }

    /// `REPL STATUS <stream>` on the router: one replication line per
    /// shard of the stream.
    pub fn repl_status_lines(&self, stream: &str) -> Result<Vec<String>> {
        let entry = self
            .streams
            .lock()
            .get(stream)
            .cloned()
            .ok_or_else(|| ServerError::Unknown(format!("stream {stream}")))?;
        let st = self.repl.lock();
        let mut body = Vec::new();
        for &eid in &entry.engines {
            let slot = &self.slots[eid];
            let follower = slot
                .follower()
                .map(|f| f.addr().to_string())
                .unwrap_or_else(|| "-".to_string());
            let lag = st
                .lag
                .get(&(stream.to_string(), eid))
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".to_string());
            body.push(format!(
                "shard {eid} primary={} follower={follower} lag_rows={lag} \
                 stalled={} failovers={}",
                slot.primary().addr(),
                slot.is_stalled(),
                slot.failovers(),
            ));
        }
        Ok(body)
    }

    /// Fail shard `eid` over to its follower. CAS-guarded: concurrent
    /// triggers (HEALTH command + snapshotter tick) run it once. On
    /// failure the slot keeps its dead primary and its follower, and the
    /// next HEALTH miss retries — every step is idempotent (`REPL OPEN`
    /// and `REPL PROMOTE` skip work already done, DDL and query
    /// re-registration tolerate duplicates, port attachment rolls back).
    pub(crate) fn promote_shard(self: &Arc<Self>, eid: usize) {
        let slot = &self.slots[eid];
        if slot
            .failing_over
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let outcome = self.try_promote(eid);
        match &outcome {
            Ok(addr) => {
                slot.failovers.fetch_add(1, Ordering::AcqRel);
                slot.health_misses.store(0, Ordering::Release);
                slot.set_stalled(false);
                let shard_label = eid.to_string();
                if let Some(ctr) = self
                    .telemetry
                    .counter("dc_failover_total", &[("shard", &shard_label)])
                {
                    ctr.fetch_add(1, Ordering::Relaxed);
                }
                // retire this pair's pump state: the shard has no
                // follower anymore, its lag gauge reads 0
                let mut st = self.repl.lock();
                st.opened.retain(|(_, e)| *e != eid);
                st.stall.retain(|(_, e), _| *e != eid);
                let retired: Vec<(String, usize)> = st
                    .lag
                    .keys()
                    .filter(|(_, e)| *e == eid)
                    .cloned()
                    .collect();
                for k in retired {
                    st.lag.remove(&k);
                    self.telemetry.set_gauge(
                        "dc_replication_lag_rows",
                        &[("stream", &k.0), ("shard", &shard_label)],
                        0.0,
                    );
                }
                drop(st);
                if let Some(rec) = self.telemetry.recorder() {
                    rec.record("failover", None, format!("shard={eid} promoted={addr}"));
                }
                eprintln!("dccluster: shard {eid} failed over to {addr}");
            }
            Err(e) => {
                if let Some(rec) = self.telemetry.recorder() {
                    rec.record("failover", None, format!("shard={eid} failed: {e}"));
                }
                eprintln!("dccluster: shard {eid} failover attempt failed: {e}");
            }
        }
        slot.failing_over.store(false, Ordering::Release);
    }

    /// The promotion protocol body (see the module docs for the step
    /// list). Returns the promoted engine's control address.
    fn try_promote(self: &Arc<Self>, eid: usize) -> Result<String> {
        let slot = &self.slots[eid];
        let follower = slot.follower().ok_or_else(|| {
            ServerError::Protocol(format!("shard {eid} has no follower to promote"))
        })?;
        let hosted: Vec<Arc<StreamEntry>> = self
            .streams
            .lock()
            .values()
            .filter(|s| s.engines.contains(&eid))
            .cloned()
            .collect();
        let queries: Vec<Arc<crate::router::QueryEntry>> = self
            .queries
            .lock()
            .values()
            .filter(|q| q.engines.contains(&eid))
            .cloned()
            .collect();

        // 1+2: durable streams replay into live baskets
        let persists: Vec<&Arc<StreamEntry>> = hosted.iter().filter(|s| s.persist).collect();
        for s in &persists {
            follower.control(|c| c.repl_open(&s.name, &s.ddl))?;
        }
        if !persists.is_empty() {
            follower.control(|c| c.repl_promote())?;
        }
        // 3: non-persistent streams restart empty
        for s in hosted.iter().filter(|s| !s.persist) {
            match follower.control(|c| c.request(&s.ddl)) {
                Ok(_) => {}
                Err(e) if e.to_string().contains("duplicate") => {}
                Err(e) => return Err(e),
            }
        }
        // 4: standing queries resume (their baskets now exist and hold
        // the replayed rows, which the engine delivers like any boot
        // replay — downstream sees the shard's acknowledged rows again:
        // failover is at-least-once, never lossy past the shipped lag)
        for q in &queries {
            match follower
                .control(|c| c.request(&format!("REGISTER QUERY {} AS {}", q.name, q.sql)))
            {
                Ok(_) => {}
                Err(e) if e.to_string().contains("duplicate") => {}
                Err(e) if e.to_string().contains("unknown name") => {
                    // the query only resolved on this shard through a
                    // stream placed elsewhere — nothing to re-register
                }
                Err(e) => return Err(e),
            }
        }

        // 5: data-plane ports. Attach everything on the follower first;
        // only when the full set is up do we re-point the port maps, so
        // a partial failure leaves the old (dead) topology intact for a
        // clean retry. `attached` tracks what must be rolled back.
        let receptors = self.receptors.lock().clone();
        let emitters = self.emitters.lock().clone();
        let mut attached: Vec<(bool, String, u16)> = Vec::new(); // (is_emitter, name, port)
        let rollback = |engine: &ShardEngine, attached: &[(bool, String, u16)]| {
            for (is_emitter, name, p) in attached {
                let _ = engine.control(|c| {
                    if *is_emitter {
                        c.detach_emitter(name, *p)
                    } else {
                        c.detach_receptor(name, *p)
                    }
                });
            }
        };
        let mut new_rports: Vec<(Arc<crate::router::ClusterReceptorPort>, u16)> = Vec::new();
        for rport in &receptors {
            if !rport.shard_ports.lock().iter().any(|&(e, _)| e == eid) {
                continue;
            }
            match follower.control(|c| {
                c.attach_receptor_fmt(&rport.stream, 0, datacell::frame::WireFormat::Binary)
            }) {
                Ok(p) => {
                    attached.push((false, rport.stream.clone(), p));
                    new_rports.push((Arc::clone(rport), p));
                }
                Err(e) => {
                    rollback(&follower, &attached);
                    return Err(e);
                }
            }
        }
        let mut new_eports: Vec<(
            Arc<crate::router::ClusterEmitterPort>,
            u16,
            std::net::TcpStream,
        )> = Vec::new();
        for eport in &emitters {
            if !eport.shard_ports.lock().iter().any(|&(e, _)| e == eid) {
                continue;
            }
            let attempt = follower
                .control(|c| c.attach_emitter_fmt(&eport.query, 0, eport.format))
                .and_then(|p| {
                    attached.push((true, eport.query.clone(), p));
                    Ok((p, std::net::TcpStream::connect(follower.data_addr(p))?))
                });
            match attempt {
                Ok((p, sock)) => new_eports.push((Arc::clone(eport), p, sock)),
                Err(e) => {
                    rollback(&follower, &attached);
                    return Err(e);
                }
            }
        }

        // 6: point the shard at the promoted engine. Connections racing
        // this window may pair the new engine with an old port (or vice
        // versa) and fail to connect — ingest clients already treat a
        // dropped connection as "reconnect and retry", which lands them
        // on the final topology.
        let addr = follower.addr().to_string();
        *slot.primary.write() = Arc::clone(&follower);
        *slot.follower.lock() = None;
        for (rport, p) in new_rports {
            for entry in rport.shard_ports.lock().iter_mut() {
                if entry.0 == eid {
                    entry.1 = p;
                }
            }
        }
        for (eport, p, sock) in new_eports {
            for entry in eport.shard_ports.lock().iter_mut() {
                if entry.0 == eid {
                    entry.1 = p;
                }
            }
            let rt = Arc::clone(self);
            let relay = Arc::clone(&eport.relay);
            let format = eport.format;
            let tap = std::thread::Builder::new()
                .name(format!("dcc-tap-{}-{eid}", eport.query))
                .spawn(move || shard_tap(&rt, &relay, sock, format))
                .map_err(|e| ServerError::Io(format!("spawn promoted shard tap: {e}")))?;
            self.egress_threads.lock().push(tap);
        }
        Ok(addr)
    }
}
