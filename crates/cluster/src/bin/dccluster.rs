//! `dccluster` — the DataCell shard-router daemon.
//!
//! ```text
//! dccluster [--listen HOST:PORT] [--shards N] [--engine HOST:PORT]...
//!           [--replicas] [--follower HOST:PORT]...
//!           [--repl-interval-ms N] [--failover-misses N]
//!           [--data-host HOST] [--backoff-us N]
//!           [--data-dir PATH] [--fsync always|every_n:N|off] [--seal-rows N]
//!           [--trace-ring N] [--trace-sample N]
//!           [--metrics-interval-ms N] [--metrics-depth N]
//! ```
//!
//! Fronts N `datacelld` engines behind one control plane speaking the
//! standard `datacelld` protocol. Without `--engine` arguments, `--shards
//! N` (default 2) in-process engines are spawned on ephemeral ports; each
//! `--engine` adds an already-running remote `datacelld` as a shard
//! instead.
//!
//! `--data-dir` enables durability on the in-process shards: shard `i`
//! persists under `PATH/shard-i`, and `CREATE STREAM ... PERSIST [SHARD
//! BY ...]` streams are write-ahead logged per shard. Remote engines
//! manage their own `--data-dir`.
//!
//! `--replicas` gives every in-process shard an in-process follower
//! (persisting under `PATH/shard-i-replica`); each `--follower` instead
//! names an already-running `datacelld` as the follower of the next
//! shard in order (give one per shard or none). The router streams
//! durable state to followers every `--repl-interval-ms` (default 200)
//! and promotes a follower after `--failover-misses` (default 3)
//! consecutive failed health polls of its primary.

use std::time::Duration;

use dccluster::{bind_cluster, ClusterConfig, ShardSpec};

fn main() {
    let mut listen = "127.0.0.1:7071".to_string();
    let mut shards = 2usize;
    let mut remotes: Vec<String> = Vec::new();
    let mut replicas = false;
    let mut follower_addrs: Vec<String> = Vec::new();
    let mut config = ClusterConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(v) => listen = v,
                None => die("--listen requires HOST:PORT"),
            },
            "--shards" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => die("--shards requires a number >= 1"),
            },
            "--engine" => match args.next() {
                Some(v) => remotes.push(v),
                None => die("--engine requires HOST:PORT"),
            },
            "--replicas" => replicas = true,
            "--follower" => match args.next() {
                Some(v) => follower_addrs.push(v),
                None => die("--follower requires HOST:PORT"),
            },
            "--repl-interval-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => config.repl_interval = Duration::from_millis(ms),
                _ => die("--repl-interval-ms requires a positive number"),
            },
            "--failover-misses" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n >= 1 => config.failover_misses = n,
                _ => die("--failover-misses requires a number >= 1"),
            },
            "--data-host" => match args.next() {
                Some(v) => config.data_host = v,
                None => die("--data-host requires HOST"),
            },
            "--backoff-us" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(us) => config.engine.idle_backoff = Duration::from_micros(us),
                None => die("--backoff-us requires a number"),
            },
            "--data-dir" => match args.next() {
                Some(v) => config.engine.data_dir = Some(v.into()),
                None => die("--data-dir requires a path"),
            },
            "--fsync" => match args.next().map(|v| v.parse()) {
                Some(Ok(policy)) => config.engine.fsync = policy,
                Some(Err(e)) => die(&format!("--fsync: {e}")),
                None => die("--fsync requires always|every_n:N|off"),
            },
            "--seal-rows" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.engine.seal_rows = n,
                None => die("--seal-rows requires a number"),
            },
            "--trace-ring" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.engine.trace_ring = n,
                _ => die("--trace-ring requires a positive number"),
            },
            "--trace-sample" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => config.engine.trace_sample = n,
                None => die("--trace-sample requires a number (0 = off)"),
            },
            "--metrics-interval-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => {
                    config.engine.metrics_interval = Duration::from_millis(ms)
                }
                _ => die("--metrics-interval-ms requires a positive number"),
            },
            "--metrics-depth" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.engine.metrics_depth = n,
                None => die("--metrics-depth requires a number"),
            },
            "--help" | "-h" => {
                println!(
                    "dccluster [--listen HOST:PORT] [--shards N] [--engine HOST:PORT]...\n          \
                     [--replicas] [--follower HOST:PORT]...\n          \
                     [--repl-interval-ms N] [--failover-misses N]\n          \
                     [--data-host HOST] [--backoff-us N]\n          \
                     [--data-dir PATH] [--fsync always|every_n:N|off] [--seal-rows N]\n          \
                     [--trace-ring N] [--trace-sample N (0 = off)]\n          \
                     [--metrics-interval-ms N] [--metrics-depth N]\n\n\
                     Same control protocol as datacelld (METRICS HISTORY, TRACE SPANS\n\
                     and HEALTH aggregate across shards), plus:\n  \
                     CREATE STREAM <name> (cols) [PERSIST] SHARD BY (<col>) [SHARDS <n>]\n  \
                     REPL STATUS <stream>   per-shard replication lag and failover count"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }

    config.shards = if remotes.is_empty() {
        vec![ShardSpec::InProcess; shards]
    } else {
        remotes.into_iter().map(ShardSpec::Remote).collect()
    };
    if !follower_addrs.is_empty() {
        if follower_addrs.len() != config.shards.len() {
            die(&format!(
                "{} shards but {} --follower addresses — give one per shard or none",
                config.shards.len(),
                follower_addrs.len()
            ));
        }
        config.followers = follower_addrs.into_iter().map(ShardSpec::Remote).collect();
    } else if replicas {
        config.followers = vec![ShardSpec::InProcess; config.shards.len()];
    }

    let n = config.shards.len();
    let cluster = match bind_cluster(&listen, config) {
        Ok(c) => c,
        Err(e) => die(&format!("cannot bind {listen}: {e}")),
    };
    match cluster.local_addr() {
        Ok(addr) => eprintln!("dccluster: control plane on {addr} fronting {n} engines"),
        Err(_) => eprintln!("dccluster: control plane on {listen} fronting {n} engines"),
    }
    if let Err(e) = cluster.serve() {
        die(&format!("cluster error: {e}"));
    }
    eprintln!("dccluster: shut down cleanly");
}

fn die(msg: &str) -> ! {
    eprintln!("dccluster: {msg}");
    std::process::exit(2);
}
