//! Byte-level fan-in/fan-out of result frames.
//!
//! The router's emitter side never decodes results: shard engines are
//! asked for the same wire format the subscriber negotiated, so merging
//! per-shard result streams into one subscriber stream is a **relay** of
//! self-delimiting chunks — complete binary frames (peeled with
//! [`datacell::frame::frame_len`], no schema needed) or complete text
//! lines. One chunk may carry several frames; subscribers just write
//! bytes.
//!
//! The delivery skeleton (subscribe with backlog replay, reaping,
//! counters) is the same [`FanOut`] that backs the single-engine
//! `Broadcast` — only the payload differs: encoded bytes instead of
//! [`datacell::frame::SharedFrame`] batches, weighted by byte count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::Receiver;
use dcserver::session::FanOut;

/// Chunks a subscriber-less relay holds before dropping oldest.
pub const RELAY_BACKLOG_CAP: usize = 1024;

/// Fan-in of encoded result chunks from N shard taps, fanned out to a
/// dynamic set of subscriber sockets.
pub struct FrameRelay {
    inner: FanOut<Vec<u8>>,
    /// Shard taps that ended abnormally (corrupt stream, socket error):
    /// from then on the merged stream is silently missing that shard's
    /// results, so the count is surfaced in `STATS` per emitter port.
    lost_sources: AtomicU64,
}

impl FrameRelay {
    pub fn new() -> Arc<FrameRelay> {
        Arc::new(FrameRelay {
            inner: FanOut::new(RELAY_BACKLOG_CAP, |chunk| chunk.len() as u64),
            lost_sources: AtomicU64::new(0),
        })
    }

    /// Record one source stream lost before its natural end.
    pub fn mark_source_lost(&self) {
        self.lost_sources.fetch_add(1, Ordering::AcqRel);
    }

    pub fn lost_sources(&self) -> u64 {
        self.lost_sources.load(Ordering::Acquire)
    }

    /// Add a subscriber; any backlog is replayed first.
    pub fn subscribe(&self) -> Receiver<Arc<Vec<u8>>> {
        self.inner.subscribe()
    }

    /// Publish one encoded chunk to all live subscribers (or the backlog
    /// when there are none).
    pub fn publish(&self, chunk: Vec<u8>) {
        self.inner.publish(Arc::new(chunk));
    }

    /// Disconnect every subscriber channel (they drain what they already
    /// received, then end) — the shutdown path.
    pub fn close(&self) {
        self.inner.close();
    }

    pub fn subscriber_count(&self) -> usize {
        self.inner.subscriber_count()
    }

    /// (chunks, bytes) relayed to at least one subscriber.
    pub fn relayed(&self) -> (u64, u64) {
        self.inner.delivered()
    }

    pub fn dropped_chunks(&self) -> u64 {
        self.inner.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_shared_chunks_to_all_subscribers() {
        let relay = FrameRelay::new();
        let a = relay.subscribe();
        let b = relay.subscribe();
        relay.publish(vec![1, 2, 3]);
        let ca = a.recv().unwrap();
        let cb = b.recv().unwrap();
        assert!(Arc::ptr_eq(&ca, &cb), "one chunk, shared");
        assert_eq!(*ca, vec![1, 2, 3]);
        assert_eq!(relay.relayed(), (1, 3));
    }

    #[test]
    fn backlog_replays_to_first_subscriber_and_is_bounded() {
        let relay = FrameRelay::new();
        for i in 0..(RELAY_BACKLOG_CAP + 5) {
            relay.publish(vec![i as u8]);
        }
        assert_eq!(relay.dropped_chunks(), 5);
        let rx = relay.subscribe();
        assert_eq!(*rx.recv().unwrap(), vec![5u8]);
    }

    #[test]
    fn close_disconnects_subscribers() {
        let relay = FrameRelay::new();
        let rx = relay.subscribe();
        relay.publish(vec![9]);
        relay.close();
        assert_eq!(*rx.recv().unwrap(), vec![9], "drains buffered first");
        assert!(rx.recv().is_err(), "then disconnects");
        assert_eq!(relay.subscriber_count(), 0);
    }
}
