//! # dccluster — sharded multi-engine DataCell behind one control plane
//!
//! DataCell's bet (EDBT 2009) is that a stream engine built on relational
//! kernels inherits the database's scaling toolbox. This crate cashes in
//! the next piece of that toolbox: **hash partitioning**. A `dccluster`
//! router fronts N independent `datacelld` engines — in this process or
//! on other hosts — behind the *same* line-oriented control plane and
//! data-plane wire formats a single engine speaks, so clients scale from
//! one engine to many by changing an address and adding one DDL clause:
//!
//! ```text
//! CREATE STREAM trades (sym varchar, px double) SHARD BY (sym) SHARDS 4
//! ```
//!
//! ## Topology
//!
//! ```text
//!                       ┌───────────── dccluster ─────────────┐
//!  control ───────────▶ │  shard map · placement · agg STATS  │
//!                       │                                     │
//!  receptor :p ───────▶ │  split by hash(key) ──▶ frames ───▶ │ ──▶ engine 0 (datacelld)
//!  (one logical port)   │        (columnar gather)        ──▶ │ ──▶ engine 1 (datacelld)
//!                       │                                     │
//!  emitter :q ◀──────── │  byte-level frame relay (merge) ◀── │ ◀── per-shard emitters
//!  (one logical port)   └─────────────────────────────────────┘
//! ```
//!
//! * **Control plane** — identical grammar to `datacelld`
//!   ([`dcserver::protocol`]); `CREATE STREAM ... SHARD BY` declares a
//!   partitioned stream, `REGISTER QUERY` fans out to every shard,
//!   `STATS` aggregates across them.
//! * **Ingest** — the logical receptor port decodes client batches
//!   (text or binary), slices each one column-wise by partition key
//!   ([`datacell::partition::Partitioner`] — a typed gather per column,
//!   no row re-encoding) and forwards per-shard sub-batches as binary
//!   frames.
//! * **Results** — the logical emitter port subscribes to each shard in
//!   the client's wire format and relays complete frames/lines
//!   byte-for-byte into every subscriber; results are never decoded in
//!   the router.
//!
//! Placement uses the engines' typed `STATS` reports
//! ([`dcserver::stats::StatsReport`]): unsharded streams and
//! `SHARDS n < engines` declarations land on the least-loaded engines.
//!
//! ## Quick start
//!
//! ```no_run
//! use dccluster::{bind_cluster, ClusterConfig};
//! use dcserver::client::ShardedClient;
//!
//! let cluster = bind_cluster("127.0.0.1:0", ClusterConfig::in_process(2)).unwrap();
//! let addr = cluster.local_addr().unwrap();
//! std::thread::spawn(move || cluster.serve());
//!
//! let mut c = ShardedClient::connect(addr).unwrap();
//! c.create_sharded_stream("S", "(id int, v int)", "id", None).unwrap();
//! c.register_query("hot", "select id from [select * from S] as Z where Z.v > 10")
//!     .unwrap();
//! let rport = c.attach_receptor("S", 0).unwrap();
//! let eport = c.attach_emitter("hot", 0).unwrap();
//! # let _ = (rport, eport);
//! ```

pub mod control;
pub mod engines;
pub mod relay;
pub mod repl;
pub mod router;

pub use control::ClusterControl;
pub use engines::{ShardEngine, ShardSpec};
pub use relay::FrameRelay;
pub use router::{ClusterConfig, ClusterRuntime};

use dcserver::error::Result;

/// Boot the shard engines and bind the router's control plane.
///
/// Returns the bound control server; call [`ClusterControl::serve`] to
/// run it (blocking) and [`ClusterControl::local_addr`] for the actual
/// port when binding ephemeral.
pub fn bind_cluster(control_addr: &str, config: ClusterConfig) -> Result<ClusterControl> {
    let runtime = ClusterRuntime::new(config)?;
    ClusterControl::bind(control_addr, runtime)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_boots_engines_on_ephemeral_ports() {
        let cluster = bind_cluster("127.0.0.1:0", ClusterConfig::in_process(2)).unwrap();
        assert_ne!(cluster.local_addr().unwrap().port(), 0);
        assert_eq!(cluster.runtime().engine_count(), 2);
        cluster.runtime().shutdown();
    }
}
